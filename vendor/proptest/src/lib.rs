//! Workspace-local stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the proptest API its property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], [`collection::vec`], [`sample::Index`], [`any`], and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the panic from the raw
//!   generated input. The case index and per-test seed are printed so a
//!   failure is reproducible by re-running the test binary.
//! * **Generation is value-based**, not strategy-tree based: each
//!   strategy is a deterministic function of the test's RNG stream.
//! * `PROPTEST_CASES` overrides the per-test case count, as upstream.

#![forbid(unsafe_code)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic RNG driving every generated case.
    pub type TestRng = rand::rngs::SmallRng;

    /// Builds the deterministic RNG for one named property test.
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        // FNV-1a over the test name keeps streams distinct per test and
        // stable across runs — the determinism contract of the harness.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// The subset of proptest's `Config` the tests set.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// The effective case count, honoring `PROPTEST_CASES`.
        #[must_use]
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// Strategies: deterministic value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.gen())
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
#[must_use]
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Wraps raw randomness.
        #[must_use]
        pub fn new(raw: u64) -> Index {
            Index(raw)
        }

        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// The prelude the tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path used inside `proptest!` bodies.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...)` runs the
/// body over `cases` generated inputs with a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.effective_cases() {
                let run = || {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case} of {} failed in `{}`",
                        config.effective_cases(),
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(u64),
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0u8..4, 2u32..=5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((2..=5).contains(&b));
        }

        #[test]
        fn oneof_map_and_collections(
            ops in prop::collection::vec(prop_oneof![
                Just(Kind::A),
                (1u64..9).prop_map(Kind::B),
            ], 1..20),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in &ops {
                if let Kind::B(v) = op {
                    prop_assert!((1..9).contains(v));
                }
            }
            prop_assert!(idx.index(ops.len()) < ops.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn flat_map_respects_dependency(pair in (1u64..50).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }

    #[test]
    fn streams_are_deterministic_per_test() {
        let mut a = crate::test_runner::rng_for("t1");
        let mut b = crate::test_runner::rng_for("t1");
        let mut c = crate::test_runner::rng_for("t2");
        use rand::Rng;
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
