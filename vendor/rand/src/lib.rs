//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API the simulator uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`rngs::SmallRng`] and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract that matters to the simulator: the
//! same seed always yields the same stream. The generator is
//! xoshiro256++ seeded via SplitMix64 — the same construction the real
//! `SmallRng` uses on 64-bit targets, though the exact streams are not
//! guaranteed to match the upstream crate (all experiment baselines are
//! produced by this workspace, so cross-crate stream equality is never
//! relied upon).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seed expander for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        if p >= 1.0 {
            // Still consume one draw so streams do not depend on `p`.
            let _ = self.next_u64();
            return true;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state would be degenerate; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard
            // explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility; the stand-in has one generator.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes_and_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
