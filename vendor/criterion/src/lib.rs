//! Workspace-local stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmark-facing surface it uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine, each benchmark is timed
//! with [`std::time::Instant`] over an adaptively chosen iteration count
//! and reports mean wall-clock per iteration. That is deliberately
//! simple: the repository's perf trajectory is tracked by `BENCH_*.json`
//! emitters, and these benches exist to compare orders of magnitude
//! (e.g. full-rescan vs incremental counters), not nanosecond noise.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` works as upstream.
pub use std::hint::black_box;

/// How much setup output to clone per batch in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; batches of many iterations.
    SmallInput,
    /// Large per-iteration input; smaller batches.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Optional throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark name, as `BenchmarkId::new("f", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A name of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A bare parameter name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher<'a> {
    /// Mean duration per iteration, written back by `iter*`.
    result: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its return value alive via black_box.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-call cost to size the measured run.
        let calibration_start = Instant::now();
        black_box(routine());
        let one = calibration_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost (each input is built before the clock starts).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let calibration_input = setup();
        let calibration_start = Instant::now();
        black_box(routine(calibration_input));
        let one = calibration_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;

        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        *self.result = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
    }
}

fn report(name: &str, mean: Duration) {
    println!(
        "bench: {name:<48} mean {:>12.1} ns/iter",
        mean.as_nanos() as f64
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut mean = Duration::ZERO;
        f(&mut Bencher { result: &mut mean });
        report(&format!("{}/{}", self.name, id.into_id()), mean);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut mean = Duration::ZERO;
        f(&mut Bencher { result: &mut mean }, input);
        report(&format!("{}/{}", self.name, id.into_id()), mean);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Ends the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut mean = Duration::ZERO;
        f(&mut Bencher { result: &mut mean });
        report(name, mean);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter_batched(
                || (0u64..8).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
