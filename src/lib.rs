//! Umbrella crate for the Trident reproduction.
//!
//! Re-exports the workspace's crates under one roof so examples and
//! integration tests can use a single dependency. See the README for the
//! map of the system and DESIGN.md for the experiment index.
//!
//! # Examples
//!
//! ```no_run
//! use trident_repro::sim::{PolicyKind, SimConfig, System};
//! use trident_repro::workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("Canneal").unwrap();
//! let mut system = System::builder(SimConfig::at_scale(64))
//!     .policy(PolicyKind::Trident)
//!     .workload(spec)
//!     .build()?;
//! system.settle();
//! println!("{} walk cycles", system.measure().walk_cycles);
//! # Ok::<(), trident_repro::phys::PhysMemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trident_core as core;
pub use trident_phys as phys;
pub use trident_sim as sim;
pub use trident_tlb as tlb;
pub use trident_types as types;
pub use trident_virt as virt;
pub use trident_vm as vm;
pub use trident_workloads as workloads;
