//! Smoke tests for every experiment routine at a quick scale: each
//! table/figure regenerator must run to completion and satisfy the
//! paper's coarsest qualitative claims.

use trident_repro::sim::experiments::{self, ExpOptions};

fn opts() -> ExpOptions {
    ExpOptions::quick()
}

#[test]
fn fig1_native_page_size_comparison() {
    let r = experiments::fig1::run(&opts());
    // 12 workloads x 4 configs.
    assert_eq!(r.rows.len(), 48);
    // Every workload should benefit from THP over 4KB.
    for row in r.rows.iter().filter(|r| r.config == "2MB-THP") {
        assert!(row.perf_norm >= 0.99, "{}: {}", row.workload, row.perf_norm);
    }
    // The shaded set gains from 1GB-hugetlbfs over THP on average.
    assert!(r.shaded_giant_gain_over_thp() > 1.0);
}

#[test]
fn fig3_mappability_gap_exists() {
    let r = experiments::fig3::run(&opts());
    assert_eq!(r.series.len(), 2);
    for s in &r.series {
        let last = s.points.last().unwrap();
        assert!(
            last.huge_gb > last.giant_gb,
            "{}: 2MB-mappable must exceed 1GB-mappable",
            s.workload
        );
    }
}

#[test]
fn fig4_misses_fall_on_unmappable_regions_too() {
    let r = experiments::fig4::run(&opts());
    // Graph500's signature: a meaningful share of misses on 2MB-only
    // chunks (the circled spike).
    assert!(r.huge_only_miss_share("Graph500") > 0.05);
}

#[test]
fn fig9_trident_wins_on_average() {
    let r = experiments::fig9::run(&opts(), false);
    assert!(r.mean_speedup("Trident") > 1.0);
    // HawkEye stays close to THP when unfragmented.
    let hawkeye = r.mean_speedup("HawkEye");
    assert!((0.9..1.1).contains(&hawkeye), "{hawkeye}");
}

#[test]
fn table5_trident_does_not_hurt_tail_latency() {
    let r = experiments::table5::run(&opts());
    for workload in ["Redis", "Memcached"] {
        for fragmented in [false, true] {
            let base = r.cell(workload, fragmented, "4KB").unwrap();
            let trident = r.cell(workload, fragmented, "Trident").unwrap();
            assert!(
                trident <= base * 1.05,
                "{workload} frag={fragmented}: trident p99 {trident} vs 4KB {base}"
            );
        }
    }
}

#[test]
fn fig7_smart_compaction_reduces_copying() {
    let r = experiments::fig7::run(&opts());
    assert_eq!(r.rows.len(), 8);
    let improving = r.rows.iter().filter(|row| row.reduction_pct > 0.0).count();
    assert!(improving >= 6, "most workloads should see reduced copying");
}

#[test]
fn table4_reports_na_for_never_attempted() {
    let r = experiments::table4::run(&opts());
    let redis = r
        .rows
        .iter()
        .find(|row| row.workload == "Redis")
        .expect("redis row");
    assert!(redis.fault_failure_rate.is_none(), "Redis is NA at fault");
    let csv = r.to_csv();
    assert!(csv.contains("NA"));
}
