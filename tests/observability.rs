//! The observability layer's end-to-end contracts (DESIGN.md §8):
//!
//! * Tracing is free of observer effects — enabling the ring tracer must
//!   not change a single byte of any figure or table output.
//! * A drop-free trace is a complete record — replaying it through
//!   [`StatsSnapshot::from_events`] reconstructs the exact snapshot the
//!   run reported, and every event survives its JSONL wire format.

use trident_repro::core::{Event, StatsSnapshot, SNAPSHOT_VERSION};
use trident_repro::sim::experiments::{self, ExpOptions};
use trident_repro::sim::{PolicyKind, SimConfig, System};
use trident_repro::workloads::WorkloadSpec;

fn traced(mut opts: ExpOptions) -> ExpOptions {
    opts.trace_capacity = Some(1 << 20);
    opts
}

#[test]
fn fig1_is_bit_identical_with_tracing_on() {
    let plain = experiments::fig1::run(&ExpOptions::quick()).to_csv();
    let with_trace = experiments::fig1::run(&traced(ExpOptions::quick())).to_csv();
    assert_eq!(plain, with_trace, "tracing must not perturb fig1");
}

#[test]
fn table4_is_bit_identical_with_tracing_on_at_any_thread_count() {
    let plain = experiments::table4::run(&ExpOptions::quick()).to_csv();
    for threads in [1, 3] {
        let mut opts = traced(ExpOptions::quick());
        opts.threads = threads;
        let out = experiments::table4::run(&opts).to_csv();
        assert_eq!(plain, out, "tracing or threads={threads} perturbed table4");
    }
}

#[test]
fn table5_is_bit_identical_with_tracing_on() {
    let plain = experiments::table5::run(&ExpOptions::quick()).to_csv();
    let with_trace = experiments::table5::run(&traced(ExpOptions::quick())).to_csv();
    assert_eq!(plain, with_trace, "tracing must not perturb table5");
}

/// Launches a small traced Trident run and returns its measurement.
fn traced_run() -> trident_repro::sim::Measurement {
    let mut config = SimConfig::at_scale(256);
    config.measure_samples = 4_000;
    config.measure_tick_every = 1_000;
    config.trace_capacity = Some(1 << 20);
    let spec = WorkloadSpec::by_name("GUPS").unwrap();
    let mut system = System::builder(config)
        .policy(PolicyKind::Trident)
        .workload(spec)
        .build()
        .unwrap();
    system.settle();
    system.measure()
}

#[test]
fn replaying_the_trace_reconstructs_the_snapshot() {
    let m = traced_run();
    assert!(!m.trace.is_empty(), "a Trident run must emit events");
    assert_eq!(m.snapshot.version, SNAPSHOT_VERSION);
    let replayed = StatsSnapshot::from_events(&m.trace);
    assert_eq!(
        replayed, m.snapshot,
        "drop-free trace must replay to the live snapshot"
    );
}

#[test]
fn the_exported_jsonl_parses_back_to_the_same_trace() {
    let m = traced_run();
    let jsonl: String = m.trace.iter().map(|ev| ev.to_jsonl() + "\n").collect();
    let parsed: Vec<Event> = jsonl
        .lines()
        .map(|line| Event::parse_jsonl(line).expect("exported trace must parse"))
        .collect();
    assert_eq!(parsed, m.trace);
    assert_eq!(StatsSnapshot::from_events(&parsed), m.snapshot);
}

#[test]
fn untraced_runs_report_an_empty_trace() {
    let mut config = SimConfig::at_scale(256);
    config.measure_samples = 2_000;
    config.measure_tick_every = 1_000;
    let spec = WorkloadSpec::by_name("GUPS").unwrap();
    let mut system = System::builder(config)
        .policy(PolicyKind::Trident)
        .workload(spec)
        .build()
        .unwrap();
    system.settle();
    let m = system.measure();
    assert!(m.trace.is_empty());
    assert!(m.snapshot.total_faults() > 0, "stats still flow untraced");
}
