//! Property test for end-to-end tenant attribution.
//!
//! The multi-tenant engine's accounting contract: as long as a scope is
//! always held — `SystemBuilder` sets one before the first fault and
//! every engine step re-scopes — the per-tenant snapshots sum
//! componentwise to the pooled machine snapshot, whatever the event mix
//! and however the scope bounces between tenants. No counter may leak
//! out of attribution and none may be double-counted.

use proptest::prelude::*;
use trident_repro::core::{AllocSite, Event, InjectSite, MmContext, StatsSnapshot};
use trident_repro::phys::PhysicalMemory;
use trident_repro::types::{PageGeometry, PageSize, TenantId};

const TENANTS: u32 = 3;

fn page_sizes() -> impl Strategy<Value = PageSize> {
    // The attribution contract is ladder-agnostic: exercise every rung
    // slot the counters can index, not just one geometry's ladder.
    (0usize..trident_repro::types::MAX_RUNGS).prop_map(PageSize::new)
}

fn sites() -> impl Strategy<Value = AllocSite> {
    prop_oneof![Just(AllocSite::PageFault), Just(AllocSite::Promotion)]
}

/// Every counter-bearing event the engine can record, with arbitrary
/// payloads. Trace-only events are deliberately absent: they touch no
/// counters, so they cannot break the sum.
fn events() -> impl Strategy<Value = Event> {
    prop_oneof![
        (page_sizes(), sites(), 0u64..10_000).prop_map(|(size, site, ns)| Event::Fault {
            size,
            site,
            ns
        }),
        (sites(), any::<bool>()).prop_map(|(site, failed)| Event::GiantAttempt { site, failed }),
        (page_sizes(), 0u64..(1 << 20), 0u64..512).prop_map(|(size, bytes_copied, bloat_pages)| {
            Event::Promote {
                size,
                bytes_copied,
                bloat_pages,
            }
        }),
        (page_sizes(), 0u64..512).prop_map(|(size, recovered_pages)| Event::Demote {
            size,
            recovered_pages,
        }),
        (1u64..64, 0u64..(1 << 20), any::<bool>()).prop_map(|(pairs, bytes, batched)| {
            Event::PvExchange {
                pairs,
                bytes,
                batched,
            }
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(smart, succeeded)| Event::CompactionRun { smart, succeeded }),
        (0u64..(1 << 16)).prop_map(|bytes| Event::CompactionMove { bytes }),
        (0u64..8).prop_map(|blocks| Event::ZeroFill { blocks }),
        (0u64..10_000).prop_map(|ns| Event::DaemonTick { ns }),
        page_sizes().prop_map(|size| Event::PromotionDeferred { size }),
        (0u64..(1 << 16)).prop_map(|bytes| Event::PvFallback { bytes }),
        (0usize..InjectSite::ALL.len()).prop_map(|i| Event::FaultInjected {
            site: InjectSite::ALL[i],
        }),
    ]
}

proptest! {
    #[test]
    fn per_tenant_snapshots_sum_to_the_pooled_snapshot(
        ops in prop::collection::vec((0u32..TENANTS, events()), 0..200),
    ) {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(
            geo,
            4 * geo.base_pages(geo.largest()),
        ));
        for (tenant, event) in &ops {
            ctx.set_tenant_scope(Some(TenantId::new(*tenant)));
            ctx.record(*event);
        }

        let mut summed = StatsSnapshot::default();
        for t in 0..TENANTS {
            summed.absorb(&ctx.tenant_snapshot(TenantId::new(t)));
        }
        prop_assert_eq!(summed, ctx.snapshot());

        // A tenant that never held the scope reads as exactly zeros.
        prop_assert_eq!(
            ctx.tenant_snapshot(TenantId::new(TENANTS + 5)),
            StatsSnapshot::default()
        );
    }
}
