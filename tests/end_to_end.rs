//! Cross-crate integration tests: whole systems, end to end, at a quick
//! scale. These assert the paper's *qualitative* results hold on every
//! run; the bench binaries regenerate the quantitative tables/figures.

use trident_repro::core::{assert_mm_consistent, AllocSite};
use trident_repro::sim::{PolicyKind, SimConfig, System, VirtSystem};
use trident_repro::types::PageSize;
use trident_repro::workloads::WorkloadSpec;

fn quick(scale: u64) -> SimConfig {
    let mut c = SimConfig::at_scale(scale);
    c.measure_samples = 20_000;
    c.measure_tick_every = 5_000;
    c.settle_ticks = 24;
    c
}

fn launch(
    config: SimConfig,
    kind: PolicyKind,
    spec: WorkloadSpec,
) -> Result<System, trident_repro::phys::PhysMemError> {
    System::builder(config).policy(kind).workload(spec).build()
}

#[test]
fn trident_beats_thp_on_walk_cycles_for_a_giant_sensitive_workload() {
    let spec = WorkloadSpec::by_name("Canneal").unwrap();
    let run = |kind| {
        let mut s = launch(quick(128), kind, spec).unwrap();
        s.settle();
        s.measure().walk_cycles
    };
    let thp = run(PolicyKind::Thp);
    let trident = run(PolicyKind::Trident);
    assert!(
        trident < thp,
        "trident walk cycles {trident} should beat THP {thp}"
    );
}

#[test]
fn trident_uses_all_three_page_sizes_on_an_incremental_workload() {
    let spec = WorkloadSpec::by_name("Redis").unwrap();
    let mut s = launch(quick(128), PolicyKind::Trident, spec).unwrap();
    s.settle();
    let geo = s.geometry();
    let giant = geo.largest();
    let huge = geo
        .size_for_order(geo.level_order(2))
        .expect("every ladder has a natural level-2 rung");
    assert!(s.mapped_bytes(giant) > 0, "giant pages via promotion");
    assert!(s.mapped_bytes(huge) > 0, "huge pages on the rest");
    // The name: three page sizes at once.
    assert!(s.mapped_bytes(PageSize::BASE) + s.mapped_bytes(huge) > 0);
    assert_mm_consistent(&s.ctx, &s.spaces);
}

#[test]
fn fragmentation_defeats_hugetlbfs_but_not_trident() {
    let spec = WorkloadSpec::by_name("Canneal").unwrap();
    let config = quick(128).fragmented();
    assert!(launch(config, PolicyKind::HugetlbfsGiant, spec).is_err());
    let mut s = launch(config, PolicyKind::Trident, spec).unwrap();
    s.settle();
    assert!(
        s.mapped_bytes(s.geometry().largest()) > 0,
        "smart compaction recovers 1GB contiguity"
    );
    assert_mm_consistent(&s.ctx, &s.spaces);
}

#[test]
fn incremental_allocators_get_no_giant_pages_from_faults_alone() {
    let spec = WorkloadSpec::by_name("Redis").unwrap();
    let mut s = launch(quick(128), PolicyKind::TridentFaultOnly, spec).unwrap();
    s.settle();
    // Table 3 / Table 4: Redis never even attempts a fault-time 1GB
    // allocation — its VA grows too incrementally.
    assert_eq!(s.ctx.snapshot().giant_attempts_fault, 0);
    assert_eq!(s.mapped_bytes(s.geometry().largest()), 0);
}

#[test]
fn smart_compaction_copies_fewer_bytes_than_normal() {
    let spec = WorkloadSpec::by_name("Btree").unwrap();
    let run = |kind| {
        let mut s = launch(quick(128).fragmented(), kind, spec).unwrap();
        s.settle();
        (
            s.ctx.snapshot().compaction_bytes_copied,
            s.mapped_bytes(s.geometry().largest()),
        )
    };
    let (normal_bytes, normal_giant) = run(PolicyKind::TridentNC);
    let (smart_bytes, smart_giant) = run(PolicyKind::Trident);
    assert!(smart_giant > 0 && normal_giant > 0);
    assert!(
        smart_bytes < normal_bytes,
        "smart {smart_bytes} should copy less than normal {normal_bytes}"
    );
}

#[test]
fn nested_translation_prefers_bigger_pages_at_both_levels() {
    let spec = WorkloadSpec::by_name("GUPS").unwrap();
    let run = |host, guest| {
        let mut vs = VirtSystem::launch(quick(128), host, guest, spec, false).unwrap();
        vs.settle();
        vs.measure().walk_cycles
    };
    let base = run(PolicyKind::Base, PolicyKind::Base);
    let thp = run(PolicyKind::Thp, PolicyKind::Thp);
    let trident = run(PolicyKind::Trident, PolicyKind::Trident);
    assert!(thp < base, "2MB+2MB ({thp}) < 4KB+4KB ({base})");
    assert!(
        trident < thp,
        "Trident+Trident ({trident}) < 2MB+2MB ({thp})"
    );
}

#[test]
fn giant_allocation_failures_are_recorded_under_fragmentation() {
    let spec = WorkloadSpec::by_name("XSBench").unwrap();
    let mut s = launch(quick(128).fragmented(), PolicyKind::Trident, spec).unwrap();
    s.settle();
    let fault_rate = s.ctx.snapshot().giant_failure_rate(AllocSite::PageFault);
    assert!(
        fault_rate.unwrap_or(0.0) > 0.5,
        "most fault-time 1GB attempts fail under fragmentation: {fault_rate:?}"
    );
}

#[test]
fn zero_fill_pool_accelerates_giant_faults() {
    let spec = WorkloadSpec::by_name("XSBench").unwrap();
    let mut s = launch(quick(128), PolicyKind::Trident, spec).unwrap();
    s.settle();
    let top = s.geometry().largest();
    let giant_faults = s.ctx.snapshot().faults[top.rung()];
    assert!(giant_faults > 0);
    // With the background zero-fill thread running during load, the mean
    // 1GB fault should be far below the synchronous zeroing latency.
    let sync_ns = s.ctx.cost.fault_ns(&s.config.geo, top, false);
    let mean = s.ctx.snapshot().mean_fault_ns(top).unwrap();
    assert!(
        mean < sync_ns / 2,
        "mean giant fault {mean}ns should be well under sync {sync_ns}ns"
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let spec = WorkloadSpec::by_name("SVM").unwrap();
    let run = || {
        let mut s = launch(quick(128).fragmented(), PolicyKind::Trident, spec).unwrap();
        s.settle();
        let m = s.measure();
        (
            m.walk_cycles,
            m.mapped_bytes,
            m.snapshot.compaction_bytes_copied,
        )
    };
    assert_eq!(run(), run());
}
