//! Bit-identity proof for the `SystemBuilder` migration and the
//! geometry-driven `PageSize` redesign.
//!
//! The golden hashes below were captured from the pre-refactor
//! single-tenant `System::launch` path (fig1/table4/table5 at quick
//! scale, seed 42, threads 1 and 4). A one-tenant `SystemBuilder` run
//! under the default x86-64 geometry must reproduce them bit for bit:
//! the builder and the rung ladder are re-plumbings of the launch
//! path, not behavioural changes. The committed CSVs under
//! `tests/golden/` pin the same outputs as reviewable text
//! (regenerate with `cargo run -p trident-sim --example golden_dump`).

use trident_repro::sim::experiments::{self, ExpOptions};

/// FNV-1a, the repository's stable test fingerprint for CSV blobs.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn opts(threads: usize) -> ExpOptions {
    let mut o = ExpOptions::quick();
    o.threads = threads;
    o
}

#[test]
fn fig1_matches_pre_refactor_golden_at_1_and_4_threads() {
    let csv = experiments::fig1::run(&opts(1)).to_csv();
    let h4 = fnv1a(&experiments::fig1::run(&opts(4)).to_csv());
    assert_eq!(fnv1a(&csv), h4, "fig1 must be thread-count invariant");
    assert_eq!(
        fnv1a(&csv),
        GOLDEN_FIG1,
        "fig1 drifted from the pre-refactor path"
    );
    assert_eq!(csv, include_str!("golden/fig1.csv"));
}

#[test]
fn table4_matches_pre_refactor_golden_at_1_and_4_threads() {
    let csv = experiments::table4::run(&opts(1)).to_csv();
    let h4 = fnv1a(&experiments::table4::run(&opts(4)).to_csv());
    assert_eq!(fnv1a(&csv), h4, "table4 must be thread-count invariant");
    assert_eq!(
        fnv1a(&csv),
        GOLDEN_TABLE4,
        "table4 drifted from the pre-refactor path"
    );
    assert_eq!(csv, include_str!("golden/table4.csv"));
}

#[test]
fn table5_matches_pre_refactor_golden_at_1_and_4_threads() {
    let csv = experiments::table5::run(&opts(1)).to_csv();
    let h4 = fnv1a(&experiments::table5::run(&opts(4)).to_csv());
    assert_eq!(fnv1a(&csv), h4, "table5 must be thread-count invariant");
    assert_eq!(
        fnv1a(&csv),
        GOLDEN_TABLE5,
        "table5 drifted from the pre-refactor path"
    );
    assert_eq!(csv, include_str!("golden/table5.csv"));
}

const GOLDEN_FIG1: u64 = 678_687_198_921_039_402;
const GOLDEN_TABLE4: u64 = 6_290_351_268_904_539_716;
const GOLDEN_TABLE5: u64 = 9_598_922_431_288_726_740;
