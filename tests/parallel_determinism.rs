//! The parallel runner's determinism contract: an experiment's output is
//! a pure function of its options — thread count must never leak into
//! results. See DESIGN.md §"Determinism contract".

use trident_repro::sim::experiments::{self, ExpOptions};

fn with_threads(threads: usize) -> ExpOptions {
    let mut opts = ExpOptions::quick();
    opts.threads = threads;
    opts
}

#[test]
fn fig1_is_bit_identical_across_thread_counts() {
    let serial = experiments::fig1::run(&with_threads(1)).to_csv();
    let parallel = experiments::fig1::run(&with_threads(4)).to_csv();
    assert_eq!(serial, parallel, "fig1 CSV must not depend on threads");
    // And re-running does not drift either.
    let again = experiments::fig1::run(&with_threads(4)).to_csv();
    assert_eq!(parallel, again, "fig1 CSV must be reproducible");
}

#[test]
fn table4_is_bit_identical_across_thread_counts() {
    let serial = experiments::table4::run(&with_threads(1)).to_csv();
    let parallel = experiments::table4::run(&with_threads(3)).to_csv();
    assert_eq!(serial, parallel, "table4 CSV must not depend on threads");
}
