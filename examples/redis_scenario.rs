//! The incremental-allocator story (§5.1.3, Table 3).
//!
//! Redis grows its memory key by key, so at fault time there is almost
//! never a 1GB-mappable range: the fault handler alone cannot use 1GB
//! pages at all. Trident's `khugepaged` extension promotes those ranges
//! later. This example shows the page-size mix evolving as the daemon
//! runs.
//!
//! ```sh
//! cargo run --release --example redis_scenario
//! ```

use trident_sim::{PolicyKind, SimConfig, System};
use trident_workloads::WorkloadSpec;

fn mix(system: &System) -> String {
    let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
    let geo = system.geometry();
    geo.rungs()
        .map(|size| {
            format!(
                "{} {:5.2} GB",
                geo.label(size),
                gb(system.mapped_bytes(size))
            )
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SimConfig::at_scale(64);
    // Disable load-time daemon ticks so we can watch promotion happen.
    config.tick_interval_pages = u64::MAX;
    config.measure_samples = 10_000;

    let spec = WorkloadSpec::by_name("Redis").expect("Redis is built in");
    let mut system = System::builder(config)
        .policy(PolicyKind::Trident)
        .workload(spec)
        .build()?;

    println!(
        "Redis loaded {} GB of key-value data incrementally.",
        spec.footprint_bytes >> 30
    );
    println!("right after load: {}", mix(&system));
    println!(
        "  (1GB allocations attempted at fault time: {} — incremental VMAs are never 1GB-mappable when touched)",
        system.ctx.stats.giant_attempts_fault
    );

    for round in 1..=6 {
        for _ in 0..4 {
            system.tick();
        }
        println!("after khugepaged round {round}: {}", mix(&system));
    }
    let geo = system.geometry();
    let promoted: Vec<String> = geo
        .rungs()
        .filter(|s| !s.is_base())
        .map(|s| {
            format!(
                "{} to {}",
                system.ctx.stats.promotions[s.rung()],
                geo.label(s)
            )
        })
        .collect();
    println!(
        "\npromotions: {}; {} MB copied by promotion",
        promoted.join(", "),
        system.ctx.stats.promotion_bytes_copied >> 20,
    );
    println!("This is Table 3's Redis row: 0 GB of 1GB pages from the fault");
    println!("handler, tens of GB after background promotion.");
    Ok(())
}
