//! Figure 8, executed: copy-less 1GB promotion in a guest via the
//! Trident_pv hypercall.
//!
//! A guest address range is backed by scattered 2MB guest-physical pages.
//! Promoting it to a 1GB page needs contiguous gPA — normally achieved by
//! *copying* guest-physical memory. Trident_pv instead asks the hypervisor
//! to exchange the gPA→hPA mappings, so the host frames that hold the
//! data never move.
//!
//! ```sh
//! cargo run --release --example virtualized_pv
//! ```

use trident_core::{map_chunk, CostModel, PagePolicy, ThpPolicy, TridentConfig, TridentPolicy};
use trident_types::{AsId, PageGeometry, Vpn, GIB};
use trident_virt::{copyless_promote_giant, Hypervisor};
use trident_vm::{AddressSpace, VmaKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geo = PageGeometry::TINY; // miniature geometry keeps the printout readable
    let giant = geo.largest();
    let huge = geo
        .size_for_order(geo.level_order(2))
        .expect("every ladder has a natural level-2 rung");
    let host_policy: Box<dyn PagePolicy> = Box::new(ThpPolicy::new());
    let mut hyp = Hypervisor::new(geo, 32 * geo.base_pages(giant), host_policy);
    let mut vm = hyp.create_vm(
        16 * geo.base_pages(giant),
        Box::new(TridentPolicy::new(TridentConfig::paravirt())),
    );
    let asid = AsId::new(1);
    let mut proc = AddressSpace::new(asid, geo);
    proc.mmap_at(Vpn::new(0), 4 * geo.base_pages(giant), VmaKind::Anon)?;
    vm.kernel.spaces.insert(proc);

    // Back the first "1GB" gVA chunk with 2MB guest pages, touching each
    // so the host populates its side.
    let hp = geo.base_pages(huge);
    let count = geo.base_pages(giant) / hp;
    for i in 0..count {
        let head = Vpn::new(i * hp);
        let space = vm.kernel.spaces.get_mut(asid).expect("space exists");
        map_chunk(&mut vm.kernel.ctx, space, head, huge)?;
        vm.touch(&mut hyp, asid, head, true)?;
    }

    let vm_id = vm.id();
    println!("before promotion (gVA -> gPA -> hPA):");
    print_mappings(&vm, &hyp, asid, count * hp);

    let report = copyless_promote_giant(&mut vm.kernel, &mut hyp, vm_id, asid, Vpn::new(0))?;
    println!(
        "\npromoted with ONE batched hypercall: {} mappings exchanged, {} bytes copied\n",
        report.pairs_exchanged, report.bytes_copied
    );
    println!("after promotion:");
    print_mappings(&vm, &hyp, asid, count * hp);

    // The paper's §6 latencies, from the cost model at real x86-64 sizes.
    let cost = CostModel::default();
    println!("\nmodeled cost of promoting one real 1GB region from 2MB pages:");
    println!(
        "  copy-based:      {:>10.1} ms",
        cost.copy_ns(GIB) as f64 / 1e6
    );
    println!(
        "  pv, unbatched:   {:>10.1} ms",
        cost.pv_unbatched_exchange_ns(512) as f64 / 1e6
    );
    println!(
        "  pv, one batch:   {:>10.3} ms",
        cost.pv_batched_exchange_ns(512) as f64 / 1e6
    );
    Ok(())
}

fn print_mappings(vm: &trident_virt::VirtualMachine, hyp: &Hypervisor, asid: AsId, pages: u64) {
    let geo = vm.kernel.ctx.geometry();
    let space = vm.kernel.spaces.get(asid).expect("space exists");
    let host = hyp.spaces.get(vm.id()).expect("vm registered");
    for leaf in space.page_table().mappings_in(Vpn::new(0), pages) {
        let gpa = Vpn::new(leaf.pfn.raw());
        let hpa = host
            .page_table()
            .translate(gpa)
            .map(|t| format!("{}", t.pfn))
            .unwrap_or_else(|| "?".into());
        println!(
            "  gVA {:>6} --{}--> gPA {:>6} ----> hPA {:>6}",
            format!("{}", leaf.vpn),
            geo.label(leaf.size),
            format!("{}", gpa),
            hpa
        );
    }
}
