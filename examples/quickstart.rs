//! Quickstart: run one workload under Trident and under Linux THP, and
//! compare translation behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trident_sim::{PolicyKind, SimConfig, System};
use trident_workloads::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine scaled to 1/64 of the paper's 384GB testbed; page sizes
    // and TLB reach scale together, so the ratios that matter are intact.
    let mut config = SimConfig::at_scale(64);
    config.measure_samples = 50_000;

    let spec = WorkloadSpec::by_name("GUPS").expect("GUPS is built in");
    println!(
        "workload: {} ({} GB footprint, uniform random accesses)\n",
        spec.name,
        spec.footprint_bytes >> 30
    );

    for kind in [PolicyKind::Thp, PolicyKind::Trident] {
        let mut system = System::builder(config)
            .policy(kind)
            .workload(spec)
            .build()?;
        system.settle();
        let m = system.measure();
        println!("— {} —", system.policy_name());
        let geo = system.geometry();
        for size in geo.rungs() {
            println!(
                "  {:>4} pages map {:6} MB",
                geo.label(size),
                m.mapped_bytes[size.rung()] >> 20
            );
        }
        println!(
            "  TLB: {} walks over {} accesses ({:.1}% miss), {} walk cycles",
            m.walks,
            m.samples,
            100.0 * m.walks as f64 / m.samples as f64,
            m.walk_cycles
        );
        println!(
            "  MM:  {} faults, {} promotions to {}, {} MB copied by compaction\n",
            m.snapshot.total_faults(),
            m.snapshot.promotions[geo.largest().rung()],
            geo.label(geo.largest()),
            m.snapshot.compaction_bytes_copied >> 20
        );
    }
    println!("Fewer walk cycles under Trident is the paper's headline effect:");
    println!("1GB pages give the L2 TLB 16GB of reach versus 3GB with 2MB pages.");
    Ok(())
}
