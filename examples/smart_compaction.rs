//! Smart versus normal compaction on the same fragmented machine
//! (Figure 6 / Figure 7's mechanism, observable directly).
//!
//! ```sh
//! cargo run --release --example smart_compaction
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use trident_core::{CompactionKind, Compactor, MmContext, SpaceSet};
use trident_phys::{FragmentProfile, Fragmenter, PhysicalMemory};
use trident_types::PageGeometry;

/// Builds a freshly fragmented machine (no free giant chunk anywhere).
fn fragmented_machine(seed: u64) -> MmContext {
    let geo = PageGeometry::TINY;
    let top = geo.largest();
    let mut ctx = MmContext::new(PhysicalMemory::new(geo, 64 * geo.base_pages(top)));
    let mut rng = SmallRng::seed_from_u64(seed);
    let report = Fragmenter::new(FragmentProfile::heavy()).run(&mut ctx.mem, &mut rng);
    assert!(!ctx.mem.has_free(top));
    println!(
        "fragmented machine: FMFI(top) = {:.3}, {:.0}% free in scattered holes",
        report.fmfi_largest(),
        report.free_fraction * 100.0
    );
    ctx
}

fn main() {
    println!("Creating one free giant chunk on identical fragmented machines:\n");
    for (name, kind) in [
        ("normal (sequential scan)", CompactionKind::Normal),
        ("smart (counter-guided)  ", CompactionKind::Smart),
    ] {
        let mut ctx = fragmented_machine(7);
        let mut spaces = SpaceSet::new(); // page-cache only: no page tables to fix
        let mut compactor = Compactor::new(kind);
        let top = ctx.geometry().largest();
        let out = compactor.compact(&mut ctx, &mut spaces, top);
        println!(
            "  {name}: success={} — moved {:>7} KB in {:>4} migrations ({:.2} ms of copying)",
            out.success,
            out.bytes_copied >> 10,
            out.migrated_units,
            out.ns as f64 / 1e6,
        );
    }
    println!("\nSmart compaction selects the emptiest movable region as its");
    println!("source instead of scanning, so it moves far fewer bytes — the");
    println!("effect Figure 7 quantifies per application.");
}
