//! Property tests for the observability layer's core contract: a trace
//! is a lossless record. Any event sequence must survive the JSONL wire
//! format unchanged, and replaying a complete (drop-free) trace must
//! reconstruct the exact live snapshot (DESIGN.md §8).

use proptest::prelude::*;
use trident_obs::{AllocSite, Event, Recorder, RingTracer, SpanKind, StatsSnapshot};
use trident_types::{PageSize, MAX_RUNGS};

fn sizes() -> impl Strategy<Value = PageSize> {
    // Every representable rung, not just x86's three: the wire format
    // must round-trip whatever ladder a geometry carries.
    (0..MAX_RUNGS).prop_map(PageSize::new)
}

fn sites() -> impl Strategy<Value = AllocSite> {
    prop_oneof![Just(AllocSite::PageFault), Just(AllocSite::Promotion)]
}

fn span_kinds() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Fault),
        Just(SpanKind::PromoScan),
        Just(SpanKind::Compaction),
        Just(SpanKind::PvExchange),
        Just(SpanKind::DaemonTick),
        Just(SpanKind::ZeroFill),
    ]
}

fn events() -> impl Strategy<Value = Event> {
    prop_oneof![
        (sizes(), sites(), 0u64..10_000_000).prop_map(|(size, site, ns)| Event::Fault {
            size,
            site,
            ns
        }),
        (sites(), any::<bool>()).prop_map(|(site, failed)| Event::GiantAttempt { site, failed }),
        (sizes(), 0u64..(1 << 31), 0u64..100_000).prop_map(|(size, bytes_copied, bloat_pages)| {
            Event::Promote {
                size,
                bytes_copied,
                bloat_pages,
            }
        }),
        (sizes(), 0u64..100_000).prop_map(|(size, recovered_pages)| Event::Demote {
            size,
            recovered_pages,
        }),
        (0u64..10_000, 0u64..(1 << 31), any::<bool>()).prop_map(|(pairs, bytes, batched)| {
            Event::PvExchange {
                pairs,
                bytes,
                batched,
            }
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(smart, succeeded)| Event::CompactionRun { smart, succeeded }),
        (0u64..(1 << 31)).prop_map(|bytes| Event::CompactionMove { bytes }),
        (0u64..1_000).prop_map(|blocks| Event::ZeroFill { blocks }),
        (0u64..10_000_000).prop_map(|ns| Event::DaemonTick { ns }),
        (0u8..=18, 0u8..=18).prop_map(|(from_order, to_order)| Event::BuddySplit {
            from_order,
            to_order,
        }),
        (0u8..=18, 0u8..=18).prop_map(|(from_order, to_order)| Event::BuddyCoalesce {
            from_order,
            to_order,
        }),
        (sizes(), 0u64..100_000)
            .prop_map(|(size, walk_cycles)| Event::TlbMiss { size, walk_cycles }),
        span_kinds().prop_map(|kind| Event::SpanBegin { kind }),
        (span_kinds(), 0u64..10_000_000).prop_map(|(kind, ns)| Event::SpanEnd { kind, ns }),
        (1u64..1_000_000).prop_map(|dropped| Event::TraceGap { dropped }),
        (0u64..=1_000, 0u64..1_000_000, 0u64..10_000).prop_map(
            |(fmfi_milli, free_huge, free_giant)| Event::Gauge {
                fmfi_milli,
                free_huge,
                free_giant,
            }
        ),
    ]
}

fn event_seq() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(events(), 0..300)
}

proptest! {
    /// Every event survives the JSONL wire format bit-for-bit.
    #[test]
    fn jsonl_roundtrips_arbitrary_events(seq in event_seq()) {
        for ev in &seq {
            let line = ev.to_jsonl();
            let back = Event::parse_jsonl(&line).expect("own output must parse");
            prop_assert_eq!(&back, ev, "wire format dropped data: {}", line);
        }
    }

    /// A drop-free ring trace replays to the exact live snapshot:
    /// folding the recorded events with [`StatsSnapshot::apply`] equals
    /// folding the original sequence — whether replayed from the in-memory
    /// trace or from its JSONL serialization.
    #[test]
    fn dropfree_trace_replays_to_live_snapshot(seq in event_seq()) {
        // Live side: apply every event as it happens, and record it.
        let mut live = StatsSnapshot::default();
        let mut tracer = RingTracer::new(seq.len().max(1));
        for ev in &seq {
            live.apply(ev);
            tracer.record(*ev);
        }
        prop_assert_eq!(tracer.dropped(), 0);

        // Replay side: from the drained trace, and from its JSONL form.
        let trace = tracer.drain();
        prop_assert_eq!(StatsSnapshot::from_events(&trace), live);
        let parsed: Vec<Event> = seq
            .iter()
            .map(|ev| Event::parse_jsonl(&ev.to_jsonl()).expect("own output must parse"))
            .collect();
        prop_assert_eq!(StatsSnapshot::from_events(&parsed), live);
    }

    /// A bounded ring keeps exactly the newest `capacity` events and
    /// counts every drop, so consumers can tell a complete trace from a
    /// truncated one.
    #[test]
    fn bounded_ring_keeps_newest_and_counts_drops(seq in event_seq(), cap in 1usize..64) {
        let mut tracer = RingTracer::new(cap);
        for ev in &seq {
            tracer.record(*ev);
        }
        let kept = tracer.drain();
        let expect_kept = seq.len().min(cap);
        prop_assert_eq!(kept.len(), expect_kept);
        prop_assert_eq!(tracer.dropped(), (seq.len() - expect_kept) as u64);
        prop_assert_eq!(&kept[..], &seq[seq.len() - expect_kept..]);
    }
}
