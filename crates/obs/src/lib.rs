//! Observability spine for the Trident memory-management simulator.
//!
//! Every interesting thing the simulated memory manager does — buddy
//! splits and coalesces, page faults by size, promotions, demotions,
//! compaction moves, paravirtual mapping exchanges, TLB misses — is a
//! typed [`Event`]. Components report events through the [`Recorder`]
//! trait; the two shipped implementations are:
//!
//! - [`NoopRecorder`]: the default. Its `record` is an empty inlined
//!   function, so instrumented hot paths cost nothing when tracing is off.
//! - [`RingTracer`]: a bounded ring buffer that retains the most recent
//!   events and exports them as JSONL (one event per line) for offline
//!   analysis; see [`Event::to_jsonl`] / [`Event::parse_jsonl`].
//!
//! Aggregate counters live in the versioned [`StatsSnapshot`], which can
//! be produced two ways that are guaranteed to agree: from the live
//! counters a policy maintains while running, or by replaying a recorded
//! trace with [`StatsSnapshot::from_events`]. Events that carry no
//! snapshot counter (buddy churn, TLB misses) are trace-only; see
//! [`Event::is_snapshot_bearing`].
//!
//! # Examples
//!
//! ```
//! use trident_obs::{Event, Recorder, RingTracer, StatsSnapshot};
//! use trident_types::PageSize;
//!
//! let huge = PageSize::new(1); // rung 1 of the active geometry's ladder
//! let mut tracer = RingTracer::new(1024);
//! tracer.record(Event::Fault {
//!     size: huge,
//!     site: trident_obs::AllocSite::PageFault,
//!     ns: 1800,
//! });
//! let jsonl = tracer.to_jsonl();
//! let replayed: Vec<Event> = jsonl
//!     .lines()
//!     .map(|l| Event::parse_jsonl(l).unwrap())
//!     .collect();
//! let snap = StatsSnapshot::from_events(replayed.iter());
//! assert_eq!(snap.faults[huge.rung()], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod event;
mod metrics;
mod recorder;
mod snapshot;

pub use event::{jsonl_schema_version, AllocSite, Event, InjectSite, ParseError, SpanKind};
pub use metrics::{Counter, Histogram};
pub use recorder::{DynRecorder, NoopRecorder, ObsRecorder, Recorder, RingTracer};
pub use snapshot::{StatsSnapshot, SNAPSHOT_VERSION};
