//! The recorder trait, the zero-cost no-op recorder and the ring tracer.

use std::collections::VecDeque;

use crate::{Event, Histogram};

/// A sink for [`Event`]s.
///
/// Instrumented components take `&mut impl Recorder` (or `&mut dyn
/// Recorder`) and report every observable action through it. Callers that
/// do not care pass [`NoopRecorder`], whose `record` is an empty `#[inline]`
/// function — the compiler erases the call, so the instrumented hot path
/// costs nothing when tracing is off.
pub trait Recorder {
    /// Whether events are retained. Instrumentation may skip *computing*
    /// expensive event payloads when this is `false`; cheap events should
    /// be reported unconditionally.
    fn enabled(&self) -> bool {
        true
    }

    /// Reports one event.
    fn record(&mut self, event: Event);
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: Event) {
        (**self).record(event);
    }
}

/// The recorder that discards everything, at zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// A bounded ring buffer of the most recent events.
///
/// When full, the oldest event is evicted and counted in
/// [`dropped`](RingTracer::dropped); a trace with `dropped() == 0` is
/// complete and replays to the exact live snapshot (see
/// [`StatsSnapshot::from_events`](crate::StatsSnapshot::from_events)).
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingTracer {
    /// Creates a tracer retaining at most `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingTracer {
        let capacity = capacity.max(1);
        RingTracer {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            dropped: 0,
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Removes and returns the retained events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Serializes the retained events as JSONL, one event per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Histogram of fault latencies (power-of-two ns buckets) over the
    /// retained events.
    #[must_use]
    pub fn fault_latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for ev in &self.events {
            if let Event::Fault { ns, .. } = ev {
                h.record(*ns);
            }
        }
        h
    }

    /// Count of retained events per translation page size, for quick TLB
    /// trace inspection.
    #[must_use]
    pub fn tlb_miss_counts(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for ev in &self.events {
            if let Event::TlbMiss { size, .. } = ev {
                counts[*size as usize] += 1;
            }
        }
        counts
    }
}

impl Recorder for RingTracer {
    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// The concrete recorder stored inside simulation contexts.
///
/// `MmContext` derives `Clone` and `Debug`, so it cannot hold a
/// `Box<dyn Recorder>`; this enum dispatches between the two shipped
/// recorders while staying cloneable. The no-op arm is a single match on
/// a fieldless variant, which the optimizer folds away.
#[derive(Debug, Clone, Default)]
pub enum ObsRecorder {
    /// Discard everything (the default).
    #[default]
    Noop,
    /// Retain events in a bounded ring.
    Ring(RingTracer),
}

impl ObsRecorder {
    /// A ring-buffer recorder with the given capacity.
    #[must_use]
    pub fn ring(capacity: usize) -> ObsRecorder {
        ObsRecorder::Ring(RingTracer::new(capacity))
    }

    /// The underlying tracer, if tracing is on.
    #[must_use]
    pub fn tracer(&self) -> Option<&RingTracer> {
        match self {
            ObsRecorder::Noop => None,
            ObsRecorder::Ring(t) => Some(t),
        }
    }

    /// Mutable access to the underlying tracer, if tracing is on.
    pub fn tracer_mut(&mut self) -> Option<&mut RingTracer> {
        match self {
            ObsRecorder::Noop => None,
            ObsRecorder::Ring(t) => Some(t),
        }
    }
}

impl Recorder for ObsRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        match self {
            ObsRecorder::Noop => false,
            ObsRecorder::Ring(_) => true,
        }
    }

    #[inline]
    fn record(&mut self, event: Event) {
        match self {
            ObsRecorder::Noop => {}
            ObsRecorder::Ring(t) => t.record(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocSite;
    use trident_types::PageSize;

    fn fault(ns: u64) -> Event {
        Event::Fault {
            size: PageSize::Base,
            site: AllocSite::PageFault,
            ns,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = RingTracer::new(3);
        for ns in 0..5 {
            t.record(fault(ns));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let retained: Vec<u64> = t
            .events()
            .map(|e| match e {
                Event::Fault { ns, .. } => *ns,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(retained, [2, 3, 4]);
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let mut n = NoopRecorder;
        assert!(!n.enabled());
        n.record(fault(1));
        let mut o = ObsRecorder::default();
        assert!(!o.enabled());
        o.record(fault(1));
        assert!(o.tracer().is_none());
    }

    #[test]
    fn obs_recorder_ring_retains_and_drains() {
        let mut o = ObsRecorder::ring(8);
        assert!(o.enabled());
        o.record(fault(7));
        o.record(Event::TlbMiss {
            size: PageSize::Huge,
            walk_cycles: 20,
        });
        let tracer = o.tracer().expect("tracing on");
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.tlb_miss_counts(), [0, 1, 0]);
        assert_eq!(tracer.fault_latency_histogram().count(), 1);
        let drained = o.tracer_mut().expect("tracing on").drain();
        assert_eq!(drained.len(), 2);
        assert!(o.tracer().expect("still on").is_empty());
    }

    #[test]
    fn jsonl_export_parses_back() {
        let mut t = RingTracer::new(16);
        t.record(fault(3));
        t.record(Event::ZeroFill { blocks: 1 });
        let parsed: Result<Vec<Event>, _> = t.to_jsonl().lines().map(Event::parse_jsonl).collect();
        assert_eq!(parsed.unwrap(), t.drain());
    }
}
