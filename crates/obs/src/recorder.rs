//! The recorder trait, the zero-cost no-op recorder and the ring tracer.

use std::any::Any;
use std::collections::VecDeque;

use crate::{Event, Histogram};

/// A sink for [`Event`]s.
///
/// Instrumented components take `&mut impl Recorder` (or `&mut dyn
/// Recorder`) and report every observable action through it. Callers that
/// do not care pass [`NoopRecorder`], whose `record` is an empty `#[inline]`
/// function — the compiler erases the call, so the instrumented hot path
/// costs nothing when tracing is off.
pub trait Recorder {
    /// Whether events are retained. Instrumentation may skip *computing*
    /// expensive event payloads when this is `false`; cheap events should
    /// be reported unconditionally.
    fn enabled(&self) -> bool {
        true
    }

    /// Reports one event.
    fn record(&mut self, event: Event);
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: Event) {
        (**self).record(event);
    }
}

/// The recorder that discards everything, at zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// Generates the plain (recorder-free) variant of a `*_rec` method as a
/// one-line wrapper that passes [`NoopRecorder`], so the two variants can
/// never drift: the recorder-generic method is the single real
/// implementation.
///
/// Each entry names the plain method, the `*_rec` method it forwards to,
/// and the non-recorder part of the signature; attributes and doc
/// comments pass through to the generated method.
///
/// # Examples
///
/// ```
/// use trident_obs::{Event, Recorder};
///
/// struct Counter(u64);
///
/// impl Counter {
///     pub fn bump_rec<R: Recorder>(&mut self, by: u64, rec: &mut R) -> u64 {
///         rec.record(Event::ZeroFill { blocks: by });
///         self.0 += by;
///         self.0
///     }
///
///     trident_obs::noop_variant! {
///         /// [`bump_rec`](Self::bump_rec) without event reporting.
///         pub fn bump => bump_rec(&mut self, by: u64) -> u64;
///     }
/// }
///
/// assert_eq!(Counter(0).bump(3), 3);
/// ```
#[macro_export]
macro_rules! noop_variant {
    ($(
        $(#[$meta:meta])*
        $vis:vis fn $plain:ident => $rec:ident (
            &mut self $(, $arg:ident : $ty:ty )* $(,)?
        ) $(-> $ret:ty)?;
    )+) => {$(
        $(#[$meta])*
        #[inline]
        $vis fn $plain(&mut self $(, $arg: $ty)*) $(-> $ret)? {
            self.$rec($($arg,)* &mut $crate::NoopRecorder)
        }
    )+};
}

/// A bounded ring buffer of the most recent events.
///
/// When full, the oldest event is evicted and counted in
/// [`dropped`](RingTracer::dropped); a trace with `dropped() == 0` is
/// complete and replays to the exact live snapshot (see
/// [`StatsSnapshot::from_events`](crate::StatsSnapshot::from_events)).
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingTracer {
    /// Creates a tracer retaining at most `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingTracer {
        let capacity = capacity.max(1);
        RingTracer {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            dropped: 0,
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Accounts `n` events lost *upstream* of the ring (e.g. simulated
    /// ring pressure from a fault plan), so the lossiness check stays
    /// honest even though the ring itself never saw them.
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Removes and returns the retained events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Serializes the retained events as JSONL, one event per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Histogram of fault latencies (power-of-two ns buckets) over the
    /// retained events.
    #[must_use]
    pub fn fault_latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for ev in &self.events {
            if let Event::Fault { ns, .. } = ev {
                h.record(*ns);
            }
        }
        h
    }

    /// Count of retained events per translation page size, for quick TLB
    /// trace inspection.
    #[must_use]
    pub fn tlb_miss_counts(&self) -> [u64; trident_types::MAX_RUNGS] {
        let mut counts = [0u64; trident_types::MAX_RUNGS];
        for ev in &self.events {
            if let Event::TlbMiss { size, .. } = ev {
                counts[size.rung()] += 1;
            }
        }
        counts
    }
}

impl Recorder for RingTracer {
    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// A clonable, inspectable recorder that can live behind
/// [`ObsRecorder::Custom`].
///
/// `MmContext` derives `Clone` and `Debug`, so any recorder stored there
/// must be clonable through a box; `clone_box` provides that, and the
/// `as_any*` hooks let callers downcast back to the concrete type after a
/// run (e.g. to pull a finished profile out). Recorders that wrap a
/// [`RingTracer`] should override [`ring`](DynRecorder::ring) /
/// [`ring_mut`](DynRecorder::ring_mut) so trace draining keeps working
/// through the wrapper.
pub trait DynRecorder: Recorder + std::fmt::Debug + Send {
    /// Clones the recorder into a fresh box.
    fn clone_box(&self) -> Box<dyn DynRecorder>;

    /// The recorder as `Any`, for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// The recorder as mutable `Any`, for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// The wrapped ring tracer, if this recorder keeps one.
    fn ring(&self) -> Option<&RingTracer> {
        None
    }

    /// Mutable access to the wrapped ring tracer, if any.
    fn ring_mut(&mut self) -> Option<&mut RingTracer> {
        None
    }
}

/// The concrete recorder stored inside simulation contexts.
///
/// `MmContext` derives `Clone` and `Debug`, so it cannot hold a bare
/// `Box<dyn Recorder>`; this enum dispatches between the shipped
/// recorders (and boxed [`DynRecorder`]s) while staying cloneable. The
/// no-op arm is a single match on a fieldless variant, which the
/// optimizer folds away.
#[derive(Debug, Default)]
pub enum ObsRecorder {
    /// Discard everything (the default).
    #[default]
    Noop,
    /// Retain events in a bounded ring.
    Ring(RingTracer),
    /// A caller-supplied recorder (profiler, streaming writer, …).
    Custom(Box<dyn DynRecorder>),
}

impl Clone for ObsRecorder {
    fn clone(&self) -> ObsRecorder {
        match self {
            ObsRecorder::Noop => ObsRecorder::Noop,
            ObsRecorder::Ring(t) => ObsRecorder::Ring(t.clone()),
            ObsRecorder::Custom(c) => ObsRecorder::Custom(c.clone_box()),
        }
    }
}

impl ObsRecorder {
    /// A ring-buffer recorder with the given capacity.
    #[must_use]
    pub fn ring(capacity: usize) -> ObsRecorder {
        ObsRecorder::Ring(RingTracer::new(capacity))
    }

    /// Wraps a caller-supplied recorder.
    #[must_use]
    pub fn custom(recorder: Box<dyn DynRecorder>) -> ObsRecorder {
        ObsRecorder::Custom(recorder)
    }

    /// Downcasts a [`Custom`](ObsRecorder::Custom) recorder to its
    /// concrete type.
    #[must_use]
    pub fn custom_ref<T: Any>(&self) -> Option<&T> {
        match self {
            ObsRecorder::Custom(c) => c.as_any().downcast_ref(),
            _ => None,
        }
    }

    /// Mutable downcast of a [`Custom`](ObsRecorder::Custom) recorder.
    pub fn custom_mut<T: Any>(&mut self) -> Option<&mut T> {
        match self {
            ObsRecorder::Custom(c) => c.as_any_mut().downcast_mut(),
            _ => None,
        }
    }

    /// The underlying tracer, if this recorder keeps one (directly or
    /// through a custom wrapper).
    #[must_use]
    pub fn tracer(&self) -> Option<&RingTracer> {
        match self {
            ObsRecorder::Noop => None,
            ObsRecorder::Ring(t) => Some(t),
            ObsRecorder::Custom(c) => c.ring(),
        }
    }

    /// Mutable access to the underlying tracer, if any.
    pub fn tracer_mut(&mut self) -> Option<&mut RingTracer> {
        match self {
            ObsRecorder::Noop => None,
            ObsRecorder::Ring(t) => Some(t),
            ObsRecorder::Custom(c) => c.ring_mut(),
        }
    }
}

impl Recorder for ObsRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        match self {
            ObsRecorder::Noop => false,
            ObsRecorder::Ring(_) => true,
            ObsRecorder::Custom(c) => c.enabled(),
        }
    }

    #[inline]
    fn record(&mut self, event: Event) {
        match self {
            ObsRecorder::Noop => {}
            ObsRecorder::Ring(t) => t.record(event),
            ObsRecorder::Custom(c) => c.record(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocSite;
    use trident_types::PageSize;

    fn fault(ns: u64) -> Event {
        Event::Fault {
            size: PageSize::BASE,
            site: AllocSite::PageFault,
            ns,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = RingTracer::new(3);
        for ns in 0..5 {
            t.record(fault(ns));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let retained: Vec<u64> = t
            .events()
            .map(|e| match e {
                Event::Fault { ns, .. } => *ns,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(retained, [2, 3, 4]);
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let mut n = NoopRecorder;
        assert!(!n.enabled());
        n.record(fault(1));
        let mut o = ObsRecorder::default();
        assert!(!o.enabled());
        o.record(fault(1));
        assert!(o.tracer().is_none());
    }

    #[test]
    fn obs_recorder_ring_retains_and_drains() {
        let mut o = ObsRecorder::ring(8);
        assert!(o.enabled());
        o.record(fault(7));
        o.record(Event::TlbMiss {
            size: PageSize::new(1),
            walk_cycles: 20,
        });
        let tracer = o.tracer().expect("tracing on");
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.tlb_miss_counts(), [0, 1, 0, 0, 0, 0]);
        assert_eq!(tracer.fault_latency_histogram().count(), 1);
        let drained = o.tracer_mut().expect("tracing on").drain();
        assert_eq!(drained.len(), 2);
        assert!(o.tracer().expect("still on").is_empty());
    }

    #[test]
    fn jsonl_export_parses_back() {
        let mut t = RingTracer::new(16);
        t.record(fault(3));
        t.record(Event::ZeroFill { blocks: 1 });
        let parsed: Result<Vec<Event>, _> = t.to_jsonl().lines().map(Event::parse_jsonl).collect();
        assert_eq!(parsed.unwrap(), t.drain());
    }
}
