//! Minimal metric primitives: a monotonic counter and a power-of-two
//! bucketed histogram.
//!
//! These are plain values, not registries: components that want a derived
//! metric build it from events (see
//! [`RingTracer::fault_latency_histogram`](crate::RingTracer::fault_latency_histogram))
//! or keep one as a field. No atomics — the simulator's parallelism is
//! across independent experiment cells, never within one.

use core::fmt;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Number of power-of-two buckets: values up to `2^63` land in a bucket.
const BUCKETS: usize = 64;

/// A histogram with power-of-two buckets.
///
/// Value `v` lands in bucket `⌊log2(v)⌋ + 1` (zero in bucket 0), so bucket
/// `i > 0` spans `[2^(i-1), 2^i)`. Good enough to eyeball latency
/// distributions without per-sample storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = match value {
            0 => 0,
            v => (63 - v.leading_zeros() as usize) + 1,
        };
        self.buckets[bucket.min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, if any were recorded.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample, if any were recorded.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds another histogram's samples into this one. The result equals
    /// a histogram fed both sample streams in any order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(bucket_upper_bound_exclusive, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let upper = if i == 0 { 1 } else { 1u64 << i.min(63) };
                (upper, *c)
            })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            None => write!(f, "empty"),
            Some(mean) => {
                write!(
                    f,
                    "n={} mean={mean:.1} min={} max={}",
                    self.count, self.min, self.max
                )?;
                for (upper, count) in self.nonzero_buckets() {
                    write!(f, " <{upper}:{count}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 -> <1; 1 -> <2; 2,3 -> <4; 4 -> <8; 1024 -> <2048.
        assert_eq!(buckets, [(1, 1), (2, 1), (4, 2), (8, 1), (2048, 1)]);
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0, 3, 900] {
            a.record(v);
            both.record(v);
        }
        for v in [7, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        a.merge(&Histogram::new());
        assert_eq!(a, both, "merging an empty histogram is a no-op");
    }

    #[test]
    fn histogram_display_is_compact() {
        let mut h = Histogram::new();
        assert_eq!(h.to_string(), "empty");
        h.record(7);
        assert!(h.to_string().contains("n=1"));
    }
}
