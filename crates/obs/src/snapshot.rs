//! The versioned aggregate-counter snapshot.

use trident_types::{PageSize, MAX_RUNGS};

use crate::{AllocSite, Event, InjectSite};

/// Version of the snapshot layout and of the JSONL event schema.
///
/// Bump when a field is added, removed or changes meaning; traces and
/// snapshots from different versions must not be mixed.
pub const SNAPSHOT_VERSION: u32 = 5;

/// Aggregate memory-management counters at one point in time.
///
/// This is the single consumption surface for experiments, reports and
/// governors: the raw material for the paper's Tables 3–5 and Figure 7.
/// A snapshot is obtained either from the live counters
/// (`MmStats::snapshot()` in `trident-core`) or by replaying a recorded
/// trace with [`StatsSnapshot::from_events`]; the two agree whenever the
/// trace lost no events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Schema version; always [`SNAPSHOT_VERSION`] for values built by
    /// this crate.
    pub version: u32,
    /// Faults served, by ladder rung (indexed by `PageSize::rung()`;
    /// rungs beyond the active geometry's ladder stay zero).
    pub faults: [u64; MAX_RUNGS],
    /// Nanoseconds spent in fault handling, by ladder rung.
    pub fault_ns: [u64; MAX_RUNGS],
    /// 1GB allocation attempts at fault time.
    pub giant_attempts_fault: u64,
    /// 1GB allocation failures at fault time (no contiguity).
    pub giant_failures_fault: u64,
    /// 1GB allocation attempts during promotion.
    pub giant_attempts_promo: u64,
    /// 1GB allocation failures during promotion, *after* compaction was
    /// given a chance.
    pub giant_failures_promo: u64,
    /// Promotions performed, by target ladder rung.
    pub promotions: [u64; MAX_RUNGS],
    /// Demotions performed (bloat recovery), by source ladder rung.
    pub demotions: [u64; MAX_RUNGS],
    /// Bytes copied by compaction (Figure 7's quantity).
    pub compaction_bytes_copied: u64,
    /// Bytes copied by promotion (copying small pages into the large one).
    pub promotion_bytes_copied: u64,
    /// Bytes whose copy was elided by Trident_pv mapping exchanges.
    pub pv_bytes_exchanged: u64,
    /// Compaction attempts.
    pub compaction_attempts: u64,
    /// Compactions that produced the requested free chunk.
    pub compaction_successes: u64,
    /// Background-daemon CPU time (khugepaged + kbinmanager + zero-fill).
    pub daemon_ns: u64,
    /// Base pages mapped beyond what the application ever touched
    /// (internal-fragmentation bloat from aggressive promotion).
    pub bloat_pages: u64,
    /// Bloat pages recovered by demotion / zero-page dedup.
    pub bloat_recovered_pages: u64,
    /// Giant blocks zero-filled in the background.
    pub giant_blocks_prezeroed: u64,
    /// Faults injected by a deterministic fault plan, by
    /// [`InjectSite`] wire order.
    pub injected_faults: [u64; 5],
    /// Promotions deferred (candidate invalidated or compaction backoff)
    /// for a later re-arm tick.
    pub promotions_deferred: u64,
    /// Trident_pv exchanges that fell back to copying.
    pub pv_fallbacks: u64,
    /// Bytes copied by Trident_pv fallbacks instead of exchanged.
    pub pv_fallback_bytes: u64,
}

impl Default for StatsSnapshot {
    fn default() -> Self {
        StatsSnapshot {
            version: SNAPSHOT_VERSION,
            faults: [0; MAX_RUNGS],
            fault_ns: [0; MAX_RUNGS],
            giant_attempts_fault: 0,
            giant_failures_fault: 0,
            giant_attempts_promo: 0,
            giant_failures_promo: 0,
            promotions: [0; MAX_RUNGS],
            demotions: [0; MAX_RUNGS],
            compaction_bytes_copied: 0,
            promotion_bytes_copied: 0,
            pv_bytes_exchanged: 0,
            compaction_attempts: 0,
            compaction_successes: 0,
            daemon_ns: 0,
            bloat_pages: 0,
            bloat_recovered_pages: 0,
            giant_blocks_prezeroed: 0,
            injected_faults: [0; 5],
            promotions_deferred: 0,
            pv_fallbacks: 0,
            pv_fallback_bytes: 0,
        }
    }
}

impl StatsSnapshot {
    /// Folds one event into the counters. Trace-only events are ignored.
    pub fn apply(&mut self, event: &Event) {
        match *event {
            Event::Fault { size, ns, .. } => {
                self.faults[size.rung()] += 1;
                self.fault_ns[size.rung()] += ns;
            }
            Event::GiantAttempt { site, failed } => match site {
                AllocSite::PageFault => {
                    self.giant_attempts_fault += 1;
                    self.giant_failures_fault += u64::from(failed);
                }
                AllocSite::Promotion => {
                    self.giant_attempts_promo += 1;
                    self.giant_failures_promo += u64::from(failed);
                }
            },
            Event::Promote {
                size,
                bytes_copied,
                bloat_pages,
            } => {
                self.promotions[size.rung()] += 1;
                self.promotion_bytes_copied += bytes_copied;
                self.bloat_pages += bloat_pages;
            }
            Event::Demote {
                size,
                recovered_pages,
            } => {
                self.demotions[size.rung()] += 1;
                self.bloat_recovered_pages += recovered_pages;
            }
            Event::PvExchange { bytes, .. } => self.pv_bytes_exchanged += bytes,
            Event::CompactionRun { succeeded, .. } => {
                self.compaction_attempts += 1;
                self.compaction_successes += u64::from(succeeded);
            }
            Event::CompactionMove { bytes } => self.compaction_bytes_copied += bytes,
            Event::ZeroFill { blocks } => self.giant_blocks_prezeroed += blocks,
            Event::DaemonTick { ns } => self.daemon_ns += ns,
            Event::FaultInjected { site } => self.injected_faults[site as usize] += 1,
            Event::PromotionDeferred { .. } => self.promotions_deferred += 1,
            Event::PvFallback { bytes } => {
                self.pv_fallbacks += 1;
                self.pv_fallback_bytes += bytes;
            }
            Event::BuddySplit { .. }
            | Event::BuddyCoalesce { .. }
            | Event::TlbMiss { .. }
            | Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::TraceGap { .. }
            | Event::Gauge { .. }
            | Event::TenantScope { .. } => {}
        }
    }

    /// Rebuilds a snapshot by replaying a trace.
    #[must_use]
    pub fn from_events<'a, I: IntoIterator<Item = &'a Event>>(events: I) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for ev in events {
            snap.apply(ev);
        }
        snap
    }

    /// Merges another snapshot's counters into this one (for combining
    /// guest and hypervisor views, or parallel experiment cells).
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        debug_assert_eq!(self.version, other.version);
        for i in 0..MAX_RUNGS {
            self.faults[i] += other.faults[i];
            self.fault_ns[i] += other.fault_ns[i];
            self.promotions[i] += other.promotions[i];
            self.demotions[i] += other.demotions[i];
        }
        self.giant_attempts_fault += other.giant_attempts_fault;
        self.giant_failures_fault += other.giant_failures_fault;
        self.giant_attempts_promo += other.giant_attempts_promo;
        self.giant_failures_promo += other.giant_failures_promo;
        self.compaction_bytes_copied += other.compaction_bytes_copied;
        self.promotion_bytes_copied += other.promotion_bytes_copied;
        self.pv_bytes_exchanged += other.pv_bytes_exchanged;
        self.compaction_attempts += other.compaction_attempts;
        self.compaction_successes += other.compaction_successes;
        self.daemon_ns += other.daemon_ns;
        self.bloat_pages += other.bloat_pages;
        self.bloat_recovered_pages += other.bloat_recovered_pages;
        self.giant_blocks_prezeroed += other.giant_blocks_prezeroed;
        for i in 0..self.injected_faults.len() {
            self.injected_faults[i] += other.injected_faults[i];
        }
        self.promotions_deferred += other.promotions_deferred;
        self.pv_fallbacks += other.pv_fallbacks;
        self.pv_fallback_bytes += other.pv_fallback_bytes;
    }

    /// 1GB allocation failure rate at `site`, or `None` if never attempted
    /// (the "NA" entries of Table 4).
    #[must_use]
    pub fn giant_failure_rate(&self, site: AllocSite) -> Option<f64> {
        let (attempts, failures) = match site {
            AllocSite::PageFault => (self.giant_attempts_fault, self.giant_failures_fault),
            AllocSite::Promotion => (self.giant_attempts_promo, self.giant_failures_promo),
        };
        (attempts > 0).then(|| failures as f64 / attempts as f64)
    }

    /// Total faults across sizes.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total fault-handling time.
    #[must_use]
    pub fn total_fault_ns(&self) -> u64 {
        self.fault_ns.iter().sum()
    }

    /// Mean fault latency at one rung in nanoseconds, if any occurred.
    ///
    /// Callers that want the paper's "mean 1GB fault latency" pass their
    /// geometry's `largest()` rung.
    #[must_use]
    pub fn mean_fault_ns(&self, size: PageSize) -> Option<u64> {
        let n = self.faults[size.rung()];
        (n > 0).then(|| self.fault_ns[size.rung()] / n)
    }

    /// Fraction of compaction attempts that succeeded, if any ran.
    #[must_use]
    pub fn compaction_success_rate(&self) -> Option<f64> {
        (self.compaction_attempts > 0)
            .then(|| self.compaction_successes as f64 / self.compaction_attempts as f64)
    }

    /// Total faults injected by a fault plan, across all sites.
    #[must_use]
    pub fn total_injected_faults(&self) -> u64 {
        self.injected_faults.iter().sum()
    }

    /// Faults injected at one site.
    #[must_use]
    pub fn injected_at(&self, site: InjectSite) -> u64 {
        self.injected_faults[site as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_manual_accumulation() {
        let events = [
            Event::Fault {
                size: PageSize::new(2),
                site: AllocSite::PageFault,
                ns: 400,
            },
            Event::Fault {
                size: PageSize::new(2),
                site: AllocSite::PageFault,
                ns: 200,
            },
            Event::GiantAttempt {
                site: AllocSite::PageFault,
                failed: true,
            },
            Event::GiantAttempt {
                site: AllocSite::PageFault,
                failed: false,
            },
            Event::CompactionRun {
                smart: true,
                succeeded: true,
            },
            Event::TlbMiss {
                size: PageSize::BASE,
                walk_cycles: 35,
            },
        ];
        let snap = StatsSnapshot::from_events(events.iter());
        assert_eq!(snap.total_faults(), 2);
        assert_eq!(snap.mean_fault_ns(PageSize::new(2)), Some(300));
        assert_eq!(
            snap.giant_failure_rate(AllocSite::PageFault),
            Some(0.5),
            "one of two attempts failed"
        );
        assert_eq!(snap.giant_failure_rate(AllocSite::Promotion), None);
        assert_eq!(snap.compaction_success_rate(), Some(1.0));
    }

    #[test]
    fn absorb_sums_all_counters() {
        let mut a = StatsSnapshot::from_events([Event::DaemonTick { ns: 10 }].iter());
        let b = StatsSnapshot::from_events(
            [
                Event::DaemonTick { ns: 5 },
                Event::ZeroFill { blocks: 2 },
                Event::Demote {
                    size: PageSize::new(1),
                    recovered_pages: 3,
                },
            ]
            .iter(),
        );
        a.absorb(&b);
        assert_eq!(a.daemon_ns, 15);
        assert_eq!(a.giant_blocks_prezeroed, 2);
        assert_eq!(a.demotions[1], 1);
        assert_eq!(a.bloat_recovered_pages, 3);
    }

    #[test]
    fn injection_events_land_in_their_counters() {
        let events = [
            Event::FaultInjected {
                site: InjectSite::Alloc,
            },
            Event::FaultInjected {
                site: InjectSite::Alloc,
            },
            Event::FaultInjected {
                site: InjectSite::PvExchange,
            },
            Event::PromotionDeferred {
                size: PageSize::new(2),
            },
            Event::PvFallback { bytes: 4096 },
            Event::PvFallback { bytes: 8192 },
        ];
        let mut snap = StatsSnapshot::from_events(events.iter());
        assert_eq!(snap.injected_at(InjectSite::Alloc), 2);
        assert_eq!(snap.injected_at(InjectSite::PvExchange), 1);
        assert_eq!(snap.total_injected_faults(), 3);
        assert_eq!(snap.promotions_deferred, 1);
        assert_eq!(snap.pv_fallbacks, 2);
        assert_eq!(snap.pv_fallback_bytes, 12_288);
        let copy = snap;
        snap.absorb(&copy);
        assert_eq!(snap.total_injected_faults(), 6);
        assert_eq!(snap.pv_fallback_bytes, 24_576);
    }
}
