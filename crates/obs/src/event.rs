//! The typed event vocabulary and its JSONL wire format.

use core::fmt;
use std::error::Error;

use trident_types::{PageSize, TenantId};

/// Where a large-page allocation was attempted, for Table 4's breakdown of
/// failure rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocSite {
    /// In the page-fault handler.
    PageFault,
    /// In the background promotion daemon.
    Promotion,
}

impl AllocSite {
    fn as_str(self) -> &'static str {
        match self {
            AllocSite::PageFault => "page_fault",
            AllocSite::Promotion => "promotion",
        }
    }

    fn from_str(s: &str) -> Option<AllocSite> {
        match s {
            "page_fault" => Some(AllocSite::PageFault),
            "promotion" => Some(AllocSite::Promotion),
            _ => None,
        }
    }
}

/// Where a deterministic fault plan can inject a failure.
///
/// Each site names one failure-capable operation in the stack; the
/// injector in `trident-fault` decides per-site, and every injected fault
/// is reported as an [`Event::FaultInjected`] carrying its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectSite {
    /// A large-page buddy allocation (fault- or promotion-time).
    Alloc,
    /// A compaction pass aborted before migrating anything.
    Compaction,
    /// A Trident_pv exchange hypercall rejected by the hypervisor.
    PvExchange,
    /// A promotion candidate invalidated under the daemon (raced away).
    Promotion,
    /// Trace-ring pressure: one event lost to a simulated full ring.
    TraceRing,
}

impl InjectSite {
    /// Every injection site, in wire order (indexable by `site as usize`).
    pub const ALL: [InjectSite; 5] = [
        InjectSite::Alloc,
        InjectSite::Compaction,
        InjectSite::PvExchange,
        InjectSite::Promotion,
        InjectSite::TraceRing,
    ];

    /// Stable lowercase wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            InjectSite::Alloc => "alloc",
            InjectSite::Compaction => "compaction",
            InjectSite::PvExchange => "pv_exchange",
            InjectSite::Promotion => "promotion",
            InjectSite::TraceRing => "trace_ring",
        }
    }

    /// Parses a wire tag produced by [`as_str`](Self::as_str). Public so
    /// wire formats beyond the trace (e.g. the job service's fault
    /// specs) reuse the same site names.
    #[must_use]
    pub fn parse(s: &str) -> Option<InjectSite> {
        InjectSite::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for InjectSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The instrumented operations whose begin/end pairs form duration spans.
///
/// Span events are trace-only: they never touch [`StatsSnapshot`] counters.
/// A [`SpanBegin`](Event::SpanBegin) opens a span; the matching
/// [`SpanEnd`](Event::SpanEnd) carries the modeled duration (the simulator
/// runs on modeled time, so the duration is known — and deterministic — at
/// end). Consumers that aggregate spans live in `trident-prof`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One page-fault handling, any page size.
    Fault,
    /// One promotion-daemon address-space scan.
    PromoScan,
    /// One compaction pass.
    Compaction,
    /// One Trident_pv mapping-exchange batch.
    PvExchange,
    /// One governed background-daemon tick.
    DaemonTick,
    /// One background zero-fill pass.
    ZeroFill,
}

impl SpanKind {
    /// Every span kind, in wire order (indexable by `kind as usize`).
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Fault,
        SpanKind::PromoScan,
        SpanKind::Compaction,
        SpanKind::PvExchange,
        SpanKind::DaemonTick,
        SpanKind::ZeroFill,
    ];

    /// Stable lowercase wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Fault => "fault",
            SpanKind::PromoScan => "promo_scan",
            SpanKind::Compaction => "compaction",
            SpanKind::PvExchange => "pv_exchange",
            SpanKind::DaemonTick => "daemon_tick",
            SpanKind::ZeroFill => "zero_fill",
        }
    }

    fn from_str(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable wire tags for ladder rungs, positional rather than sized: the
/// same trace schema serves every geometry, and the first three keep their
/// historical x86 names so existing consumers (Prometheus label values,
/// CI greps) survive the ladder generalization unchanged.
const SIZE_TAGS: [&str; trident_types::MAX_RUNGS] = ["base", "huge", "giant", "r3", "r4", "r5"];

pub(crate) fn size_str(size: PageSize) -> &'static str {
    SIZE_TAGS[size.rung()]
}

fn size_from_str(s: &str) -> Option<PageSize> {
    SIZE_TAGS.iter().position(|t| *t == s).map(PageSize::new)
}

/// One observable memory-management action.
///
/// Snapshot-bearing events (faults, promotions, compaction, …) contribute
/// to [`StatsSnapshot`](crate::StatsSnapshot); trace-only events (buddy
/// churn, TLB misses) appear in traces but carry no aggregate counter —
/// see [`Event::is_snapshot_bearing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A page fault was served.
    Fault {
        /// Page size that was mapped.
        size: PageSize,
        /// Which path served it.
        site: AllocSite,
        /// Modeled handler latency.
        ns: u64,
    },
    /// A 1GB allocation was attempted.
    GiantAttempt {
        /// Fault-time or promotion-time attempt.
        site: AllocSite,
        /// Whether it failed for lack of contiguity.
        failed: bool,
    },
    /// A chunk was promoted to a larger page size.
    Promote {
        /// The target page size.
        size: PageSize,
        /// Bytes physically copied (zero for pure mapping exchanges).
        bytes_copied: u64,
        /// Base pages newly mapped beyond what the app ever touched.
        bloat_pages: u64,
    },
    /// A large mapping was demoted back to base pages.
    Demote {
        /// The source page size.
        size: PageSize,
        /// Bloat pages recovered by the demotion.
        recovered_pages: u64,
    },
    /// A Trident_pv batched mapping exchange with the hypervisor.
    PvExchange {
        /// Number of 2MB mappings exchanged.
        pairs: u64,
        /// Bytes whose copy the exchange elided.
        bytes: u64,
        /// Whether the pairs went through one batched hypercall.
        batched: bool,
    },
    /// A compaction pass ran.
    CompactionRun {
        /// Smart (skip-unmovable) or normal compaction.
        smart: bool,
        /// Whether it produced the requested free chunk.
        succeeded: bool,
    },
    /// Compaction migrated one allocation unit.
    CompactionMove {
        /// Bytes copied by the migration.
        bytes: u64,
    },
    /// The background pool pre-zeroed giant blocks.
    ZeroFill {
        /// Number of 1GB blocks zeroed.
        blocks: u64,
    },
    /// One background-daemon tick finished.
    DaemonTick {
        /// Modeled daemon CPU time for the tick.
        ns: u64,
    },
    /// The buddy allocator split a free block (trace-only).
    BuddySplit {
        /// Order of the block that was split.
        from_order: u8,
        /// Order the allocation actually wanted.
        to_order: u8,
    },
    /// The buddy allocator merged two buddies (trace-only).
    BuddyCoalesce {
        /// Order of the freed block before merging.
        from_order: u8,
        /// Order of the merged block.
        to_order: u8,
    },
    /// A TLB miss walked the page table (trace-only).
    TlbMiss {
        /// Page size of the translation.
        size: PageSize,
        /// Modeled walk latency in cycles.
        walk_cycles: u64,
    },
    /// An instrumented operation started (trace-only).
    SpanBegin {
        /// Which operation.
        kind: SpanKind,
    },
    /// An instrumented operation finished (trace-only).
    SpanEnd {
        /// Which operation.
        kind: SpanKind,
        /// Modeled duration of the whole span.
        ns: u64,
    },
    /// The ring tracer evicted events before this point (trace-only).
    ///
    /// Emitted by trace *writers* (e.g. `dump_trace`) ahead of a lossy
    /// dump so streaming readers can annotate the gap; never produced by
    /// live instrumentation.
    TraceGap {
        /// Number of events lost to eviction.
        dropped: u64,
    },
    /// A periodic fragmentation/contiguity gauge sample (trace-only).
    Gauge {
        /// Free-memory fragmentation index for 1GB blocks, in thousandths.
        fmfi_milli: u64,
        /// Free 2MB-or-larger capacity, in 2MB units.
        free_huge: u64,
        /// Free 1GB-or-larger capacity, in 1GB units.
        free_giant: u64,
    },
    /// A fault plan injected a failure at `site`.
    FaultInjected {
        /// The injection site that fired.
        site: InjectSite,
    },
    /// A promotion was deferred (candidate invalidated, or compaction in
    /// backoff) and will be re-armed on a later tick.
    PromotionDeferred {
        /// Target size of the deferred promotion.
        size: PageSize,
    },
    /// A Trident_pv exchange fell back to copying.
    PvFallback {
        /// Bytes copied instead of exchanged.
        bytes: u64,
    },
    /// Attribution marker (trace-only): every following event belongs to
    /// this tenant, until the next marker. Emitted only by multi-tenant
    /// engines — single-tenant traces carry none, so their byte streams
    /// are unchanged.
    TenantScope {
        /// The tenant now on stage.
        tenant: TenantId,
    },
}

impl Event {
    /// Whether the event contributes to [`StatsSnapshot`](crate::StatsSnapshot)
    /// counters. Trace-only events (buddy churn, TLB misses) return `false`.
    #[must_use]
    pub fn is_snapshot_bearing(&self) -> bool {
        !matches!(
            self,
            Event::BuddySplit { .. }
                | Event::BuddyCoalesce { .. }
                | Event::TlbMiss { .. }
                | Event::SpanBegin { .. }
                | Event::SpanEnd { .. }
                | Event::TraceGap { .. }
                | Event::Gauge { .. }
                | Event::TenantScope { .. }
        )
    }

    /// Stable lowercase tag identifying the event kind on the wire.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Fault { .. } => "fault",
            Event::GiantAttempt { .. } => "giant_attempt",
            Event::Promote { .. } => "promote",
            Event::Demote { .. } => "demote",
            Event::PvExchange { .. } => "pv_exchange",
            Event::CompactionRun { .. } => "compaction_run",
            Event::CompactionMove { .. } => "compaction_move",
            Event::ZeroFill { .. } => "zero_fill",
            Event::DaemonTick { .. } => "daemon_tick",
            Event::BuddySplit { .. } => "buddy_split",
            Event::BuddyCoalesce { .. } => "buddy_coalesce",
            Event::TlbMiss { .. } => "tlb_miss",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::TraceGap { .. } => "trace_gap",
            Event::Gauge { .. } => "gauge",
            Event::FaultInjected { .. } => "fault_injected",
            Event::PromotionDeferred { .. } => "promotion_deferred",
            Event::PvFallback { .. } => "pv_fallback",
            Event::TenantScope { .. } => "tenant_scope",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    ///
    /// The schema is versioned by the `"v"` field; see
    /// [`SNAPSHOT_VERSION`](crate::SNAPSHOT_VERSION).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let v = crate::SNAPSHOT_VERSION;
        let k = self.kind();
        match *self {
            Event::Fault { size, site, ns } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"size\":\"{}\",\"site\":\"{}\",\"ns\":{ns}}}",
                size_str(size),
                site.as_str()
            ),
            Event::GiantAttempt { site, failed } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"site\":\"{}\",\"failed\":{failed}}}",
                site.as_str()
            ),
            Event::Promote {
                size,
                bytes_copied,
                bloat_pages,
            } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"size\":\"{}\",\"bytes_copied\":{bytes_copied},\"bloat_pages\":{bloat_pages}}}",
                size_str(size)
            ),
            Event::Demote {
                size,
                recovered_pages,
            } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"size\":\"{}\",\"recovered_pages\":{recovered_pages}}}",
                size_str(size)
            ),
            Event::PvExchange {
                pairs,
                bytes,
                batched,
            } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"pairs\":{pairs},\"bytes\":{bytes},\"batched\":{batched}}}"
            ),
            Event::CompactionRun { smart, succeeded } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"smart\":{smart},\"succeeded\":{succeeded}}}"
            ),
            Event::CompactionMove { bytes } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"bytes\":{bytes}}}")
            }
            Event::ZeroFill { blocks } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"blocks\":{blocks}}}")
            }
            Event::DaemonTick { ns } => format!("{{\"v\":{v},\"ev\":\"{k}\",\"ns\":{ns}}}"),
            Event::BuddySplit {
                from_order,
                to_order,
            } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"from_order\":{from_order},\"to_order\":{to_order}}}"
            ),
            Event::BuddyCoalesce {
                from_order,
                to_order,
            } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"from_order\":{from_order},\"to_order\":{to_order}}}"
            ),
            Event::TlbMiss { size, walk_cycles } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"size\":\"{}\",\"walk_cycles\":{walk_cycles}}}",
                size_str(size)
            ),
            Event::SpanBegin { kind } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"span\":\"{}\"}}", kind.as_str())
            }
            Event::SpanEnd { kind, ns } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"span\":\"{}\",\"ns\":{ns}}}",
                kind.as_str()
            ),
            Event::TraceGap { dropped } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"dropped\":{dropped}}}")
            }
            Event::Gauge {
                fmfi_milli,
                free_huge,
                free_giant,
            } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"fmfi_milli\":{fmfi_milli},\"free_huge\":{free_huge},\"free_giant\":{free_giant}}}"
            ),
            Event::FaultInjected { site } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"site\":\"{}\"}}", site.as_str())
            }
            Event::PromotionDeferred { size } => format!(
                "{{\"v\":{v},\"ev\":\"{k}\",\"size\":\"{}\"}}",
                size_str(size)
            ),
            Event::PvFallback { bytes } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"bytes\":{bytes}}}")
            }
            Event::TenantScope { tenant } => {
                format!("{{\"v\":{v},\"ev\":\"{k}\",\"tenant\":{}}}", tenant.raw())
            }
        }
    }

    /// Parses one JSONL line back into an event.
    ///
    /// Accepts exactly the output of [`Event::to_jsonl`] (field order is
    /// not significant; unknown fields are ignored).
    pub fn parse_jsonl(line: &str) -> Result<Event, ParseError> {
        let err = |reason: &str| ParseError {
            line: line.to_owned(),
            reason: reason.to_owned(),
        };
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(err("not a JSON object"));
        }
        let v = field_u64(line, "v").ok_or_else(|| err("missing \"v\""))?;
        if v != u64::from(crate::SNAPSHOT_VERSION) {
            return Err(err("unsupported schema version"));
        }
        let kind = field_str(line, "ev").ok_or_else(|| err("missing \"ev\""))?;
        let size = || {
            field_str(line, "size")
                .and_then(size_from_str)
                .ok_or_else(|| err("bad \"size\""))
        };
        let site = || {
            field_str(line, "site")
                .and_then(AllocSite::from_str)
                .ok_or_else(|| err("bad \"site\""))
        };
        let span = || {
            field_str(line, "span")
                .and_then(SpanKind::from_str)
                .ok_or_else(|| err("bad \"span\""))
        };
        let num = |key: &str| field_u64(line, key).ok_or_else(|| err("missing numeric field"));
        let flag = |key: &str| field_bool(line, key).ok_or_else(|| err("missing boolean field"));
        match kind {
            "fault" => Ok(Event::Fault {
                size: size()?,
                site: site()?,
                ns: num("ns")?,
            }),
            "giant_attempt" => Ok(Event::GiantAttempt {
                site: site()?,
                failed: flag("failed")?,
            }),
            "promote" => Ok(Event::Promote {
                size: size()?,
                bytes_copied: num("bytes_copied")?,
                bloat_pages: num("bloat_pages")?,
            }),
            "demote" => Ok(Event::Demote {
                size: size()?,
                recovered_pages: num("recovered_pages")?,
            }),
            "pv_exchange" => Ok(Event::PvExchange {
                pairs: num("pairs")?,
                bytes: num("bytes")?,
                batched: flag("batched")?,
            }),
            "compaction_run" => Ok(Event::CompactionRun {
                smart: flag("smart")?,
                succeeded: flag("succeeded")?,
            }),
            "compaction_move" => Ok(Event::CompactionMove {
                bytes: num("bytes")?,
            }),
            "zero_fill" => Ok(Event::ZeroFill {
                blocks: num("blocks")?,
            }),
            "daemon_tick" => Ok(Event::DaemonTick { ns: num("ns")? }),
            "buddy_split" => Ok(Event::BuddySplit {
                from_order: num("from_order")? as u8,
                to_order: num("to_order")? as u8,
            }),
            "buddy_coalesce" => Ok(Event::BuddyCoalesce {
                from_order: num("from_order")? as u8,
                to_order: num("to_order")? as u8,
            }),
            "tlb_miss" => Ok(Event::TlbMiss {
                size: size()?,
                walk_cycles: num("walk_cycles")?,
            }),
            "span_begin" => Ok(Event::SpanBegin { kind: span()? }),
            "span_end" => Ok(Event::SpanEnd {
                kind: span()?,
                ns: num("ns")?,
            }),
            "trace_gap" => Ok(Event::TraceGap {
                dropped: num("dropped")?,
            }),
            "gauge" => Ok(Event::Gauge {
                fmfi_milli: num("fmfi_milli")?,
                free_huge: num("free_huge")?,
                free_giant: num("free_giant")?,
            }),
            "fault_injected" => Ok(Event::FaultInjected {
                site: field_str(line, "site")
                    .and_then(InjectSite::parse)
                    .ok_or_else(|| err("bad \"site\""))?,
            }),
            "promotion_deferred" => Ok(Event::PromotionDeferred { size: size()? }),
            "pv_fallback" => Ok(Event::PvFallback {
                bytes: num("bytes")?,
            }),
            "tenant_scope" => Ok(Event::TenantScope {
                tenant: TenantId::new(
                    u32::try_from(num("tenant")?).map_err(|_| err("bad \"tenant\""))?,
                ),
            }),
            _ => Err(err("unknown event kind")),
        }
    }
}

/// Reads the `"v"` schema-version field of a JSONL trace line without
/// parsing the rest, so readers can distinguish version skew from garbage.
#[must_use]
pub fn jsonl_schema_version(line: &str) -> Option<u64> {
    field_u64(line.trim(), "v")
}

/// A JSONL line that could not be parsed back into an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The offending line.
    pub line: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace line ({}): {}", self.reason, self.line)
    }
}

impl Error for ParseError {}

/// Extracts the raw text after `"key":`, up to the next `,` or `}`.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if rest[..*i].starts_with('"') {
                // String value: ends at the closing quote (no escapes in
                // our vocabulary).
                *c == '"' && *i > 0
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, c)| if c == '"' { i + 1 } else { i })?;
    Some(rest[..end].trim())
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = field_raw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    match field_raw(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::Fault {
                size: PageSize::new(2),
                site: AllocSite::PageFault,
                ns: 123_456,
            },
            Event::GiantAttempt {
                site: AllocSite::Promotion,
                failed: true,
            },
            Event::Promote {
                size: PageSize::new(1),
                bytes_copied: 2 * 1024 * 1024,
                bloat_pages: 7,
            },
            Event::Demote {
                size: PageSize::new(2),
                recovered_pages: 11,
            },
            Event::PvExchange {
                pairs: 512,
                bytes: 1 << 30,
                batched: true,
            },
            Event::CompactionRun {
                smart: true,
                succeeded: false,
            },
            Event::CompactionMove { bytes: 4096 },
            Event::ZeroFill { blocks: 3 },
            Event::DaemonTick { ns: 987 },
            Event::BuddySplit {
                from_order: 18,
                to_order: 9,
            },
            Event::BuddyCoalesce {
                from_order: 9,
                to_order: 10,
            },
            Event::TlbMiss {
                size: PageSize::BASE,
                walk_cycles: 40,
            },
            Event::SpanBegin {
                kind: SpanKind::Fault,
            },
            Event::SpanEnd {
                kind: SpanKind::Compaction,
                ns: 5_000,
            },
            Event::TraceGap { dropped: 17 },
            Event::Gauge {
                fmfi_milli: 120,
                free_huge: 44,
                free_giant: 2,
            },
            Event::FaultInjected {
                site: InjectSite::Compaction,
            },
            Event::PromotionDeferred {
                size: PageSize::new(2),
            },
            Event::PvFallback { bytes: 1 << 21 },
            Event::TenantScope {
                tenant: TenantId::new(2),
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips_every_variant() {
        for ev in all_events() {
            let line = ev.to_jsonl();
            assert_eq!(Event::parse_jsonl(&line), Ok(ev), "line: {line}");
        }
    }

    #[test]
    fn parse_rejects_garbage_and_version_skew() {
        assert!(Event::parse_jsonl("not json").is_err());
        assert!(Event::parse_jsonl("{\"v\":4}").is_err());
        assert!(Event::parse_jsonl("{\"v\":999,\"ev\":\"fault\"}").is_err());
        assert!(Event::parse_jsonl("{\"v\":1,\"ev\":\"zero_fill\",\"blocks\":1}").is_err());
        assert!(Event::parse_jsonl("{\"v\":3,\"ev\":\"zero_fill\",\"blocks\":1}").is_err());
        assert!(Event::parse_jsonl("{\"v\":5,\"ev\":\"warp_drive\"}").is_err());
        assert!(
            Event::parse_jsonl("{\"v\":5,\"ev\":\"span_end\",\"span\":\"warp\",\"ns\":1}").is_err()
        );
        assert!(
            Event::parse_jsonl("{\"v\":5,\"ev\":\"fault_injected\",\"site\":\"warp\"}").is_err()
        );
        assert!(
            Event::parse_jsonl("{\"v\":5,\"ev\":\"tenant_scope\",\"tenant\":99999999999}").is_err()
        );
    }

    #[test]
    fn snapshot_bearing_excludes_trace_only_kinds() {
        let bearing: Vec<&str> = all_events()
            .iter()
            .filter(|e| !e.is_snapshot_bearing())
            .map(Event::kind)
            .collect();
        assert_eq!(
            bearing,
            [
                "buddy_split",
                "buddy_coalesce",
                "tlb_miss",
                "span_begin",
                "span_end",
                "trace_gap",
                "gauge",
                "tenant_scope"
            ]
        );
    }

    #[test]
    fn field_order_is_not_significant() {
        let line = "{\"ns\":5,\"site\":\"page_fault\",\"size\":\"base\",\"ev\":\"fault\",\"v\":5}";
        assert_eq!(
            Event::parse_jsonl(line),
            Ok(Event::Fault {
                size: PageSize::BASE,
                site: AllocSite::PageFault,
                ns: 5
            })
        );
    }
}
