//! Micro-benchmarks of the core data structures: buddy allocator, TLB
//! hierarchy, page-table operations, and the zero-fill pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trident_core::{CostModel, ZeroFillPool};
use trident_phys::{BuddyAllocator, FrameUse, PhysicalMemory};
use trident_tlb::TlbHierarchy;
use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
use trident_vm::PageTable;

fn bench_buddy(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy");
    group.bench_function("alloc_free_order0", |b| {
        let mut buddy = BuddyAllocator::new(1 << 20, 18);
        b.iter(|| {
            let p = buddy.alloc(0).unwrap();
            buddy.free(black_box(p), 0);
        });
    });
    group.bench_function("alloc_free_giant", |b| {
        let mut buddy = BuddyAllocator::new(1 << 20, 18);
        b.iter(|| {
            let p = buddy.alloc(18).unwrap();
            buddy.free(black_box(p), 18);
        });
    });
    group.bench_function("fmfi", |b| {
        let mut buddy = BuddyAllocator::new(1 << 20, 18);
        let mut rng = SmallRng::seed_from_u64(1);
        let held: Vec<u64> = (0..10_000).map(|_| buddy.alloc(0).unwrap()).collect();
        for &p in held.iter().filter(|_| rng.gen_bool(0.5)) {
            buddy.free(p, 0);
        }
        b.iter(|| black_box(buddy.fmfi(9)));
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    let geo = PageGeometry::X86_64;
    group.bench_function("hit_l1", |b| {
        let mut tlb = TlbHierarchy::skylake();
        tlb.access(Vpn::new(0), PageSize::BASE);
        b.iter(|| black_box(tlb.access(Vpn::new(0), PageSize::BASE)));
    });
    group.bench_function("random_mix", |b| {
        let mut tlb = TlbHierarchy::skylake();
        let mut rng = SmallRng::seed_from_u64(2);
        let pages: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..(1u64 << 24))).collect();
        let mut i = 0;
        b.iter(|| {
            let vpn = Vpn::new(pages[i % pages.len()]);
            i += 1;
            black_box(tlb.access(vpn, PageSize::BASE))
        });
    });
    let _ = geo;
    group.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    let geo = PageGeometry::X86_64;
    group.bench_function("map_unmap_base", |b| {
        let mut pt = PageTable::new(geo);
        b.iter(|| {
            pt.map(Vpn::new(123), Pfn::new(456), PageSize::BASE)
                .unwrap();
            pt.unmap(Vpn::new(123)).unwrap();
        });
    });
    group.bench_function("translate_hot", |b| {
        let mut pt = PageTable::new(geo);
        pt.map(Vpn::new(0), Pfn::new(1 << 18), PageSize::new(2))
            .unwrap();
        b.iter(|| black_box(pt.translate(Vpn::new(77))));
    });
    group.bench_function("chunk_profile_giant", |b| {
        let mut pt = PageTable::new(geo);
        for i in 0..512u64 {
            pt.map(Vpn::new(i * 512), Pfn::new(i * 512), PageSize::new(1))
                .unwrap();
        }
        b.iter(|| black_box(pt.chunk_profile(Vpn::new(0), PageSize::new(2))));
    });
    group.finish();
}

fn bench_zerofill(c: &mut Criterion) {
    // §5.1.2: async zero-fill turns 400ms 1GB faults into 2.7ms ones.
    // This measures the bookkeeping cost of the pool itself.
    let mut group = c.benchmark_group("zerofill");
    let geo = PageGeometry::X86_64;
    group.bench_function("tick_and_take", |b| {
        let mut mem = PhysicalMemory::new(geo, 8 * geo.base_pages(PageSize::new(2)));
        let cost = CostModel::default();
        b.iter(|| {
            let mut pool = ZeroFillPool::new(4);
            pool.tick(&mem, &cost, 2);
            let head = pool
                .take_prepared(&mut mem, FrameUse::User, None)
                .expect("prepared block");
            mem.free(black_box(head)).unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_buddy,
    bench_tlb,
    bench_page_table,
    bench_zerofill
);
criterion_main!(benches);
