//! Benchmarks copy-based versus copy-less (Trident_pv) giant-page
//! promotion — the wall-clock counterpart of §6's 600ms vs 500µs
//! comparison (the modeled latencies live in `CostModel`; this measures
//! the simulator's own work, whose ratio is driven by page-table surgery
//! versus hypercall bookkeeping).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use trident_core::{
    map_chunk, promote_chunk, PagePolicy, PromotionStyle, ThpPolicy, TridentConfig, TridentPolicy,
};
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_virt::{copyless_promote_giant, Hypervisor, VirtualMachine};
use trident_vm::{AddressSpace, VmaKind};

fn boot_vm(host: Box<dyn PagePolicy>) -> (Hypervisor, VirtualMachine) {
    let geo = PageGeometry::TINY;
    let mut hyp = Hypervisor::new(geo, 64 * geo.base_pages(PageSize::new(2)), host);
    let mut vm = hyp.create_vm(
        16 * geo.base_pages(PageSize::new(2)),
        Box::new(TridentPolicy::new(TridentConfig::paravirt())),
    );
    let mut proc = AddressSpace::new(AsId::new(1), geo);
    proc.mmap_at(
        Vpn::new(0),
        4 * geo.base_pages(PageSize::new(2)),
        VmaKind::Anon,
    )
    .unwrap();
    vm.kernel.spaces.insert(proc);
    // Back the first giant gVA chunk with huge pages, touching the host.
    let hp = geo.base_pages(PageSize::new(1));
    let count = geo.base_pages(PageSize::new(2)) / hp;
    for i in 0..count {
        let head = Vpn::new(i * hp);
        let space = vm.kernel.spaces.get_mut(AsId::new(1)).unwrap();
        map_chunk(&mut vm.kernel.ctx, space, head, PageSize::new(1)).unwrap();
        vm.touch(&mut hyp, AsId::new(1), head, true).unwrap();
    }
    (hyp, vm)
}

fn bench_promotion(c: &mut Criterion) {
    let mut group = c.benchmark_group("promotion");
    group.sample_size(30);
    group.bench_function("guest_copy_based", |b| {
        b.iter_batched(
            || boot_vm(Box::new(ThpPolicy::new())),
            |(hyp, mut vm)| {
                let out = promote_chunk(
                    &mut vm.kernel.ctx,
                    &mut vm.kernel.spaces,
                    AsId::new(1),
                    Vpn::new(0),
                    PageSize::new(2),
                    PromotionStyle::Copy,
                )
                .unwrap();
                black_box((hyp, out))
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("guest_copyless_pv", |b| {
        b.iter_batched(
            || boot_vm(Box::new(ThpPolicy::new())),
            |(mut hyp, mut vm)| {
                let vm_id = vm.id();
                let report = copyless_promote_giant(
                    &mut vm.kernel,
                    &mut hyp,
                    vm_id,
                    AsId::new(1),
                    Vpn::new(0),
                )
                .unwrap();
                black_box(report)
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_promotion);
criterion_main!(benches);
