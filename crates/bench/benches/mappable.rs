//! Benchmarks for the incremental mappability counters and the load loop
//! they accelerate.
//!
//! `mappable/*` compares the O(1) counter read against the full-VMA
//! rescan it replaced (the rescan cost grows with the VMA count; the
//! counter read does not). `system_load/*` times system boot — which
//! is dominated by the load loop sampling `mappable_bytes` per
//! allocation step — across doubling scales: with incremental counters
//! the time grows near-linearly in the number of load steps instead of
//! quadratically.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trident_sim::{PolicyKind, SimConfig, System};
use trident_types::{AsId, PageGeometry, PageSize};
use trident_vm::{mappable_bytes, mappable_bytes_scan, AddressSpace, VmaKind};
use trident_workloads::WorkloadSpec;

/// An address space with `n` VMAs of assorted sizes and gaps.
fn space_with_vmas(n: u64) -> AddressSpace {
    let geo = PageGeometry::X86_64;
    let mut space = AddressSpace::new(AsId::new(1), geo);
    for i in 0..n {
        let pages = 512 + (i % 7) * 300;
        let gap = 1 + i % 3;
        space
            .mmap(pages, VmaKind::Anon, PageSize::BASE, gap)
            .unwrap();
    }
    space
}

fn bench_mappable(c: &mut Criterion) {
    let mut group = c.benchmark_group("mappable");
    for n in [16u64, 256, 4096] {
        let space = space_with_vmas(n);
        group.bench_function(BenchmarkId::new("incremental", n), |b| {
            b.iter(|| black_box(mappable_bytes(&space, PageSize::new(1))))
        });
        group.bench_function(BenchmarkId::new("full_rescan", n), |b| {
            b.iter(|| black_box(mappable_bytes_scan(&space, PageSize::new(1))))
        });
    }
    group.finish();
}

fn bench_system_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_load");
    let spec = WorkloadSpec::by_name("GUPS").expect("known workload");
    // Halving the scale divisor doubles the workload footprint and hence
    // the number of load steps; near-linear scaling here is the
    // acceptance check that load no longer rescans per step.
    for scale in [256u64, 128, 64] {
        let config = SimConfig::at_scale(scale);
        group.bench_function(BenchmarkId::new("thp", scale), |b| {
            b.iter(|| {
                black_box(
                    System::builder(config)
                        .policy(PolicyKind::Thp)
                        .workload(spec)
                        .build()
                        .unwrap(),
                )
            })
        });
        group.bench_function(BenchmarkId::new("trident", scale), |b| {
            b.iter(|| {
                black_box(
                    System::builder(config)
                        .policy(PolicyKind::Trident)
                        .workload(spec)
                        .build()
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mappable, bench_system_load);
criterion_main!(benches);
