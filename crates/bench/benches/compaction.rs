//! Benchmarks smart versus normal compaction on a fragmented machine —
//! the wall-clock counterpart of Figure 7's bytes-copied comparison.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use trident_core::{map_chunk, CompactionKind, Compactor, MmContext, SpaceSet};
use trident_phys::PhysicalMemory;
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_vm::{AddressSpace, VmaKind};

/// Builds a machine whose giant chunks are all broken by user pages
/// pinned at every eighth page of every region.
fn fragmented_machine(regions: u64) -> (MmContext, SpaceSet) {
    let geo = PageGeometry::TINY;
    let mut ctx = MmContext::new(PhysicalMemory::new(
        geo,
        regions * geo.base_pages(PageSize::new(2)),
    ));
    let mut space = AddressSpace::new(AsId::new(1), geo);
    let total = regions * geo.base_pages(PageSize::new(2));
    space.mmap_at(Vpn::new(0), total, VmaKind::Anon).unwrap();
    let mut held = Vec::new();
    for p in 0..total {
        map_chunk(&mut ctx, &mut space, Vpn::new(p), PageSize::BASE).unwrap();
        held.push(p);
    }
    for p in held {
        if p % 8 != 0 {
            let rec = space.page_table_mut().unmap(Vpn::new(p)).unwrap();
            ctx.mem.free(rec.pfn).unwrap();
        }
    }
    let mut spaces = SpaceSet::new();
    spaces.insert(space);
    (ctx, spaces)
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction");
    group.sample_size(20);
    for (name, kind) in [
        ("smart", CompactionKind::Smart),
        ("normal", CompactionKind::Normal),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || fragmented_machine(32),
                |(mut ctx, mut spaces)| {
                    let mut compactor = Compactor::new(kind);
                    black_box(compactor.compact(&mut ctx, &mut spaces, PageSize::new(2)))
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
