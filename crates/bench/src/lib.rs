//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index) and prints it as CSV on stdout with a
//! short header on stderr. Common flags: `--scale N` (memory-scale
//! divisor, default 32), `--samples N`, `--seed N`, `--threads N`
//! (worker threads for the parallel runner; 0 = one per core; the
//! output is bit-identical for every value).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub use trident_sim::experiments::ExpOptions;

/// Parses the standard experiment flags from `std::env::args`.
#[must_use]
pub fn options_from_env() -> ExpOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExpOptions::from_args(&args)
}

/// Prints the experiment banner on stderr so stdout stays pure CSV.
pub fn banner(what: &str, opts: &ExpOptions) {
    let threads = trident_sim::Runner::new(opts.threads).threads();
    eprintln!(
        "# {what} — scale 1/{}, {} samples, seed {}, {} threads",
        opts.scale, opts.samples, opts.seed, threads
    );
}
