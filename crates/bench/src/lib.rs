//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index) and prints it as CSV on stdout with a
//! short header on stderr. Common flags: `--scale N` (memory-scale
//! divisor, default 32), `--samples N`, `--seed N`, `--threads N`
//! (worker threads for the parallel runner; 0 = one per core; the
//! output is bit-identical for every value).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod args;

pub use trident_sim::experiments::ExpOptions;

/// Usage line shared by the figure/table binaries, which take only the
/// standard experiment flags.
const STANDARD_USAGE: &str =
    "usage: [--scale N] [--samples N] [--seed N] [--threads N] [--trace N] [--profile]";

/// Parses the standard experiment flags from `std::env::args`, exiting
/// with a usage message on any unknown flag or bad value.
#[must_use]
pub fn options_from_env() -> ExpOptions {
    let mut a = args::Args::from_env();
    match a.exp_options().and_then(|opts| a.finish().map(|()| opts)) {
        Ok(opts) => opts,
        Err(err) => err.exit(STANDARD_USAGE),
    }
}

/// Prints the experiment banner on stderr so stdout stays pure CSV.
pub fn banner(what: &str, opts: &ExpOptions) {
    let threads = trident_sim::Runner::new(opts.threads).threads();
    eprintln!(
        "# {what} — scale 1/{}, {} samples, seed {}, {} threads",
        opts.scale, opts.samples, opts.seed, threads
    );
}
