//! `trace_analyze` — the profiling pipeline's CLI: turn a JSONL trace
//! into a profile report, self-check the pipeline, or gate on a bench
//! regression.
//!
//! ```sh
//! trace_analyze run.jsonl [--window N] [--json F] [--md F] [--prom F]
//! trace_analyze --check
//! trace_analyze --lint-prom SCRAPE.txt
//! trace_analyze --bench-gate BENCH_1.json --baseline OLD.json [--threshold 15]
//! ```
//!
//! **Analyze** (default): stream `FILE` through [`TraceReader`], fold a
//! [`Profile`] with `--window N`-tick windows (default 1) and print the
//! markdown report on stdout; `--json`/`--md`/`--prom` additionally
//! write those renderings to files. Unknown schema versions and
//! malformed lines abort with a line number.
//!
//! **`--check`** (CI smoke): run a small fig1-style cell twice with the
//! live profiler on, replay each run's trace through the reader, and
//! require (a) replayed profile == live profile, (b) equal profiles
//! render byte-identical reports, (c) both runs produce the same bytes.
//! Exits nonzero on any divergence.
//!
//! **`--lint-prom`**: check a Prometheus text file — e.g. a `/metrics`
//! body scraped from a live `tridentd` — against the exposition rules
//! the shared encoder guarantees: every sample preceded by a `# TYPE`
//! declaration, no duplicate families, summaries complete. Exits
//! nonzero listing each violation.
//!
//! **`--bench-gate`**: compare a fresh bench file (`BENCH_1.json` or a
//! `bench_matrix` `BENCH_2.json`) against a committed baseline and fail
//! when `serial_seconds` regressed by more than `--threshold` percent
//! (default 15). With `--min-speedup X`, additionally require
//! `baseline serial_seconds / fresh best_seconds >= X * min(1, cpus/8)`
//! — the paper-style target assumes >= 8 cores, so the requirement
//! scales down linearly with the machine's actual parallelism (reported
//! by `bench_matrix` in the `cpus` field) rather than pretending a
//! single-core box can show an 8-way speedup. `best_seconds` is the
//! fresh file's `fig1_best_seconds` when present (the matrix's fastest
//! thread count), else its `serial_seconds`.

use std::fs::File;
use std::io::{BufReader, Cursor};
use std::process::ExitCode;

use trident_bench::args::{ArgError, Args};
use trident_prof::report::{render_json, render_markdown, render_prometheus};
use trident_prof::{Profile, TraceReader};
use trident_sim::experiments::ExpOptions;
use trident_sim::{PolicyKind, System};
use trident_workloads::WorkloadSpec;

const USAGE: &str =
    "usage: trace_analyze FILE [--window N] [--json F] [--md F] [--prom F]\n       \
                     trace_analyze --check\n       \
                     trace_analyze --lint-prom FILE\n       \
                     trace_analyze --bench-gate FRESH --baseline OLD [--threshold PCT] [--min-speedup X]";

fn main() -> ExitCode {
    let mut args = Args::from_env();
    if args.flag("--check") {
        if let Err(err) = args.finish() {
            err.exit(USAGE);
        }
        return run_check();
    }
    match args.value("--lint-prom") {
        Ok(Some(path)) => {
            if let Err(err) = args.finish() {
                err.exit(USAGE);
            }
            return run_lint_prom(&path);
        }
        Ok(None) => {}
        Err(err) => err.exit(USAGE),
    }
    match parse_cli(&mut args).and_then(|cmd| args.finish().map(|()| cmd)) {
        Ok(Cmd::BenchGate {
            fresh,
            baseline,
            threshold,
            min_speedup,
        }) => run_bench_gate(&fresh, &baseline, threshold, min_speedup),
        Ok(Cmd::Analyze { path, window, outs }) => run_analyze(&path, window, &outs),
        Err(err) => err.exit(USAGE),
    }
}

enum Cmd {
    Analyze {
        path: String,
        window: u64,
        /// `(renderer flag, output path)` pairs that were requested.
        outs: Vec<(&'static str, String)>,
    },
    BenchGate {
        fresh: String,
        baseline: String,
        threshold: f64,
        min_speedup: Option<f64>,
    },
}

fn parse_cli(args: &mut Args) -> Result<Cmd, ArgError> {
    if let Some(fresh) = args.value("--bench-gate")? {
        let baseline = args.value("--baseline")?.ok_or(ArgError::MissingValue {
            flag: "--baseline".to_owned(),
        })?;
        let threshold = args.parsed_or("--threshold", 15.0)?;
        let min_speedup = args.parsed("--min-speedup")?;
        return Ok(Cmd::BenchGate {
            fresh,
            baseline,
            threshold,
            min_speedup,
        });
    }
    let window = args.parsed_or("--window", 1)?;
    let mut outs = Vec::new();
    for flag in ["--json", "--md", "--prom"] {
        if let Some(out) = args.value(flag)? {
            outs.push((flag, out));
        }
    }
    let path = args.positional().ok_or(ArgError::Unknown {
        token: "(missing FILE)".to_owned(),
    })?;
    Ok(Cmd::Analyze { path, window, outs })
}

fn run_analyze(path: &str, window: u64, outs: &[(&'static str, String)]) -> ExitCode {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut profile = Profile::new(window);
    for item in TraceReader::new(BufReader::new(file)) {
        match item {
            Ok(ev) => profile.fold(&ev),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    profile.finish();
    eprintln!(
        "# trace_analyze: {} events from {path}, {} windows",
        profile.events_seen,
        profile.series.windows().len()
    );
    for (flag, out) in outs {
        let render = match *flag {
            "--json" => render_json as fn(&Profile) -> String,
            "--md" => render_markdown,
            _ => render_prometheus,
        };
        if let Err(e) = std::fs::write(out, render(&profile)) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {out}");
    }
    print!("{}", render_markdown(&profile));
    ExitCode::SUCCESS
}

/// `--lint-prom FILE`: applies the shared encoder's exposition lint to
/// an arbitrary Prometheus text file (typically a live scrape).
fn run_lint_prom(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match trident_prof::prom::lint(&text) {
        Ok(()) => {
            eprintln!(
                "prom lint: ok — {path}, {} lines",
                text.lines().filter(|l| !l.trim().is_empty()).count()
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for problem in &problems {
                eprintln!("prom lint: {path}: {problem}");
            }
            eprintln!("prom lint: FAIL — {} problem(s)", problems.len());
            ExitCode::FAILURE
        }
    }
}

/// One profiled smoke run: a fig1-style GUPS/Trident cell with the live
/// profiler and ring tracing on. Returns the live profile and the three
/// rendered reports of the trace-replayed profile.
fn profiled_smoke_run() -> Result<(Profile, [String; 3]), String> {
    let mut opts = ExpOptions::quick();
    opts.profile = true;
    opts.trace_capacity = Some(1 << 20);
    let spec = WorkloadSpec::by_name("GUPS").expect("GUPS exists");
    let mut system = System::builder(opts.config())
        .policy(PolicyKind::Trident)
        .workload(spec)
        .build()
        .map_err(|e| format!("launch failed: {e}"))?;
    system.settle();
    let m = system.measure();
    if m.trace_dropped > 0 {
        return Err(format!(
            "ring dropped {} events; raise the check's capacity",
            m.trace_dropped
        ));
    }
    let live = *m.profile.ok_or("no live profile despite --profile")?;

    // Replay: serialize the trace exactly as dump_trace would, then
    // stream it back through the reader.
    let mut jsonl = String::with_capacity(m.trace.len() * 64);
    for ev in &m.trace {
        jsonl.push_str(&ev.to_jsonl());
        jsonl.push('\n');
    }
    let mut replayed = Profile::new(1);
    for item in TraceReader::new(Cursor::new(jsonl)) {
        let ev = item.map_err(|e| format!("replay: {e}"))?;
        replayed.fold(&ev);
    }
    replayed.finish();
    if replayed != live {
        return Err(format!(
            "replayed profile diverges from live\n  live:     {} events, {} windows\n  replayed: {} events, {} windows",
            live.events_seen,
            live.series.windows().len(),
            replayed.events_seen,
            replayed.series.windows().len()
        ));
    }
    let reports = [
        render_json(&replayed),
        render_markdown(&replayed),
        render_prometheus(&replayed),
    ];
    let live_reports = [
        render_json(&live),
        render_markdown(&live),
        render_prometheus(&live),
    ];
    if reports != live_reports {
        return Err("equal profiles rendered different bytes".to_owned());
    }
    if let Err(problems) = trident_prof::prom::lint(&reports[2]) {
        return Err(format!("prometheus rendering fails lint: {problems:?}"));
    }
    Ok((live, reports))
}

/// CI's profiling-pipeline gate: live == replay, and two identical runs
/// render byte-identical reports.
fn run_check() -> ExitCode {
    let first = match profiled_smoke_run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profile check: FAIL — {e}");
            return ExitCode::FAILURE;
        }
    };
    let second = match profiled_smoke_run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profile check: FAIL (second run) — {e}");
            return ExitCode::FAILURE;
        }
    };
    if first.1 != second.1 {
        eprintln!("profile check: FAIL — two identical runs rendered different reports");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "profile check: ok — {} events, {} windows, replay == live, reports deterministic",
        first.0.events_seen,
        first.0.series.windows().len()
    );
    ExitCode::SUCCESS
}

/// Pulls `"key": <number>` out of a flat JSON object like `BENCH_1.json`
/// without a JSON parser (the bench file is machine-written with a fixed
/// shape).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Fails when the fresh bench file's `serial_seconds` exceeds the
/// baseline's by more than `threshold` percent, or (with `min_speedup`)
/// when the fresh file's best time does not beat the baseline serial by
/// the cores-scaled required factor.
fn run_bench_gate(
    fresh_path: &str,
    baseline_path: &str,
    threshold: f64,
    min_speedup: Option<f64>,
) -> ExitCode {
    let read = |path: &str| -> Result<(String, f64, u64), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let secs = json_number(&text, "serial_seconds")
            .ok_or_else(|| format!("{path}: no serial_seconds field"))?;
        let rows = json_number(&text, "rows").map_or(0, |r| r as u64);
        Ok((text, secs, rows))
    };
    let ((fresh_text, fresh_s, fresh_rows), (_, base_s, base_rows)) =
        match (read(fresh_path), read(baseline_path)) {
            (Ok(f), Ok(b)) => (f, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench gate: FAIL — {e}");
                return ExitCode::FAILURE;
            }
        };
    if fresh_rows != base_rows {
        eprintln!("bench gate: FAIL — row count changed {base_rows} -> {fresh_rows}; the grids are not comparable");
        return ExitCode::FAILURE;
    }
    let limit = base_s * (1.0 + threshold / 100.0);
    let delta = (fresh_s / base_s.max(1e-9) - 1.0) * 100.0;
    if fresh_s > limit {
        eprintln!(
            "bench gate: FAIL — serial {fresh_s:.3}s vs baseline {base_s:.3}s ({delta:+.1}%, limit +{threshold:.0}%)"
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench gate: ok — serial {fresh_s:.3}s vs baseline {base_s:.3}s ({delta:+.1}%, limit +{threshold:.0}%)"
    );
    if let Some(min) = min_speedup {
        // The matrix's fastest thread count when present, else serial.
        let best = json_number(&fresh_text, "fig1_best_seconds").unwrap_or(fresh_s);
        // The target speedup assumes an 8-core machine; scale the
        // requirement down by the actual core count the fresh run saw so
        // the gate stays meaningful (and honest) on smaller boxes.
        let cpus = json_number(&fresh_text, "cpus").unwrap_or(1.0).max(1.0);
        let required = min * (cpus / 8.0).min(1.0);
        let speedup = base_s / best.max(1e-9);
        if speedup < required {
            eprintln!(
                "bench gate: FAIL — best {best:.3}s is {speedup:.2}x over baseline serial {base_s:.3}s; \
                 required {required:.2}x ({min:.2}x scaled by {cpus:.0}/8 cpus)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench gate: ok — best {best:.3}s is {speedup:.2}x over baseline serial {base_s:.3}s \
             (required {required:.2}x = {min:.2}x scaled by {cpus:.0}/8 cpus)"
        );
    }
    ExitCode::SUCCESS
}
