//! Regenerates Figure 7: bytes-copied reduction from smart compaction.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Figure 7: smart vs normal compaction bytes copied", &opts);
    print!("{}", trident_sim::experiments::fig7::run(&opts).to_csv());
}
