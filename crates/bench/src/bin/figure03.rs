//! Regenerates Figure 3: mappable memory over the allocation timeline.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner(
        "Figure 3: 2MB- vs 1GB-mappable memory (Graph500, SVM)",
        &opts,
    );
    print!("{}", trident_sim::experiments::fig3::run(&opts).to_csv());
}
