//! Regenerates Table 4: 1GB allocation failure rates.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner(
        "Table 4: 1GB allocation failures under fragmentation",
        &opts,
    );
    print!("{}", trident_sim::experiments::table4::run(&opts).to_csv());
}
