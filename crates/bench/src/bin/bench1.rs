//! Emits `BENCH_1.json`: wall-clock for a fixed `fig1 --scale 256` cell
//! grid, serial versus parallel, so future PRs have a perf trajectory to
//! compare against. Also asserts the two runs are bit-identical — the
//! runner's determinism contract — before recording anything.

use std::time::Instant;

use trident_bench::args::Args;
use trident_sim::experiments::fig1;
use trident_sim::Runner;

const USAGE: &str = "usage: bench1 [--seed N] [--threads N]";

fn main() {
    let mut args = Args::from_env();
    let mut opts = match args.exp_options().and_then(|o| args.finish().map(|()| o)) {
        Ok(o) => o,
        Err(err) => err.exit(USAGE),
    };
    // The fixed benchmark grid (only --seed and --threads are honored).
    opts.scale = 256;
    opts.samples = 8_000;

    let mut serial = opts;
    serial.threads = 1;
    eprintln!("# bench1: fig1 grid, scale 1/{}, serial…", opts.scale);
    let t0 = Instant::now();
    let serial_csv = fig1::run(&serial).to_csv();
    let serial_s = t0.elapsed().as_secs_f64();

    let mut parallel = opts;
    if parallel.threads <= 1 {
        parallel.threads = 0; // one per core
    }
    let threads = Runner::new(parallel.threads).threads();
    eprintln!("# bench1: fig1 grid, parallel on {threads} threads…");
    let t1 = Instant::now();
    let parallel_csv = fig1::run(&parallel).to_csv();
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial_csv, parallel_csv,
        "parallel fig1 output must be bit-identical to serial"
    );

    let rows = serial_csv.lines().count().saturating_sub(1);
    // "Speedup" is only honest when the parallel run actually had more
    // than one worker; on a single-core machine Runner resolves 0 to 1
    // and the two runs are the same experiment twice.
    let speedup_field = if threads > 1 {
        format!("  \"speedup\": {:.2},\n", serial_s / parallel_s.max(1e-9))
    } else {
        String::new()
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fig1_grid\",\n",
            "  \"scale\": {scale},\n",
            "  \"samples\": {samples},\n",
            "  \"seed\": {seed},\n",
            "  \"rows\": {rows},\n",
            "  \"serial_seconds\": {serial:.3},\n",
            "  \"parallel_seconds\": {par:.3},\n",
            "  \"parallel_threads\": {threads},\n",
            "{speedup}",
            "  \"bit_identical\": true\n",
            "}}\n"
        ),
        scale = opts.scale,
        samples = opts.samples,
        seed = opts.seed,
        rows = rows,
        serial = serial_s,
        par = parallel_s,
        threads = threads,
        speedup = speedup_field,
    );
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    if threads > 1 {
        eprintln!(
            "# bench1: serial {serial_s:.3}s, parallel {parallel_s:.3}s ({:.2}x) -> BENCH_1.json",
            serial_s / parallel_s.max(1e-9)
        );
    } else {
        eprintln!(
            "# bench1: serial {serial_s:.3}s, single worker (no speedup to report) -> BENCH_1.json"
        );
    }
    print!("{json}");
}
