//! `bench_matrix` — the real bench matrix behind `BENCH_2.json`.
//!
//! Runs four grids — the fig1 native grid, the table4 fragmentation
//! grid, a chaos grid (fig1 kinds + Trident under randomized fault
//! plans with the per-tick audit on), and the multi-architecture ladder
//! grid (x86-64, RISC-V SVNAPOT, AArch64 contiguous-bit) — at every
//! thread count in `--threads-list` (default `1,2,4,8,16`), asserting
//! that each grid's output is bit-identical across all thread counts
//! before recording anything. Wall-clock per (grid, threads) cell lands in a flat JSON
//! file (default `BENCH_2.json`) that `trace_analyze --bench-gate`
//! understands: `serial_seconds`/`rows` mirror `BENCH_1.json`'s fields
//! (fig1 grid at one thread) so the existing no-regression gate applies
//! unchanged, and `fig1_best_seconds`/`cpus` feed the `--min-speedup`
//! gate.
//!
//! Honesty rules, same as `bench1`: thread counts are the *resolved*
//! worker counts, and `speedup_vs_seed` is only emitted when
//! `--seed-serial SECS` supplies a same-machine measurement of the seed
//! revision's serial fig1 grid. On a machine with fewer cores than a
//! requested thread count the extra workers cannot help; the matrix
//! records what actually happened and the gate scales its requirement by
//! `cpus` (see `trace_analyze`).
//!
//! With `--ladder-out FILE` the matrix additionally times each shipped
//! geometry's ladder study on its own serial run and writes the
//! per-geometry record (`BENCH_3.json` in CI and at the repo root).
//!
//! ```sh
//! bench_matrix [--seed N] [--scale N] [--samples N] \
//!              [--threads-list 1,2,4,8,16] [--out BENCH_2.json] \
//!              [--chaos-scale N] [--chaos-samples N] [--prob N] \
//!              [--seed-serial SECS] [--ladder-out BENCH_3.json]
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use trident_bench::args::{ArgError, Args};
use trident_core::FaultPlan;
use trident_sim::experiments::{fig1, ladder, table4, ExpOptions};
use trident_sim::{derive_cell_seed, PolicyKind, Runner, SimConfig, System};
use trident_workloads::WorkloadSpec;

const USAGE: &str = "usage: bench_matrix [--threads-list 1,2,4,8,16] [--out FILE] \
                     [--chaos-scale N] [--chaos-samples N] [--prob N] \
                     [--seed-serial SECS] [--ladder-out FILE] \
                     [standard experiment flags]";

/// Chaos wing: the fig1 kinds plus Trident itself, as in the `chaos` bin.
const CHAOS_KINDS: [PolicyKind; 5] = [
    PolicyKind::Base,
    PolicyKind::Thp,
    PolicyKind::HugetlbfsHuge,
    PolicyKind::HugetlbfsGiant,
    PolicyKind::Trident,
];

/// Salt decorrelating fault-plan seeds from run seeds (shared with `chaos`).
const PLAN_SALT: u64 = 0xC4A0_5CA0;

struct Cli {
    opts: ExpOptions,
    threads_list: Vec<usize>,
    out: String,
    chaos_scale: u64,
    chaos_samples: usize,
    prob: u16,
    seed_serial: Option<f64>,
    ladder_out: Option<String>,
}

fn parse_cli(args: &mut Args) -> Result<Cli, ArgError> {
    // Fixed-grid defaults match bench1 so serial_seconds stays comparable
    // with BENCH_1.json; both stay overridable for reduced-scale CI runs.
    let scale = args.parsed_or("--scale", 256)?;
    let samples = args.parsed_or("--samples", 8_000)?;
    let threads_list = match args.value("--threads-list")? {
        None => vec![1, 2, 4, 8, 16],
        Some(csv) => {
            let mut list = Vec::new();
            for tok in csv.split(',') {
                let t: usize = tok.trim().parse().map_err(|_| ArgError::Unknown {
                    token: format!("--threads-list entry {tok:?}"),
                })?;
                list.push(t.max(1));
            }
            list
        }
    };
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "BENCH_2.json".to_owned());
    let chaos_scale = args.parsed_or("--chaos-scale", 64)?;
    let chaos_samples = args.parsed_or("--chaos-samples", 5_000)?;
    let prob: u16 = args.parsed_or("--prob", 100)?;
    let seed_serial: Option<f64> = args.parsed("--seed-serial")?;
    let ladder_out = args.value("--ladder-out")?;
    let mut opts = args.exp_options()?;
    opts.scale = scale;
    opts.samples = samples;
    Ok(Cli {
        opts,
        threads_list,
        out,
        chaos_scale,
        chaos_samples,
        prob,
        seed_serial,
        ladder_out,
    })
}

/// One chaos cell: a policy/workload pair under a seeded fault plan.
struct ChaosCell {
    label: String,
    kind: PolicyKind,
    spec: WorkloadSpec,
    config: SimConfig,
}

fn chaos_cells(opts: &ExpOptions, scale: u64, samples: usize, prob: u16) -> Vec<ChaosCell> {
    let specs = WorkloadSpec::all();
    let mut cells = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let mut config = SimConfig::at_scale(scale);
        config.measure_samples = samples;
        config.measure_tick_every = (samples / 6).max(1);
        config.seed = derive_cell_seed(opts.seed, row as u64);
        config.audit = true;
        for kind in CHAOS_KINDS {
            let idx = cells.len() as u64;
            let mut c = config;
            c.fault = Some(FaultPlan::randomized(
                derive_cell_seed(opts.seed ^ PLAN_SALT, idx),
                prob,
            ));
            cells.push(ChaosCell {
                label: format!("{:?}/{}", kind, spec.name),
                kind,
                spec: *spec,
                config: c,
            });
        }
    }
    cells
}

/// Runs one chaos cell to a deterministic CSV line. Panics and invariant
/// violations are rendered into the line (and therefore break both the
/// cross-thread identity check and the clean-run check below).
fn run_chaos_cell(cell: &ChaosCell) -> String {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let built = System::builder(cell.config)
            .policy(cell.kind)
            .workload(cell.spec)
            .build();
        match built {
            Ok(mut sys) => {
                sys.settle();
                let m = sys.measure();
                let injected = m.snapshot.total_injected_faults();
                format!(
                    "{},true,{},{},{}",
                    cell.label,
                    injected,
                    sys.violations().len(),
                    m.walk_cycles
                )
            }
            Err(_) => format!("{},false,0,0,0", cell.label),
        }
    }));
    outcome.unwrap_or_else(|_| format!("{},panicked,0,1,0", cell.label))
}

/// Renders the whole chaos grid at a given thread count.
fn run_chaos_grid(cells: &[ChaosCell], threads: usize) -> String {
    let lines = Runner::new(threads).map(cells, |_, c| run_chaos_cell(c));
    let mut out = String::from("cell,booted,injected,violations,walk_cycles\n");
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Per-grid timing record.
struct GridTimes {
    name: &'static str,
    rows: usize,
    /// `(resolved thread count, wall seconds)` in `--threads-list` order.
    times: Vec<(usize, f64)>,
}

impl GridTimes {
    fn best(&self) -> (usize, f64) {
        self.times
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one thread count ran")
    }
    fn at_one_thread(&self) -> f64 {
        self.times
            .iter()
            .find(|(t, _)| *t == 1)
            .expect("threads-list includes 1")
            .1
    }
}

fn main() {
    let mut args = Args::from_env();
    let cli = match parse_cli(&mut args).and_then(|c| args.finish().map(|()| c)) {
        Ok(c) => c,
        Err(err) => err.exit(USAGE),
    };
    if !cli.threads_list.contains(&1) {
        eprintln!("bench_matrix: --threads-list must include 1 (the serial reference run)");
        std::process::exit(2);
    }
    trident_bench::banner(
        "Bench matrix: fig1 + table4 + chaos + ladder across thread counts",
        &cli.opts,
    );
    let cpus = Runner::new(0).threads();
    eprintln!(
        "# threads list: {:?} on a {cpus}-cpu machine; chaos scale 1/{}, {} samples, prob {}/1000",
        cli.threads_list, cli.chaos_scale, cli.chaos_samples, cli.prob
    );

    let chaos = chaos_cells(&cli.opts, cli.chaos_scale, cli.chaos_samples, cli.prob);
    let mut grids: Vec<GridTimes> = Vec::new();
    let mut references: Vec<String> = Vec::new();
    let mut failures = Vec::new();

    for (gi, name) in ["fig1", "table4", "chaos", "ladder"].iter().enumerate() {
        let mut times = Vec::new();
        for &t in &cli.threads_list {
            let resolved = Runner::new(t).threads();
            let t0 = Instant::now();
            let output = match gi {
                0 => {
                    let mut o = cli.opts;
                    o.threads = t;
                    fig1::run(&o).to_csv()
                }
                1 => {
                    let mut o = cli.opts;
                    o.threads = t;
                    table4::run(&o).to_csv()
                }
                2 => run_chaos_grid(&chaos, t),
                _ => {
                    let mut o = cli.opts;
                    o.threads = t;
                    let r = ladder::run(&o);
                    // Identity covers both the measured rows and the
                    // architectural walk table.
                    format!("{}{}", r.to_csv(), r.to_walk_csv())
                }
            };
            let secs = t0.elapsed().as_secs_f64();
            eprintln!(
                "# {name:>6} threads={t:<2} ({resolved} worker{}): {secs:.3}s",
                if resolved == 1 { "" } else { "s" }
            );
            if t == 1 {
                references.push(output.clone());
            } else if output != references[gi] {
                failures.push(format!(
                    "{name}: output at threads={t} diverges from the serial run"
                ));
            }
            // Record the *resolved* count once per distinct resolution;
            // requested counts beyond the machine's cores all resolve to
            // real worker counts and stay in the record regardless.
            times.push((resolved, secs));
        }
        let rows = references[gi].lines().count().saturating_sub(1);
        grids.push(GridTimes { name, rows, times });
    }
    if grids[2].rows != chaos.len() {
        failures.push(format!(
            "chaos: expected {} cells, rendered {}",
            chaos.len(),
            grids[2].rows
        ));
    }
    for line in references[2].lines().skip(1) {
        let mut fields = line.split(',');
        let label = fields.next().unwrap_or("?");
        let booted = fields.next().unwrap_or("?");
        let violations = fields.nth(1).unwrap_or("0");
        if booted == "panicked" {
            failures.push(format!("chaos cell {label} panicked"));
        } else if violations != "0" {
            failures.push(format!(
                "chaos cell {label}: {violations} invariant violations"
            ));
        }
    }

    let bit_identical = failures.iter().all(|f| !f.contains("diverges"));
    let mut json = String::from("{\n  \"benchmark\": \"bench_matrix\",\n");
    json.push_str(&format!("  \"scale\": {},\n", cli.opts.scale));
    json.push_str(&format!("  \"samples\": {},\n", cli.opts.samples));
    json.push_str(&format!("  \"seed\": {},\n", cli.opts.seed));
    json.push_str(&format!("  \"cpus\": {cpus},\n"));
    json.push_str(&format!(
        "  \"threads_list\": \"{}\",\n",
        cli.threads_list
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    ));
    // BENCH_1.json-compatible fields: the fig1 grid's serial run.
    json.push_str(&format!("  \"rows\": {},\n", grids[0].rows));
    json.push_str(&format!(
        "  \"serial_seconds\": {:.3},\n",
        grids[0].at_one_thread()
    ));
    for grid in &grids {
        json.push_str(&format!("  \"{}_rows\": {},\n", grid.name, grid.rows));
        for (i, &(_resolved, secs)) in grid.times.iter().enumerate() {
            json.push_str(&format!(
                "  \"{}_t{}_seconds\": {secs:.3},\n",
                grid.name, cli.threads_list[i]
            ));
        }
        let (best_t, best_s) = grid.best();
        json.push_str(&format!("  \"{}_best_seconds\": {best_s:.3},\n", grid.name));
        json.push_str(&format!("  \"{}_best_threads\": {best_t},\n", grid.name));
    }
    if let Some(seed_s) = cli.seed_serial {
        let (_, best) = grids[0].best();
        json.push_str(&format!("  \"seed_serial_seconds\": {seed_s:.3},\n"));
        json.push_str(&format!(
            "  \"speedup_vs_seed\": {:.2},\n",
            seed_s / best.max(1e-9)
        ));
    }
    json.push_str(&format!("  \"bit_identical\": {bit_identical}\n}}\n"));

    std::fs::write(&cli.out, &json).expect("write bench matrix json");
    print!("{json}");

    // Per-geometry ladder record: each shipped architecture's study timed
    // on its own serial run, so regressions localize to one ladder.
    if let Some(path) = &cli.ladder_out {
        let mut lj = String::from("{\n  \"benchmark\": \"bench_matrix_ladder\",\n");
        lj.push_str(&format!("  \"scale\": {},\n", cli.opts.scale));
        lj.push_str(&format!("  \"samples\": {},\n", cli.opts.samples));
        lj.push_str(&format!("  \"seed\": {},\n", cli.opts.seed));
        lj.push_str(&format!("  \"cpus\": {cpus},\n"));
        for name in ladder::GEOMETRY_NAMES {
            let mut o = cli.opts;
            o.threads = 1;
            let t0 = Instant::now();
            let r = ladder::run_geometry(&o, name).expect("shipped geometry id");
            let secs = t0.elapsed().as_secs_f64();
            eprintln!(
                "# ladder {name:>8}: {secs:.3}s serial, {} rungs",
                r.walk_rows.len()
            );
            lj.push_str(&format!("  \"{name}_serial_seconds\": {secs:.3},\n"));
            lj.push_str(&format!("  \"{name}_rungs\": {},\n", r.walk_rows.len()));
        }
        let (best_t, best_s) = grids[3].best();
        lj.push_str(&format!("  \"ladder_rows\": {},\n", grids[3].rows));
        lj.push_str(&format!("  \"ladder_best_seconds\": {best_s:.3},\n"));
        lj.push_str(&format!("  \"ladder_best_threads\": {best_t},\n"));
        lj.push_str(&format!("  \"bit_identical\": {bit_identical}\n}}\n"));
        std::fs::write(path, &lj).expect("write ladder bench json");
        eprintln!("# ladder record -> {path}");
    }
    if failures.is_empty() {
        let (best_t, best_s) = grids[0].best();
        eprintln!(
            "# bench_matrix PASS: fig1 serial {:.3}s, best {best_s:.3}s at {best_t} worker(s) -> {}",
            grids[0].at_one_thread(),
            cli.out
        );
    } else {
        for f in &failures {
            eprintln!("# bench_matrix FAIL: {f}");
        }
        std::process::exit(1);
    }
}
