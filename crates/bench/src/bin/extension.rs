//! Regenerates the five-level-table / page-walk-cache extension study
//! (the §4.3 trajectory argument, quantified).

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Extension: 5-level tables and page-walk caches", &opts);
    print!(
        "{}",
        trident_sim::experiments::extension::run(&opts).to_csv()
    );
}
