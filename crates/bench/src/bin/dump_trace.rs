//! Runs one traced simulation and dumps its event trace as JSONL on
//! stdout (summary on stderr) — the observability quick-start from the
//! README, and CI's trace-schema gate.
//!
//! Flags: the standard experiment flags (`--scale`, `--samples`,
//! `--seed`, `--trace N` for the ring capacity, default 1Mi events)
//! plus `--workload NAME`, `--policy LABEL` (paper labels, e.g.
//! `Trident`, `2MB-THP`), `--check` and `--strict`.
//!
//! With `--check`, nothing is dumped; instead the run's trace is pushed
//! through the full schema contract — every event must survive a JSONL
//! round-trip, and replaying the trace must reconstruct the exact live
//! snapshot — exiting nonzero on any violation. With `--strict`, ring
//! overflow (dropped events) also fails the check.
//!
//! When the ring dropped events, the dump is prefixed with a
//! `trace_gap` line so downstream readers (`trace_analyze`) can
//! annotate the gap, and a drop summary goes to stderr.

use std::process::ExitCode;

use trident_bench::args::Args;
use trident_core::{Event, StatsSnapshot, SNAPSHOT_VERSION};
use trident_sim::{PolicyKind, System};
use trident_workloads::WorkloadSpec;

const POLICIES: [PolicyKind; 11] = [
    PolicyKind::Base,
    PolicyKind::Thp,
    PolicyKind::HugetlbfsHuge,
    PolicyKind::HugetlbfsGiant,
    PolicyKind::HawkEye,
    PolicyKind::Ingens,
    PolicyKind::Trident,
    PolicyKind::Trident1G,
    PolicyKind::TridentNC,
    PolicyKind::TridentPv,
    PolicyKind::TridentFaultOnly,
];

const USAGE: &str = "usage: dump_trace [--workload NAME] [--policy LABEL] [--check] [--strict] \
                     [standard experiment flags]";

fn main() -> ExitCode {
    let mut args = Args::from_env();
    let check = args.flag("--check");
    let strict = args.flag("--strict");
    let workload = match args.value("--workload") {
        Ok(v) => v.unwrap_or_else(|| "GUPS".to_owned()),
        Err(err) => err.exit(USAGE),
    };
    let policy_label = match args.value("--policy") {
        Ok(v) => v.unwrap_or_else(|| "Trident".to_owned()),
        Err(err) => err.exit(USAGE),
    };
    let mut opts = match args.exp_options().and_then(|o| args.finish().map(|()| o)) {
        Ok(o) => o,
        Err(err) => err.exit(USAGE),
    };
    if opts.scale == 32 {
        // The binary default grid is too big for a quick dump; prefer the
        // integration-test scale unless the user asked for more.
        opts.scale = 256;
        opts.samples = 8_000;
    }
    let capacity = opts.trace_capacity.unwrap_or(1 << 20);

    let Some(spec) = WorkloadSpec::by_name(&workload) else {
        eprintln!("unknown workload {workload:?}");
        return ExitCode::FAILURE;
    };
    let Some(policy) = POLICIES.iter().copied().find(|p| p.label() == policy_label) else {
        eprintln!("unknown policy {policy_label:?}");
        return ExitCode::FAILURE;
    };

    let mut config = opts.config();
    config.trace_capacity = Some(capacity);
    eprintln!(
        "# dump_trace: {} under {}, scale 1/{}, {} samples, ring capacity {}",
        spec.name,
        policy.label(),
        opts.scale,
        opts.samples,
        capacity
    );
    let mut system = System::builder(config)
        .policy(policy)
        .workload(spec)
        .build()
        .expect("launch");
    system.settle();
    let m = system.measure();
    eprintln!(
        "# {} events traced, snapshot v{}, {} faults",
        m.trace.len(),
        m.snapshot.version,
        m.snapshot.total_faults()
    );
    if m.trace_dropped > 0 {
        eprintln!(
            "# ring overflow: {} events dropped (capacity {capacity}; raise --trace)",
            m.trace_dropped
        );
    } else {
        eprintln!("# ring overflow: none");
    }

    if check {
        if strict && m.trace_dropped > 0 {
            eprintln!(
                "schema check: FAIL — --strict and {} events dropped",
                m.trace_dropped
            );
            return ExitCode::FAILURE;
        }
        return run_schema_check(&m.trace, &m.snapshot);
    }
    let mut out = String::with_capacity(m.trace.len() * 64);
    if m.trace_dropped > 0 {
        // Annotate the overflow in-band so readers see the gap where it
        // happened: the ring evicts oldest-first, so the gap precedes
        // everything that survived.
        out.push_str(
            &Event::TraceGap {
                dropped: m.trace_dropped,
            }
            .to_jsonl(),
        );
        out.push('\n');
    }
    for ev in &m.trace {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    print!("{out}");
    ExitCode::SUCCESS
}

/// CI's trace-schema gate: round-trip every event through the wire
/// format and replay the trace against the live snapshot.
fn run_schema_check(trace: &[Event], snapshot: &StatsSnapshot) -> ExitCode {
    if trace.is_empty() {
        eprintln!("schema check: FAIL — empty trace, nothing to validate");
        return ExitCode::FAILURE;
    }
    if snapshot.version != SNAPSHOT_VERSION {
        eprintln!(
            "schema check: FAIL — snapshot v{} but binary speaks v{SNAPSHOT_VERSION}",
            snapshot.version
        );
        return ExitCode::FAILURE;
    }
    for (i, ev) in trace.iter().enumerate() {
        let line = ev.to_jsonl();
        match Event::parse_jsonl(&line) {
            Ok(back) if back == *ev => {}
            Ok(back) => {
                eprintln!("schema check: FAIL — event {i} round-trips to {back:?}: {line}");
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("schema check: FAIL — event {i} does not parse ({err}): {line}");
                return ExitCode::FAILURE;
            }
        }
    }
    let replayed = StatsSnapshot::from_events(trace);
    if replayed != *snapshot {
        eprintln!("schema check: FAIL — trace replay diverges from the live snapshot");
        eprintln!("  replayed: {replayed:?}");
        eprintln!("  live:     {snapshot:?}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "schema check: ok — {} events, schema v{SNAPSHOT_VERSION}, replay matches snapshot",
        trace.len()
    );
    ExitCode::SUCCESS
}
