//! Regenerates Table 3: memory mapped via each Trident mechanism.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Table 3: 1GB/2MB pages by allocation mechanism", &opts);
    print!("{}", trident_sim::experiments::table3::run(&opts).to_csv());
}
