//! Regenerates the §7 "Memory bloat" study: Trident's bloat on Memcached
//! and Btree, and its recovery via HawkEye-style demotion.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Memory bloat under aggressive promotion", &opts);
    print!("{}", trident_sim::experiments::bloat::run(&opts).to_csv());
}
