//! Regenerates Figure 4: TLB-miss frequency by VA region and mappability.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner(
        "Figure 4: relative TLB-miss frequency (Graph500, SVM)",
        &opts,
    );
    print!("{}", trident_sim::experiments::fig4::run(&opts).to_csv());
}
