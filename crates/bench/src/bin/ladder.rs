//! Runs the multi-architecture ladder study: the same workloads and
//! seeds under the x86-64, RISC-V Sv48+SVNAPOT and AArch64
//! contiguous-bit ladders. Prints the measured CSV followed by the
//! per-rung architectural walk table.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Ladders: x86-64 vs Sv48 (NAPOT) vs AArch64 (contig)", &opts);
    let r = trident_sim::experiments::ladder::run(&opts);
    print!("{}", r.to_csv());
    print!("{}", r.to_walk_csv());
}
