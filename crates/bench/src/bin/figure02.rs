//! Regenerates Figure 2: page sizes under virtualized execution.

const USAGE: &str = "usage: figure02 [--all-combos] [standard experiment flags]";

fn main() {
    let mut args = trident_bench::args::Args::from_env();
    let all_combos = args.flag("--all-combos");
    let opts = match args.exp_options().and_then(|o| args.finish().map(|()| o)) {
        Ok(o) => o,
        Err(err) => err.exit(USAGE),
    };
    trident_bench::banner("Figure 2: virtualized walk cycles and performance", &opts);
    if all_combos {
        // The paper explored all nine guest+host combinations.
        print!(
            "{}",
            trident_sim::experiments::fig2::run_all_combos(&opts).to_csv()
        );
    } else {
        print!("{}", trident_sim::experiments::fig2::run(&opts).to_csv());
    }
}
