//! Regenerates Figure 2: page sizes under virtualized execution.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = trident_bench::ExpOptions::from_args(&args);
    trident_bench::banner("Figure 2: virtualized walk cycles and performance", &opts);
    if args.iter().any(|a| a == "--all-combos") {
        // The paper explored all nine guest+host combinations.
        print!(
            "{}",
            trident_sim::experiments::fig2::run_all_combos(&opts).to_csv()
        );
    } else {
        print!("{}", trident_sim::experiments::fig2::run(&opts).to_csv());
    }
}
