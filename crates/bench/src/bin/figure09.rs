//! Regenerates Figure 9: THP vs HawkEye vs Trident, unfragmented.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Figure 9: performance under no fragmentation", &opts);
    print!(
        "{}",
        trident_sim::experiments::fig9::run(&opts, false).to_csv()
    );
}
