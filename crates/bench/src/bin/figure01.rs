//! Regenerates Figure 1: page sizes under native execution.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner(
        "Figure 1: native walk cycles and performance by page size",
        &opts,
    );
    print!("{}", trident_sim::experiments::fig1::run(&opts).to_csv());
}
