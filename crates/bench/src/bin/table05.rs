//! Regenerates Table 5: tail latency for Redis and Memcached.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Table 5: p99 latency (ms)", &opts);
    print!("{}", trident_sim::experiments::table5::run(&opts).to_csv());
}
