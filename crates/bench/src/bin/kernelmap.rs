//! Regenerates the §4.3 kernel direct-map side-experiment (apache/filebench
//! gain 2-3% with a 1GB direct map over 2MB).

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Kernel direct map: 4KB vs 2MB vs 1GB", &opts);
    print!(
        "{}",
        trident_sim::experiments::kernel_map::run(&opts).to_csv()
    );
}
