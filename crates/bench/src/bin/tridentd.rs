//! `tridentd` — the Trident job daemon.
//!
//! Serves the versioned line-JSON protocol of `trident-serve` over TCP
//! (default) or stdin/stdout, executing submitted workload×policy cells
//! on a sharded worker pool. Results are bit-identical to running the
//! same cell locally — `tridentctl run --connect` is a thin client of
//! the same request types.
//!
//! ```sh
//! tridentd --listen 127.0.0.1:7117 --workers 4 --queue-depth 64
//! tridentd --stdin            # serve one request stream on stdin
//! tridentd --metrics-listen 127.0.0.1:9117   # add a /metrics scraper
//! tridentd --journal /var/lib/tridentd/jobs.jsonl   # crash durability
//! ```
//!
//! With `--metrics-listen`, a second listener serves `GET /metrics`
//! (Prometheus text) and `GET /healthz` (200 while serving, 503 once
//! draining) on its own thread; scrapes read an in-memory registry and
//! never contend with job execution.
//!
//! With `--journal PATH`, every accepted job is fsync'd to an
//! append-only journal before it runs and marked again when it settles;
//! on restart the journal is replayed and accepted-but-unfinished jobs
//! re-execute (safe: results are a pure function of the spec).
//!
//! A client `shutdown` request (or end of stdin) drains queued and
//! in-flight jobs before the process exits.

use std::sync::Arc;

use trident_bench::args::Args;
use trident_serve::service::{Service, ServiceConfig};
use trident_serve::{serve_lines, serve_metrics, serve_tcp, MetricsHandle};

const USAGE: &str = "usage: tridentd [--listen ADDR] [--stdin] [--workers N] [--queue-depth N] \
                     [--metrics-listen ADDR] [--journal PATH]";

fn main() {
    let mut args = Args::from_env();
    let use_stdin = args.flag("--stdin");
    let parsed = (|| {
        let listen = args
            .value("--listen")?
            .unwrap_or_else(|| "127.0.0.1:7117".to_owned());
        let workers = args.parsed_or("--workers", 0usize)?;
        let queue_depth = args.parsed_or("--queue-depth", 64usize)?;
        let metrics_listen = args.value("--metrics-listen")?;
        let journal = args.value("--journal")?;
        Ok((listen, workers, queue_depth, metrics_listen, journal))
    })();
    let (listen, workers, queue_depth, metrics_listen, journal) =
        match parsed.and_then(|v| args.finish().map(|()| v)) {
            Ok(v) => v,
            Err(err) => err.exit(USAGE),
        };

    let config = ServiceConfig {
        workers,
        queue_depth,
        start_paused: false,
    };
    let service = match journal {
        Some(path) => match Service::start_with_journal(config, std::path::Path::new(&path)) {
            Ok((service, replay)) => {
                // The smoke tests parse this line for the replay count.
                eprintln!(
                    "# tridentd: journal replayed {} jobs ({} records{})",
                    replay.replayed,
                    replay.records,
                    if replay.corrupt > 0 {
                        format!(", {} corrupt lines skipped", replay.corrupt)
                    } else {
                        String::new()
                    }
                );
                service
            }
            Err(err) => {
                eprintln!("tridentd: cannot open journal {path}: {err}");
                std::process::exit(1);
            }
        },
        None => Service::start(config),
    };
    eprintln!(
        "# tridentd: {} workers, queue depth {} per shard",
        service.workers(),
        queue_depth
    );

    let metrics_handle: Option<MetricsHandle> = metrics_listen.map(|addr| {
        match serve_metrics(service.metrics(), &addr) {
            Ok(handle) => {
                // The smoke tests parse this line for the bound port.
                eprintln!("# tridentd: metrics on http://{}/metrics", handle.addr());
                handle
            }
            Err(err) => {
                eprintln!("tridentd: cannot serve metrics on {addr}: {err}");
                std::process::exit(1);
            }
        }
    });
    let stop_metrics = |handle: Option<MetricsHandle>| {
        if let Some(handle) = handle {
            handle.stop();
            if let Err(err) = handle.join() {
                eprintln!("tridentd: metrics listener failed: {err}");
            }
        }
    };

    if use_stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        match serve_lines(&service, stdin.lock(), stdout.lock()) {
            Ok(_) => {}
            Err(err) => {
                eprintln!("tridentd: stdin stream failed: {err}");
                std::process::exit(1);
            }
        }
        eprintln!("# tridentd: draining…");
        service.shutdown();
        stop_metrics(metrics_handle);
        eprintln!("# tridentd: done");
        return;
    }

    let service = Arc::new(service);
    let handle = match serve_tcp(Arc::clone(&service), &listen) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("tridentd: cannot listen on {listen}: {err}");
            std::process::exit(1);
        }
    };
    // The smoke tests parse this line for the bound port.
    eprintln!("# tridentd: listening on {}", handle.addr());
    if let Err(err) = handle.join() {
        eprintln!("tridentd: accept loop failed: {err}");
    }
    eprintln!("# tridentd: draining…");
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(service) => service.request_stop(), // a connection thread still holds a reference
    }
    stop_metrics(metrics_handle);
    eprintln!("# tridentd: done");
}
