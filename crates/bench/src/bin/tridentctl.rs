//! `tridentctl` — run any workload under any policy and print a
//! `perf stat`-style report, locally or against a `tridentd` daemon.
//!
//! ```sh
//! tridentctl list
//! tridentctl run --workload Redis --policy Trident --scale 64 [--fragment]
//! tridentctl run --workload GUPS --policy Trident --trace-out run.jsonl
//! tridentctl run --workload GUPS --policy Trident --connect 127.0.0.1:7117
//! tridentctl jobs --connect 127.0.0.1:7117
//! tridentctl watch 3 --connect 127.0.0.1:7117
//! tridentctl metrics --connect 127.0.0.1:7117
//! tridentctl health --connect 127.0.0.1:9117
//! tridentctl fleet --workload GUPS --policy Trident --cells 8 \
//!     --connect 127.0.0.1:7117 --connect 127.0.0.1:7118
//! tridentctl shutdown --connect 127.0.0.1:7117
//! ```
//!
//! With `--connect ADDR` the job travels as a [`trident_serve::proto`]
//! request and executes on the daemon's worker pool; without it the same
//! [`JobSpec`] runs in-process. Both paths call
//! `trident_serve::job::execute`, so the results are bit-identical.
//!
//! `fleet` fans a grid of cells across several daemons with retry,
//! failover and hedging ([`trident_serve::fleet`]); because every cell's
//! result is a pure function of its spec, the merged report is
//! byte-identical to running the same cells against one daemon — even
//! under an adversarial `--net-fault` plan or a daemon crash mid-grid.

use std::time::Duration;

use trident_bench::args::{ArgError, Args};
use trident_fault::{WirePlan, WireSite};
use trident_serve::proto::FaultSpec;
use trident_serve::{
    probe_healthz, Client, FleetClient, FleetConfig, Health, JobResult, JobSpec, Request, Response,
    RetryPolicy, TenantJob,
};
use trident_sim::PolicyKind;
use trident_types::PageSize;
use trident_workloads::WorkloadSpec;

const USAGE: &str = "\
usage: tridentctl list
       tridentctl run --workload <name> --policy <name> [--scale N] [--samples N]
                      [--seed N] [--cell N] [--fragment] [--trace N] [--profile]
                      [--geometry x86_64|sv48|aarch64]
                      [--trace-out FILE] [--profile-out FILE]
                      [--fault-seed N] [--fault SITE:PROB]...
                      [--audit] [--tenant NAME[,weight=N][,budget=N]
                                 [,prefer=LABEL][,optout][,pin=START+PAGES]]...
                      [--connect ADDR]
       tridentctl status <id> --connect ADDR
       tridentctl cancel <id> --connect ADDR
       tridentctl watch <id> --connect ADDR [--interval-ms N] [--timeout-ms N]
       tridentctl jobs --connect ADDR
       tridentctl metrics --connect ADDR
       tridentctl health --connect ADDR [--timeout-ms N]
       tridentctl fleet --workload <name> --policy <name> --cells N
                        --connect ADDR[,metrics=ADDR]... [run flags]
                        [--attempts N] [--backoff-ms N] [--jitter-seed N]
                        [--connect-timeout-ms N] [--request-timeout-ms N]
                        [--result-timeout-ms N] [--hedge-ms N] [--poll-ms N]
                        [--net-fault SITE:PROB[:CAP]]... [--net-fault-seed N]
       tridentctl shutdown --connect ADDR";

/// `println!` that treats a closed stdout (e.g. `tridentctl jobs |
/// grep -q`, which exits on first match) as a normal early exit rather
/// than a broken-pipe panic, the way Unix filters behave.
macro_rules! println {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        #[allow(clippy::explicit_write)]
        let ok = writeln!(std::io::stdout(), $($arg)*).is_ok();
        if !ok {
            std::process::exit(0);
        }
    }};
}

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tridentctl: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = Args::from_env();
    let Some(command) = args.positional() else {
        usage()
    };
    let outcome = match command.as_str() {
        "list" => {
            list();
            args.finish()
        }
        "run" => run(args),
        "status" => remote_by_id(args, |id| Request::Status { id }),
        "cancel" => remote_by_id(args, |id| Request::Cancel { id }),
        "watch" => watch(args),
        "jobs" => remote(args, Request::List),
        "metrics" => remote(args, Request::Metrics),
        "health" => health(args),
        "fleet" => fleet(args),
        "shutdown" => remote(args, Request::Shutdown),
        _ => usage(),
    };
    if let Err(err) = outcome {
        err.exit(USAGE);
    }
}

fn list() {
    println!("workloads:");
    for w in WorkloadSpec::all() {
        println!(
            "  {:<10} {:>4} GB, {} threads{}",
            w.name,
            w.footprint_bytes >> 30,
            w.threads,
            if w.giant_sensitive {
                ", 1GB-sensitive"
            } else {
                ""
            }
        );
    }
    println!("policies:");
    for kind in PolicyKind::ALL {
        println!("  {:<16} ({})", kind.short_name(), kind.label());
    }
}

/// Builds a [`JobSpec`] from the `run` flags.
fn spec_from_args(args: &mut Args) -> Result<JobSpec, ArgError> {
    let workload = args.value("--workload")?;
    let policy = args.value("--policy")?;
    let (Some(workload), Some(policy)) = (workload, policy) else {
        usage()
    };
    let mut spec = JobSpec::new(&workload, &policy);
    spec.scale = args.parsed_or("--scale", spec.scale)?;
    spec.samples = args.parsed_or("--samples", spec.samples)?;
    spec.seed = args.parsed_or("--seed", spec.seed)?;
    spec.cell_index = args.parsed("--cell")?;
    spec.fragment = args.flag("--fragment");
    spec.trace_capacity = args.parsed("--trace")?;
    spec.profile = args.flag("--profile");
    spec.trace_out = args.value("--trace-out")?;
    spec.profile_out = args.value("--profile-out")?;
    spec.geometry = args.value("--geometry")?;

    let fault_seed = args.parsed("--fault-seed")?;
    let mut rules = Vec::new();
    while let Some(raw) = args.value("--fault")? {
        let parsed = raw.split_once(':').and_then(|(site, prob)| {
            Some((
                trident_core::InjectSite::parse(site)?,
                prob.parse::<u16>().ok()?,
            ))
        });
        match parsed {
            Some(rule) => rules.push(rule),
            None => {
                return Err(ArgError::InvalidValue {
                    flag: "--fault".to_owned(),
                    value: raw,
                    expected: "SITE:PROB, e.g. alloc:100 (probability in thousandths)",
                })
            }
        }
    }
    if !rules.is_empty() || fault_seed.is_some() {
        spec.fault = Some(FaultSpec {
            seed: fault_seed.unwrap_or(spec.seed),
            rules,
        });
    }

    spec.audit = args.flag("--audit");
    while let Some(raw) = args.value("--tenant")? {
        match parse_tenant(&raw) {
            Some(tenant) => spec.tenants.push(tenant),
            None => {
                return Err(ArgError::InvalidValue {
                    flag: "--tenant".to_owned(),
                    value: raw,
                    expected: "NAME[,weight=N][,budget=N][,prefer=LABEL]\
                               [,optout][,pin=START+PAGES]",
                })
            }
        }
    }
    Ok(spec)
}

/// Parses one `--tenant` value: a workload name followed by
/// comma-separated policy knobs.
fn parse_tenant(raw: &str) -> Option<TenantJob> {
    let mut parts = raw.split(',');
    let name = parts.next()?;
    if name.is_empty() {
        return None;
    }
    let mut tenant = TenantJob::new(name);
    for part in parts {
        if part == "optout" {
            tenant.opt_out = true;
            continue;
        }
        let (key, value) = part.split_once('=')?;
        match key {
            "weight" => tenant.weight = value.parse().ok()?,
            "budget" => tenant.chunk_budget = Some(value.parse().ok()?),
            "prefer" => {
                // A rung label; the daemon validates it against the
                // job's geometry ladder at admission.
                tenant.prefer = Some(value.to_owned());
            }
            "pin" => {
                let (start, pages) = value.split_once('+')?;
                tenant.pins.push((start.parse().ok()?, pages.parse().ok()?));
            }
            _ => return None,
        }
    }
    Some(tenant)
}

fn run(mut args: Args) -> Result<(), ArgError> {
    let spec = spec_from_args(&mut args)?;
    let connect = args.value("--connect")?;
    args.finish()?;

    let result = match connect {
        Some(addr) => run_remote(&spec, &addr),
        None => match trident_serve::job::execute(&spec) {
            Ok(result) => result,
            Err(msg) => fail(msg),
        },
    };
    print_report(&spec, &result);
    Ok(())
}

/// Submits the job to a daemon and blocks for its result.
fn run_remote(spec: &JobSpec, addr: &str) -> JobResult {
    let mut client = connect(addr);
    let id = match request(&mut client, &Request::Submit(spec.clone())) {
        Response::Submitted { id } => id,
        other => fail(describe(&other)),
    };
    eprintln!("# submitted as job {id} on {addr}");
    match request(&mut client, &Request::Result { id }) {
        Response::Result { result, .. } => result,
        other => fail(describe(&other)),
    }
}

/// Subcommands that are pure protocol round-trips (`jobs`, `shutdown`).
fn remote(mut args: Args, req: Request) -> Result<(), ArgError> {
    let addr = args.value("--connect")?.unwrap_or_else(|| usage());
    args.finish()?;
    let response = request(&mut connect(&addr), &req);
    println!("{}", describe(&response));
    Ok(())
}

/// `watch <id>`: polls the daemon's per-tick progress table and prints
/// one line per change until the job reaches a terminal state.
fn watch(mut args: Args) -> Result<(), ArgError> {
    let id = match args.positional() {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| fail(format!("job id must be an integer, got {raw:?}"))),
        None => usage(),
    };
    let addr = args.value("--connect")?.unwrap_or_else(|| usage());
    let interval_ms: u64 = args.parsed_or("--interval-ms", 200)?;
    let timeout_ms: u64 = args.parsed_or("--timeout-ms", 10_000)?;
    args.finish()?;

    // A per-request deadline so a dead daemon yields a typed timeout
    // instead of blocking the watch forever.
    let policy = RetryPolicy {
        request_timeout: Duration::from_millis(timeout_ms.max(1)),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr, policy)
        .unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")));
    let mut last = None;
    loop {
        let (state, progress) = match request(&mut client, &Request::Progress { id }) {
            Response::Progress {
                state, progress, ..
            } => (state, progress),
            other => fail(describe(&other)),
        };
        let line = render_progress(id, state, &progress);
        if last.as_ref() != Some(&line) {
            println!("{line}");
            last = Some(line);
        }
        if state.is_terminal() {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

/// One `watch` line: state, sample progress with a percentage when the
/// total is known, tick count, and the live 1GB FMFI.
fn render_progress(
    id: u64,
    state: trident_serve::JobState,
    p: &trident_serve::JobProgress,
) -> String {
    let pct = (100 * p.samples_done)
        .checked_div(p.samples_total)
        .map_or_else(String::new, |pct| format!(" ({pct}%)"));
    format!(
        "job {id}: {state}  samples {}/{}{pct}  ticks {}  FMFI(1GB) {}.{:03}",
        p.samples_done,
        p.samples_total,
        p.ticks,
        p.fmfi_milli / 1000,
        p.fmfi_milli % 1000,
    )
}

/// Subcommands addressing one job by id (`status <id>`, `cancel <id>`).
fn remote_by_id(mut args: Args, req: impl Fn(u64) -> Request) -> Result<(), ArgError> {
    let id = match args.positional() {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| fail(format!("job id must be an integer, got {raw:?}"))),
        None => usage(),
    };
    remote(args, req(id))
}

/// `health`: probes a daemon's `/healthz` endpoint and renders its
/// drain state, honouring the `Retry-After` hint a draining daemon
/// sends. Exits non-zero when the daemon is unreachable.
fn health(mut args: Args) -> Result<(), ArgError> {
    let addr = args.value("--connect")?.unwrap_or_else(|| usage());
    let timeout_ms: u64 = args.parsed_or("--timeout-ms", 2_000)?;
    args.finish()?;
    match probe_healthz(&addr, Duration::from_millis(timeout_ms.max(1))) {
        Health::Serving => println!("{addr}: serving"),
        Health::Draining {
            retry_after: Some(secs),
        } => println!("{addr}: draining (retry after {secs}s)"),
        Health::Draining { retry_after: None } => println!("{addr}: draining"),
        Health::Unreachable => {
            println!("{addr}: unreachable");
            std::process::exit(1);
        }
    }
    Ok(())
}

/// `fleet`: fans `--cells N` cells of one spec across every `--connect`
/// endpoint with retry, failover and hedging, then prints one
/// deterministic line per cell (stdout carries only cell results, so
/// the report diffs cleanly against any other run of the same grid).
fn fleet(mut args: Args) -> Result<(), ArgError> {
    let spec = spec_from_args(&mut args)?;
    let mut endpoints = Vec::new();
    while let Some(addr) = args.value("--connect")? {
        endpoints.push(addr);
    }
    if endpoints.is_empty() {
        usage()
    }
    let cells: u64 = args.parsed_or("--cells", 1)?;

    let mut retry = RetryPolicy::default();
    retry.max_attempts = args.parsed_or("--attempts", retry.max_attempts)?;
    retry.jitter_seed = args.parsed_or("--jitter-seed", spec.seed)?;
    for (flag, slot) in [
        ("--backoff-ms", &mut retry.backoff_base),
        ("--connect-timeout-ms", &mut retry.connect_timeout),
        ("--request-timeout-ms", &mut retry.request_timeout),
        ("--result-timeout-ms", &mut retry.result_timeout),
    ] {
        if let Some(ms) = args.parsed::<u64>(flag)? {
            *slot = Duration::from_millis(ms.max(1));
        }
    }
    let mut config = FleetConfig {
        retry,
        ..FleetConfig::default()
    };
    if let Some(ms) = args.parsed::<u64>("--hedge-ms")? {
        config.hedge_after = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = args.parsed::<u64>("--poll-ms")? {
        config.poll_interval = Duration::from_millis(ms.max(1));
    }

    let net_fault_seed: Option<u64> = args.parsed("--net-fault-seed")?;
    let mut builder = WirePlan::builder(net_fault_seed.unwrap_or(spec.seed));
    let mut any_rule = false;
    while let Some(raw) = args.value("--net-fault")? {
        let mut parts = raw.split(':');
        let parsed = (|| {
            let site = WireSite::parse(parts.next()?)?;
            let prob: u16 = parts.next()?.parse().ok()?;
            let cap: Option<u32> = match parts.next() {
                Some(c) => Some(c.parse().ok()?),
                None => None,
            };
            parts.next().is_none().then_some((site, prob, cap))
        })();
        match parsed {
            Some((site, prob, Some(cap))) => {
                builder = builder.site_capped(site, prob, cap);
                any_rule = true;
            }
            Some((site, prob, None)) => {
                builder = builder.site(site, prob);
                any_rule = true;
            }
            None => {
                return Err(ArgError::InvalidValue {
                    flag: "--net-fault".to_owned(),
                    value: raw,
                    expected: "SITE:PROB[:CAP] with SITE one of drop|delay|truncate|corrupt|sever \
                               (probability in thousandths, CAP = max faults)",
                })
            }
        }
    }
    if any_rule {
        config.wire = Some(builder.build().unwrap_or_else(|e| fail(e)));
    }
    args.finish()?;

    let fleet = FleetClient::new(&endpoints, config).unwrap_or_else(|e| fail(e));
    let cell_list: Vec<u64> = (0..cells).collect();
    let outcome = fleet
        .run_cells(&spec, &cell_list)
        .unwrap_or_else(|e| fail(e));
    for (cell, r) in &outcome.results {
        let mapped = r
            .rungs
            .iter()
            .map(|row| row.bytes.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "cell {cell}: walks={} walk_cycles={} tlb={} mapped=[{mapped}] faults={}",
            r.walks,
            r.walk_cycles,
            r.tlb_accesses,
            r.snapshot.total_faults(),
        );
    }
    println!("grid: {} cells ok", outcome.results.len());
    let s = outcome.stats;
    eprintln!(
        "# fleet: submits={} accepted={} queue_full={} timeouts={} io_errors={} \
         malformed={} failovers={} hedges={} duplicates={} mismatches={}",
        s.submits,
        s.accepted,
        s.queue_full,
        s.timeouts,
        s.io_errors,
        s.malformed,
        s.failovers,
        s.hedges,
        s.duplicates,
        s.mismatches,
    );
    Ok(())
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")))
}

fn request(client: &mut Client, req: &Request) -> Response {
    match client.request(req) {
        Ok(Response::Error { code, message }) => {
            fail(format!("daemon refused ({code}): {message}"))
        }
        Ok(response) => response,
        Err(e) => fail(e),
    }
}

/// One line describing the daemon itself, appended to `status`/`jobs`.
fn describe_service(info: &trident_serve::ServiceInfo) -> String {
    let queues = info
        .queues
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(" ");
    let journal = info.journal.as_ref().map_or_else(String::new, |j| {
        format!(
            "\njournal: {} records, {} replayed, {} pending",
            j.records, j.replayed, j.pending
        )
    });
    format!(
        "daemon: {} workers{}, queue depth {} per shard, queued [{queues}]{journal}",
        info.workers,
        if info.paused { " (paused)" } else { "" },
        info.queue_depth,
    )
}

/// One line of human-readable text per non-result response.
fn describe(response: &Response) -> String {
    match response {
        Response::Submitted { id } => format!("submitted as job {id}"),
        Response::Status { id, state, service } => {
            format!("job {id}: {state}\n{}", describe_service(service))
        }
        Response::Result { id, .. } => format!("job {id}: done"),
        Response::Cancelled { id } => format!("job {id}: cancelled"),
        Response::Jobs { jobs, service } if jobs.is_empty() => {
            format!("no jobs\n{}", describe_service(service))
        }
        Response::Jobs { jobs, service } => {
            let mut lines: Vec<String> = jobs
                .iter()
                .map(|j| {
                    format!(
                        "{:>4}  {:<10} {:<14} {}{}{}",
                        j.id,
                        j.state,
                        j.policy,
                        j.workload,
                        if j.origin == trident_serve::JobOrigin::Journal {
                            "  (replayed)"
                        } else {
                            ""
                        },
                        j.key
                            .as_deref()
                            .map_or_else(String::new, |k| format!("  key={k}")),
                    )
                })
                .collect();
            lines.push(describe_service(service));
            lines.join("\n")
        }
        Response::Metrics { text } => text.trim_end().to_owned(),
        Response::Progress {
            id,
            state,
            progress,
        } => render_progress(*id, *state, progress),
        Response::ShuttingDown => "daemon is draining and will exit".to_owned(),
        Response::Error { code, message } => format!("error ({code}): {message}"),
    }
}

/// The `perf stat`-style report, rendered from the serializable
/// [`JobResult`] so local and remote runs print identically.
fn print_report(spec: &JobSpec, r: &JobResult) {
    let s = &r.snapshot;
    println!(
        "── {} under {} (scale 1/{}) ──",
        spec.workload, spec.policy, spec.scale
    );
    println!("memory mix:");
    for row in &r.rungs {
        println!("  {:>10}: {:>8} MB mapped", row.size, row.bytes >> 20);
    }
    let miss = if r.tlb_accesses == 0 {
        0.0
    } else {
        100.0 * r.walks as f64 / r.tlb_accesses as f64
    };
    println!(
        "tlb: {} accesses, {} walks ({miss:.2}% miss), {} walk cycles",
        r.tlb_accesses, r.walks, r.walk_cycles
    );
    // The result's rungs are in ladder order, so the last row is the
    // top rung and row index i is counter slot i.
    let top_rung = r.rungs.len().saturating_sub(1);
    let top_label = r.rungs.last().map_or("top", |row| row.size.as_str());
    println!(
        "faults: {} total ({} at {top_label}, mean {top_label} fault {})",
        s.total_faults(),
        s.faults[top_rung],
        s.mean_fault_ns(PageSize::new(top_rung))
            .map(|ns| format!("{:.2} ms", ns as f64 / 1e6))
            .unwrap_or_else(|| "n/a".into()),
    );
    let promoted = r
        .rungs
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, row)| format!("{} to {}", s.promotions[i], row.size))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "promotion: {promoted}; {} MB copied; {} MB exchanged (pv)",
        s.promotion_bytes_copied >> 20,
        s.pv_bytes_exchanged >> 20,
    );
    println!(
        "compaction: {}/{} successful runs, {} MB migrated",
        s.compaction_successes,
        s.compaction_attempts,
        s.compaction_bytes_copied >> 20,
    );
    println!(
        "bloat: {} pages added, {} recovered; daemon CPU {:.1} ms",
        s.bloat_pages,
        s.bloat_recovered_pages,
        s.daemon_ns as f64 / 1e6,
    );
    if r.tenants.len() > 1 {
        println!("tenants:");
        for t in &r.tenants {
            println!(
                "  {} {:<10} {:>8} samples, {:>7} walks, {:>10} walk cycles, \
                 FMFI(top) {}.{:03}, {} faults",
                t.tenant,
                t.workload,
                t.samples,
                t.walks,
                t.walk_cycles,
                t.fmfi_milli / 1000,
                t.fmfi_milli % 1000,
                t.faults,
            );
        }
    }
    if spec.audit {
        println!("audit: {} violations", r.violations);
    }
    if r.trace_dropped > 0 {
        println!("trace: {} events dropped by the ring", r.trace_dropped);
    }
    if let (Some(lines), Some(path)) = (r.trace_lines, &spec.trace_out) {
        eprintln!("# trace: {lines} events -> {path}");
    }
    if let Some(path) = &spec.profile_out {
        eprintln!("# profile -> {path}");
    }
}
