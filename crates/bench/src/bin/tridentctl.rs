//! `tridentctl` — run any workload under any policy and print a
//! `perf stat`-style report.
//!
//! ```sh
//! tridentctl list
//! tridentctl run --workload Redis --policy Trident --scale 64 [--fragment]
//! tridentctl run --workload GUPS --policy Trident --trace-out run.jsonl
//! ```
//!
//! `--trace-out FILE` streams the run's event trace to `FILE` as JSONL
//! while the simulation executes — no ring, no capacity limit, no
//! drops — ready for `trace_analyze`.

use std::io::BufWriter;

use trident_core::ObsRecorder;
use trident_prof::JsonlWriter;
use trident_sim::{PolicyKind, RunReport, SimConfig, System};
use trident_workloads::WorkloadSpec;

const POLICIES: &[(&str, PolicyKind)] = &[
    ("4KB", PolicyKind::Base),
    ("THP", PolicyKind::Thp),
    ("Hugetlbfs2M", PolicyKind::HugetlbfsHuge),
    ("Hugetlbfs1G", PolicyKind::HugetlbfsGiant),
    ("HawkEye", PolicyKind::HawkEye),
    ("Ingens", PolicyKind::Ingens),
    ("Trident", PolicyKind::Trident),
    ("Trident1G", PolicyKind::Trident1G),
    ("TridentNC", PolicyKind::TridentNC),
];

fn usage() -> ! {
    eprintln!("usage: tridentctl list");
    eprintln!("       tridentctl run --workload <name> --policy <name> [--scale N] [--samples N] [--seed N] [--fragment] [--trace-out FILE]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("workloads:");
            for w in WorkloadSpec::all() {
                println!(
                    "  {:<10} {:>4} GB, {} threads{}",
                    w.name,
                    w.footprint_bytes >> 30,
                    w.threads,
                    if w.giant_sensitive {
                        ", 1GB-sensitive"
                    } else {
                        ""
                    }
                );
            }
            println!("policies:");
            for (name, kind) in POLICIES {
                println!("  {:<12} ({})", name, kind.label());
            }
        }
        Some("run") => {
            let get = |flag: &str| {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let workload = get("--workload").unwrap_or_else(|| usage());
            let policy_name = get("--policy").unwrap_or_else(|| usage());
            let spec = WorkloadSpec::by_name(&workload).unwrap_or_else(|| {
                eprintln!("unknown workload {workload}; try `tridentctl list`");
                std::process::exit(2);
            });
            let kind = POLICIES
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(&policy_name))
                .map(|(_, k)| *k)
                .unwrap_or_else(|| {
                    eprintln!("unknown policy {policy_name}; try `tridentctl list`");
                    std::process::exit(2);
                });
            let opts = trident_bench::ExpOptions::from_args(&args);
            let mut config = SimConfig::at_scale(opts.scale);
            config.measure_samples = opts.samples;
            config.measure_tick_every = (opts.samples / 6).max(1);
            config.seed = opts.seed;
            if args.iter().any(|a| a == "--fragment") {
                config = config.fragmented();
            }
            let writer = get("--trace-out").map(|path| {
                let file = std::fs::File::create(&path).unwrap_or_else(|e| {
                    eprintln!("cannot create trace file {path}: {e}");
                    std::process::exit(1);
                });
                (path, JsonlWriter::new(Box::new(BufWriter::new(file))))
            });
            let launched = match &writer {
                Some((_, w)) => System::launch_recording(
                    config,
                    kind,
                    spec,
                    ObsRecorder::custom(Box::new(w.clone())),
                ),
                None => System::launch(config, kind, spec),
            };
            match launched {
                Ok(mut system) => {
                    system.settle();
                    let m = system.measure();
                    println!("{}", RunReport::new(&system, &m));
                    if let Some((path, w)) = writer {
                        match w.finish() {
                            Ok(lines) => eprintln!("# trace: {lines} events -> {path}"),
                            Err(e) => {
                                eprintln!("trace write to {path} failed: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!(
                        "launch failed: {e} (hugetlbfs reservations fail on fragmented memory)"
                    );
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
