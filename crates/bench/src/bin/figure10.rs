//! Regenerates Figure 10: THP vs HawkEye vs Trident under fragmentation.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Figure 10: performance under fragmentation", &opts);
    print!(
        "{}",
        trident_sim::experiments::fig9::run(&opts, true).to_csv()
    );
}
