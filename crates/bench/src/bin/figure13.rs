//! Regenerates Figure 13: Trident_pv under fragmented gPA.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Figure 13: Trident_pv with khugepaged capped at 10%", &opts);
    print!("{}", trident_sim::experiments::fig13::run(&opts).to_csv());
}
