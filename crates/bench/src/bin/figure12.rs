//! Regenerates Figure 12: performance under virtualization.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Figure 12: THP/HawkEye/Trident at both levels", &opts);
    print!("{}", trident_sim::experiments::fig12::run(&opts).to_csv());
}
