//! Regenerates Figure 11: ablation of Trident's design components.

fn main() {
    let opts = trident_bench::options_from_env();
    trident_bench::banner("Figure 11: Trident-1Gonly / Trident-NC / Trident", &opts);
    let a = trident_sim::experiments::fig11::run(&opts, false);
    let b = trident_sim::experiments::fig11::run(&opts, true);
    println!("# (a) no fragmentation");
    print!("{}", a.to_csv());
    println!("# (b) fragmentation");
    print!("{}", b.to_csv());
}
