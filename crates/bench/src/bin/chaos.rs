//! Chaos harness: runs fig1/table4-style workload grids under
//! randomized-but-seeded fault plans and checks the three graceful-
//! degradation properties end to end:
//!
//! 1. **No panics.** Every injected failure must surface as a fallback or
//!    a deferral, never as a crash.
//! 2. **Invariants hold.** The per-tick cross-layer audit
//!    (`check_mm_consistent`) must stay clean after every tick of every
//!    cell, faults or not.
//! 3. **Determinism.** The whole grid re-run on 8 worker threads must be
//!    bit-identical to the single-threaded run — fault decisions are a
//!    pure function of (seed, site, counter), never of scheduling.
//!
//! Flags: the standard experiment flags (`--scale`, `--samples`,
//! `--seed`, `--threads`, `--trace`) plus `--prob N` (per-site
//! probability cap in thousandths for the randomized plans; default 100,
//! i.e. up to 10% per decision). Exit status is nonzero when any
//! property fails; stdout is a per-cell CSV, stderr carries the banner
//! and the verdict.

use std::panic::{catch_unwind, AssertUnwindSafe};

use trident_bench::args::{ArgError, Args};
use trident_core::{FaultPlan, StatsSnapshot};
use trident_sim::{derive_cell_seed, PolicyKind, Runner, SimConfig, System, VirtSystem};
use trident_workloads::WorkloadSpec;

/// Native policies of the Figure 1 grid, plus Trident itself.
const NATIVE_KINDS: [PolicyKind; 5] = [
    PolicyKind::Base,
    PolicyKind::Thp,
    PolicyKind::HugetlbfsHuge,
    PolicyKind::HugetlbfsGiant,
    PolicyKind::Trident,
];

/// Table 4-style virtualized pairings (host, guest).
const VIRT_KINDS: [(PolicyKind, PolicyKind); 2] = [
    (PolicyKind::Thp, PolicyKind::Thp),
    (PolicyKind::Trident, PolicyKind::TridentPv),
];

/// Salt decorrelating plan seeds from run seeds.
const PLAN_SALT: u64 = 0xC4A0_5CA0;

#[derive(Debug, Clone)]
struct CellPlan {
    label: String,
    native: Option<(PolicyKind, WorkloadSpec)>,
    virt: Option<(PolicyKind, PolicyKind, WorkloadSpec)>,
    config: SimConfig,
}

/// What one cell produced; everything that must be bit-identical across
/// thread counts lives here.
#[derive(Debug, Clone, PartialEq)]
struct CellOutcome {
    /// `None` when the policy could not boot (hugetlbfs reservation).
    snapshot: Option<StatsSnapshot>,
    walk_cycles: u64,
    violations: usize,
}

fn run_cell(plan: &CellPlan) -> Result<CellOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| {
        if let Some((kind, spec)) = plan.native {
            let built = System::builder(plan.config)
                .policy(kind)
                .workload(spec)
                .build();
            match built {
                Ok(mut sys) => {
                    sys.settle();
                    let m = sys.measure();
                    CellOutcome {
                        snapshot: Some(m.snapshot),
                        walk_cycles: m.walk_cycles,
                        violations: sys.violations().len(),
                    }
                }
                Err(_) => CellOutcome {
                    snapshot: None,
                    walk_cycles: 0,
                    violations: 0,
                },
            }
        } else {
            let (host, guest, spec) = plan.virt.expect("cell is native or virt");
            match VirtSystem::launch(plan.config, host, guest, spec, false) {
                Ok(mut vs) => {
                    vs.settle();
                    let m = vs.measure();
                    CellOutcome {
                        snapshot: Some(m.snapshot),
                        walk_cycles: m.walk_cycles,
                        violations: 0,
                    }
                }
                Err(_) => CellOutcome {
                    snapshot: None,
                    walk_cycles: 0,
                    violations: 0,
                },
            }
        }
    }))
    .map_err(|e| {
        let msg = e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        format!("panicked: {msg}")
    })
}

const USAGE: &str = "usage: chaos [--prob N] [standard experiment flags]";

fn parse_cli(args: &mut Args) -> Result<(trident_bench::ExpOptions, u16), ArgError> {
    // The chaos grid defaults to a smaller cell than the figures so the
    // whole grid (with audit on) stays fast.
    let scale = args.parsed_or("--scale", 64)?;
    let samples = args.parsed_or("--samples", 20_000)?;
    let prob: u16 = args.parsed_or("--prob", 100)?;
    let mut opts = args.exp_options()?;
    opts.scale = scale;
    opts.samples = samples;
    Ok((opts, prob))
}

fn main() {
    let mut args = Args::from_env();
    let (opts, prob) = match parse_cli(&mut args).and_then(|v| args.finish().map(|()| v)) {
        Ok(v) => v,
        Err(err) => err.exit(USAGE),
    };
    trident_bench::banner("Chaos: fault-plan grid with per-tick audit", &opts);
    eprintln!("# per-site probability cap: {prob}/1000");

    let specs = WorkloadSpec::all();
    let mut plans = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let mut config = opts.config();
        config.seed = derive_cell_seed(opts.seed, row as u64);
        config.audit = true;
        for kind in NATIVE_KINDS {
            let idx = plans.len() as u64;
            let mut c = config;
            c.fault = Some(FaultPlan::randomized(
                derive_cell_seed(opts.seed ^ PLAN_SALT, idx),
                prob,
            ));
            plans.push(CellPlan {
                label: format!("{:?}/{}", kind, spec.name),
                native: Some((kind, *spec)),
                virt: None,
                config: c,
            });
        }
    }
    // A small virtualized wing: first two workloads, both pairings.
    for spec in specs.iter().take(2) {
        for (host, guest) in VIRT_KINDS {
            let idx = plans.len() as u64;
            let mut c = opts.config();
            c.seed = derive_cell_seed(opts.seed, 1000 + idx);
            c.fault = Some(FaultPlan::randomized(
                derive_cell_seed(opts.seed ^ PLAN_SALT, idx),
                prob,
            ));
            plans.push(CellPlan {
                label: format!("{host:?}+{guest:?}/{}", spec.name),
                native: None,
                virt: Some((host, guest, *spec)),
                config: c,
            });
        }
    }

    let serial = Runner::new(1).map(&plans, |_, p| run_cell(p));
    let parallel = Runner::new(8).map(&plans, |_, p| run_cell(p));

    let mut failures = Vec::new();
    let mut total_injected = 0u64;
    println!("cell,booted,injected,deferred,pv_fallbacks,violations,walk_cycles");
    for (plan, (s, p)) in plans.iter().zip(serial.iter().zip(&parallel)) {
        match s {
            Ok(out) => {
                let injected = out
                    .snapshot
                    .as_ref()
                    .map_or(0, StatsSnapshot::total_injected_faults);
                total_injected += injected;
                if out.violations > 0 {
                    failures.push(format!(
                        "{}: {} invariant violations",
                        plan.label, out.violations
                    ));
                }
                println!(
                    "{},{},{},{},{},{},{}",
                    plan.label,
                    out.snapshot.is_some(),
                    injected,
                    out.snapshot.as_ref().map_or(0, |s| s.promotions_deferred),
                    out.snapshot.as_ref().map_or(0, |s| s.pv_fallbacks),
                    out.violations,
                    out.walk_cycles,
                );
            }
            Err(msg) => failures.push(format!("{}: {msg}", plan.label)),
        }
        match (s, p) {
            (Ok(a), Ok(b)) if a != b => {
                failures.push(format!("{}: threads=1 and threads=8 disagree", plan.label))
            }
            (Ok(_), Err(msg)) => failures.push(format!("{}: parallel run {msg}", plan.label)),
            _ => {}
        }
    }
    if total_injected == 0 && prob > 0 {
        failures.push("no faults were injected anywhere — plan wiring is dead".to_owned());
    }

    if failures.is_empty() {
        eprintln!(
            "# chaos PASS: {} cells, {total_injected} injected faults, zero panics, zero violations, thread counts agree",
            plans.len()
        );
    } else {
        for f in &failures {
            eprintln!("# chaos FAIL: {f}");
        }
        std::process::exit(1);
    }
}
