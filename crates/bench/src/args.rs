//! Typed command-line parsing shared by every binary in this crate.
//!
//! Each binary used to hand-roll its own `--flag value` scanning loop;
//! those loops drifted (some ignored unknown flags, some silently
//! swallowed unparsable values). This module is the single parsing
//! surface: flags are *taken* out of the token list as they are matched,
//! values parse into typed errors instead of silent defaults, and
//! [`Args::finish`] rejects whatever is left over, so a typo like
//! `--sample` fails loudly instead of running a 20-minute grid with the
//! default sample count.
//!
//! # Examples
//!
//! ```
//! use trident_bench::args::Args;
//!
//! let mut args = Args::new(vec!["--seed".into(), "7".into(), "--fragment".into()]);
//! assert_eq!(args.parsed_or::<u64>("--seed", 42).unwrap(), 7);
//! assert!(args.flag("--fragment"));
//! args.finish().unwrap();
//! ```

use std::fmt;

use trident_sim::experiments::ExpOptions;

/// What went wrong while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A value-taking flag appeared without a following value.
    MissingValue {
        /// The flag, e.g. `--seed`.
        flag: String,
    },
    /// A flag's value failed to parse.
    InvalidValue {
        /// The flag, e.g. `--seed`.
        flag: String,
        /// The offending token.
        value: String,
        /// What the flag expects, e.g. `a non-negative integer`.
        expected: &'static str,
    },
    /// A token was not consumed by any flag or positional.
    Unknown {
        /// The leftover token.
        token: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue { flag } => write!(f, "{flag} needs a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} {value:?} is invalid: expected {expected}"),
            ArgError::Unknown { token } => write!(f, "unrecognized argument {token:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl ArgError {
    /// Prints the error (and a hint to the binary's usage) on stderr and
    /// exits with the conventional usage status 2.
    pub fn exit(&self, usage: &str) -> ! {
        eprintln!("error: {self}");
        eprintln!("{usage}");
        std::process::exit(2);
    }
}

/// A token list that flags are *taken out of* as they are matched.
///
/// Every accessor removes what it consumed, so [`Args::finish`] can
/// report precisely the tokens nothing claimed.
#[derive(Debug, Clone)]
pub struct Args {
    /// `None` marks a consumed token; positions are stable so
    /// flag/value adjacency survives earlier takes.
    tokens: Vec<Option<String>>,
}

impl Args {
    /// Wraps an explicit token list (tests, or pre-split strings).
    #[must_use]
    pub fn new(tokens: Vec<String>) -> Args {
        Args {
            tokens: tokens.into_iter().map(Some).collect(),
        }
    }

    /// Wraps `std::env::args` minus the binary name.
    #[must_use]
    pub fn from_env() -> Args {
        Args::new(std::env::args().skip(1).collect())
    }

    /// Takes a boolean flag: `true` if present (all occurrences are
    /// consumed).
    pub fn flag(&mut self, name: &str) -> bool {
        let mut seen = false;
        for slot in &mut self.tokens {
            if slot.as_deref() == Some(name) {
                *slot = None;
                seen = true;
            }
        }
        seen
    }

    /// Takes `name VALUE`, returning the raw value if the flag is
    /// present.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] when the flag is the last token or its
    /// value was already consumed by another flag.
    pub fn value(&mut self, name: &str) -> Result<Option<String>, ArgError> {
        let Some(at) = self.tokens.iter().position(|t| t.as_deref() == Some(name)) else {
            return Ok(None);
        };
        self.tokens[at] = None;
        match self.tokens.get_mut(at + 1).and_then(Option::take) {
            Some(v) => Ok(Some(v)),
            None => Err(ArgError::MissingValue {
                flag: name.to_owned(),
            }),
        }
    }

    /// Takes `name VALUE` and parses the value.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] or [`ArgError::InvalidValue`].
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, ArgError> {
        match self.value(name)? {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| ArgError::InvalidValue {
                flag: name.to_owned(),
                value: raw,
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// [`parsed`](Args::parsed) with a default for an absent flag.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] or [`ArgError::InvalidValue`].
    pub fn parsed_or<T: std::str::FromStr>(
        &mut self,
        name: &str,
        default: T,
    ) -> Result<T, ArgError> {
        Ok(self.parsed(name)?.unwrap_or(default))
    }

    /// Takes the first remaining token that does not look like a flag —
    /// the conventional positional argument (a file path, a subcommand).
    pub fn positional(&mut self) -> Option<String> {
        self.tokens
            .iter_mut()
            .find(|t| t.as_deref().is_some_and(|s| !s.starts_with("--")))
            .and_then(Option::take)
    }

    /// Takes the standard experiment flags (`--scale`, `--samples`,
    /// `--seed`, `--threads`, `--trace N`, `--profile`) into an
    /// [`ExpOptions`], starting from its defaults.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] or [`ArgError::InvalidValue`] for any
    /// of the standard flags.
    pub fn exp_options(&mut self) -> Result<ExpOptions, ArgError> {
        let mut opts = ExpOptions::default();
        opts.scale = self.parsed_or("--scale", opts.scale)?;
        opts.samples = self.parsed_or("--samples", opts.samples)?;
        opts.seed = self.parsed_or("--seed", opts.seed)?;
        opts.threads = self.parsed_or("--threads", opts.threads)?;
        opts.trace_capacity = self.parsed("--trace")?;
        opts.profile = self.flag("--profile");
        Ok(opts)
    }

    /// Rejects anything no flag or positional consumed.
    ///
    /// # Errors
    ///
    /// [`ArgError::Unknown`] carrying the first leftover token.
    pub fn finish(self) -> Result<(), ArgError> {
        match self.tokens.into_iter().flatten().next() {
            None => Ok(()),
            Some(token) => Err(ArgError::Unknown { token }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::new(tokens.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn flags_and_values_are_consumed() {
        let mut a = args(&["--fragment", "--seed", "9", "run.jsonl"]);
        assert!(a.flag("--fragment"));
        assert!(!a.flag("--fragment"), "consumed on first take");
        assert_eq!(a.parsed::<u64>("--seed").unwrap(), Some(9));
        assert_eq!(a.positional().as_deref(), Some("run.jsonl"));
        a.finish().unwrap();
    }

    #[test]
    fn missing_value_is_typed() {
        let mut a = args(&["--seed"]);
        assert_eq!(
            a.value("--seed"),
            Err(ArgError::MissingValue {
                flag: "--seed".to_owned()
            })
        );
    }

    #[test]
    fn invalid_value_reports_flag_and_token() {
        let mut a = args(&["--scale", "huge"]);
        let err = a.parsed::<u64>("--scale").unwrap_err();
        assert!(matches!(err, ArgError::InvalidValue { .. }));
        assert!(err.to_string().contains("--scale"));
        assert!(err.to_string().contains("huge"));
    }

    #[test]
    fn leftover_tokens_fail_finish() {
        let a = args(&["--sample", "9"]);
        // A typo for --samples: nothing consumes it.
        let err = a.clone().finish().unwrap_err();
        assert_eq!(
            err,
            ArgError::Unknown {
                token: "--sample".to_owned()
            }
        );
        drop(a);
    }

    #[test]
    fn exp_options_parses_the_standard_flags() {
        let mut a = args(&[
            "--scale",
            "64",
            "--samples",
            "9000",
            "--seed",
            "7",
            "--threads",
            "3",
            "--trace",
            "512",
            "--profile",
        ]);
        let opts = a.exp_options().unwrap();
        assert_eq!(opts.scale, 64);
        assert_eq!(opts.samples, 9000);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.trace_capacity, Some(512));
        assert!(opts.profile);
        a.finish().unwrap();
    }

    #[test]
    fn exp_options_defaults_when_absent() {
        let mut a = args(&[]);
        assert_eq!(a.exp_options().unwrap(), ExpOptions::default());
    }

    #[test]
    fn positional_skips_flags() {
        let mut a = args(&["--json", "out.json", "trace.jsonl"]);
        assert_eq!(a.positional().as_deref(), Some("out.json"));
        // Positional-before-value ordering matters: take values first.
        let mut b = args(&["--json", "out.json", "trace.jsonl"]);
        assert_eq!(b.value("--json").unwrap().as_deref(), Some("out.json"));
        assert_eq!(b.positional().as_deref(), Some("trace.jsonl"));
        b.finish().unwrap();
    }
}
