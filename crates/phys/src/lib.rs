//! Physical memory model for the Trident simulator.
//!
//! The paper extends Linux's buddy allocator — which tracks free chunks only
//! up to 4MB — so that it also tracks contiguous chunks up to 1GB (§5.1.1),
//! and adds two counters per 1GB physical region (occupied page frames and
//! unmovable page frames) to drive *smart compaction* (§5.1.3). This crate
//! implements that substrate:
//!
//! * [`BuddyAllocator`] — a binary buddy allocator over base-page frames with
//!   free lists for every order from a single base page up to a giant (1GB)
//!   page, with split/coalesce and Free Memory Fragmentation Index (FMFI)
//!   reporting.
//! * [`FrameTable`] — per-frame metadata: used/free, movability, allocation
//!   unit boundaries, and the reverse mapping to the owning virtual page
//!   needed by compaction.
//! * [`RegionStats`] — the per-1GB-region free/unmovable counters that smart
//!   compaction consults to *select* (not scan for) its source and target
//!   regions.
//! * [`PhysicalMemory`] — the façade tying the three together, plus
//!   [`Fragmenter`] which reproduces the paper's methodology of fragmenting
//!   memory through page-cache churn (§3).
//!
//! # Examples
//!
//! ```
//! use trident_phys::{FrameUse, PhysicalMemory};
//! use trident_types::{PageGeometry, PageSize};
//!
//! let geo = PageGeometry::TINY;
//! let mut mem = PhysicalMemory::new(geo, 4 * geo.base_pages(geo.largest()));
//! let giant = mem.allocate(geo.largest(), FrameUse::User, None)?;
//! assert!(mem.is_unit_head(giant));
//! mem.free(giant)?;
//! # Ok::<(), trident_phys::PhysMemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod buddy;
mod error;
mod fragment;
mod frame;
mod memory;
mod region;

pub use buddy::BuddyAllocator;
pub use error::{AllocError, PhysMemError};
pub use fragment::{FragmentProfile, Fragmenter};
pub use frame::{AllocationUnit, FrameTable, FrameUse, MappingOwner};
pub use memory::PhysicalMemory;
pub use region::{RegionCounters, RegionId, RegionStats};
