//! Binary buddy allocator with free lists up to the giant-page order.
//!
//! Linux's buddy allocator tracks free chunks only up to `MAX_ORDER` = 4MB;
//! the paper extends it with separate lists for every order up to 1GB
//! (§5.1.1). Each order's free list is a packed bitmap over block start
//! frames ([`OrderList`]): allocation pops the lowest-addressed block by
//! word-scanning from a floor cursor instead of walking a tree, and ranged
//! scans let compaction allocate *within* a specific 1GB region via
//! [`BuddyAllocator::alloc_in_range`].

use std::ops::Range;

use trident_obs::{Event, Recorder};
use trident_types::{DenseBitSet, InvariantViolation};

use crate::AllocError;

/// One order's free list: a bitmap over block start frames plus a floor
/// cursor below which no block of this order starts. Insert and remove are
/// single word operations; popping the minimum scans words upward from the
/// floor, and since the floor only moves down when a block is inserted
/// there, the scan cost is bounded by cursor churn rather than list size.
#[derive(Debug, Clone)]
struct OrderList {
    blocks: DenseBitSet,
    /// No free block of this order starts below `floor`.
    floor: u64,
}

impl OrderList {
    fn new(total_pages: u64) -> OrderList {
        OrderList {
            blocks: DenseBitSet::with_capacity(total_pages),
            floor: 0,
        }
    }

    fn insert(&mut self, start: u64) {
        self.blocks.insert(start);
        self.floor = self.floor.min(start);
    }

    fn remove(&mut self, start: u64) -> bool {
        self.blocks.remove(start)
    }

    fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    /// The lowest block start, advancing the floor to it.
    fn first(&mut self, total_pages: u64) -> Option<u64> {
        let first = self.blocks.iter_range(self.floor, total_pages).next()?;
        self.floor = first;
        Some(first)
    }
}

/// A binary buddy allocator over base-page frame numbers.
///
/// Blocks of order `o` span `2^o` base pages and are always naturally
/// aligned, so a block can never straddle a giant-region boundary.
/// Allocation prefers the lowest-addressed suitable block, which keeps runs
/// deterministic.
///
/// The allocator itself does not police double-frees — that is the job of
/// the frame table in [`PhysicalMemory`](crate::PhysicalMemory), which knows
/// which frames are allocated.
///
/// # Examples
///
/// ```
/// use trident_phys::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(1024, 6);
/// let block = buddy.alloc(6)?; // one "giant" block of 64 pages
/// assert_eq!(block % 64, 0);
/// buddy.free(block, 6);
/// assert_eq!(buddy.free_pages(), 1024);
/// # Ok::<(), trident_phys::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    total_pages: u64,
    max_order: u8,
    /// `free_lists[o]` holds the start frame of every free block of order `o`.
    free_lists: Vec<OrderList>,
    free_pages: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over `total_pages` base pages with free lists up
    /// to `max_order` (the giant-page order), with all memory initially free.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages == 0` or `max_order > 48`.
    #[must_use]
    pub fn new(total_pages: u64, max_order: u8) -> BuddyAllocator {
        assert!(total_pages > 0, "physical memory cannot be empty");
        assert!(max_order <= 48, "max order is unreasonably large");
        let mut buddy = BuddyAllocator {
            total_pages,
            max_order,
            free_lists: (0..=max_order)
                .map(|_| OrderList::new(total_pages))
                .collect(),
            free_pages: 0,
        };
        // Seed with maximal naturally-aligned blocks.
        let mut page = 0;
        while page < total_pages {
            let align_order = if page == 0 {
                max_order
            } else {
                (page.trailing_zeros() as u8).min(max_order)
            };
            let mut order = align_order;
            while page + (1u64 << order) > total_pages {
                order -= 1;
            }
            buddy.free_lists[usize::from(order)].insert(page);
            buddy.free_pages += 1 << order;
            page += 1 << order;
        }
        buddy
    }

    /// Total base pages managed.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Currently free base pages.
    #[must_use]
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// The maximum tracked order.
    #[must_use]
    pub fn max_order(&self) -> u8 {
        self.max_order
    }

    /// Number of free blocks of exactly `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order > max_order`.
    #[must_use]
    pub fn free_blocks(&self, order: u8) -> usize {
        self.free_lists[usize::from(order)].len()
    }

    /// Whether a free block of at least `order` is immediately available.
    #[must_use]
    pub fn has_free(&self, order: u8) -> bool {
        (order..=self.max_order).any(|o| !self.free_lists[usize::from(o)].is_empty())
    }

    trident_obs::noop_variant! {
        /// Allocates a naturally-aligned block of `2^order` pages, returning its
        /// start frame.
        ///
        /// # Errors
        ///
        /// Returns [`AllocError`] if no free block of at least `order` exists.
        ///
        /// # Panics
        ///
        /// Panics if `order > max_order`.
        pub fn alloc => alloc_rec(&mut self, order: u8) -> Result<u64, AllocError>;
    }

    /// [`alloc`](Self::alloc), reporting a [`Event::BuddySplit`] to `rec`
    /// when the allocation had to split a larger free block.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if no free block of at least `order` exists.
    ///
    /// # Panics
    ///
    /// Panics if `order > max_order`.
    pub fn alloc_rec<R: Recorder>(&mut self, order: u8, rec: &mut R) -> Result<u64, AllocError> {
        assert!(order <= self.max_order, "order exceeds max_order");
        let found = (order..=self.max_order)
            .find(|o| !self.free_lists[usize::from(*o)].is_empty())
            .ok_or(AllocError { order })?;
        let start = self.free_lists[usize::from(found)]
            .first(self.total_pages)
            .expect("non-empty list");
        self.free_lists[usize::from(found)].remove(start);
        self.split_down(start, found, order);
        if found > order {
            rec.record(Event::BuddySplit {
                from_order: found,
                to_order: order,
            });
        }
        self.free_pages -= 1 << order;
        Ok(start)
    }

    trident_obs::noop_variant! {
        /// Allocates a block of `2^order` pages that lies entirely within
        /// `range` (frame numbers), returning its start frame.
        ///
        /// Smart compaction uses this to place migrated data inside a chosen
        /// *target* region instead of wherever the global allocator would put it.
        ///
        /// # Errors
        ///
        /// Returns [`AllocError`] if no suitably-placed block exists.
        ///
        /// # Panics
        ///
        /// Panics if `order > max_order`.
        pub fn alloc_in_range => alloc_in_range_rec(
            &mut self,
            order: u8,
            range: Range<u64>,
        ) -> Result<u64, AllocError>;
    }

    /// [`alloc_in_range`](Self::alloc_in_range), reporting a
    /// [`Event::BuddySplit`] to `rec` when a larger block was split.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if no suitably-placed block exists.
    ///
    /// # Panics
    ///
    /// Panics if `order > max_order`.
    pub fn alloc_in_range_rec<R: Recorder>(
        &mut self,
        order: u8,
        range: Range<u64>,
        rec: &mut R,
    ) -> Result<u64, AllocError> {
        assert!(order <= self.max_order, "order exceeds max_order");
        for o in order..=self.max_order {
            let candidate = self.free_lists[usize::from(o)]
                .blocks
                .iter_range(range.start, range.end)
                .find(|&start| start + (1u64 << o) <= range.end);
            if let Some(start) = candidate {
                self.free_lists[usize::from(o)].remove(start);
                self.split_down(start, o, order);
                if o > order {
                    rec.record(Event::BuddySplit {
                        from_order: o,
                        to_order: order,
                    });
                }
                self.free_pages -= 1 << order;
                return Ok(start);
            }
        }
        Err(AllocError { order })
    }

    /// Splits a free block of `from` order held by the caller down to `to`
    /// order, returning the lower half each time and freeing the upper halves.
    fn split_down(&mut self, start: u64, from: u8, to: u8) {
        let mut order = from;
        while order > to {
            order -= 1;
            self.free_lists[usize::from(order)].insert(start + (1u64 << order));
        }
    }

    trident_obs::noop_variant! {
        /// Returns a block of `2^order` pages starting at `start` to the free
        /// lists, coalescing with free buddies as far as possible.
        ///
        /// # Panics
        ///
        /// Panics (in debug builds) if `start` is not aligned to `order` or the
        /// block exceeds physical memory.
        pub fn free => free_rec(&mut self, start: u64, order: u8);
    }

    /// [`free`](Self::free), reporting a [`Event::BuddyCoalesce`] to `rec`
    /// when the freed block merged with free buddies.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `start` is not aligned to `order` or the
    /// block exceeds physical memory.
    pub fn free_rec<R: Recorder>(&mut self, start: u64, order: u8, rec: &mut R) {
        debug_assert_eq!(start % (1u64 << order), 0, "misaligned free");
        debug_assert!(
            start + (1u64 << order) <= self.total_pages,
            "free beyond end of memory"
        );
        self.free_pages += 1 << order;
        let from_order = order;
        let mut start = start;
        let mut order = order;
        while order < self.max_order {
            let buddy = start ^ (1u64 << order);
            if buddy + (1u64 << order) <= self.total_pages
                && self.free_lists[usize::from(order)].remove(buddy)
            {
                start = start.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        if order > from_order {
            rec.record(Event::BuddyCoalesce {
                from_order,
                to_order: order,
            });
        }
        self.free_lists[usize::from(order)].insert(start);
    }

    /// The Free Memory Fragmentation Index for allocations of `order`.
    ///
    /// FMFI lies between 0 (all free memory is usable for `order`-sized
    /// allocations) and 1 (none of it is). Following Ingens/HawkEye:
    ///
    /// `FMFI(j) = (free − Σ_{i ≥ j} 2^i · k_i) / free`
    ///
    /// where `k_i` is the number of free blocks of order `i`. When no memory
    /// is free at all, the index is reported as 1.0 — a request of any order
    /// would fail.
    #[must_use]
    pub fn fmfi(&self, order: u8) -> f64 {
        if self.free_pages == 0 {
            return 1.0;
        }
        let usable: u64 = (order..=self.max_order)
            .map(|o| (self.free_lists[usize::from(o)].len() as u64) << o)
            .sum();
        (self.free_pages - usable) as f64 / self.free_pages as f64
    }

    /// Iterates over the start frames of free blocks of exactly `order`.
    pub fn free_blocks_iter(&self, order: u8) -> impl Iterator<Item = u64> + '_ {
        self.free_lists[usize::from(order)].blocks.iter()
    }

    /// Whether a free block of exactly `order` starts at `start` — used to
    /// validate pre-zeroed block handles lazily.
    #[must_use]
    pub fn is_block_free(&self, start: u64, order: u8) -> bool {
        order <= self.max_order && self.free_lists[usize::from(order)].blocks.contains(start)
    }

    /// Non-panicking consistency audit: free lists must be aligned, in
    /// bounds, non-overlapping, and sum to `free_pages`. Returns every
    /// violation found rather than stopping at the first.
    ///
    /// # Errors
    ///
    /// The collected [`InvariantViolation`]s, if any invariant is broken.
    pub fn check_consistent(&self) -> Result<(), Vec<InvariantViolation>> {
        let mut violations = Vec::new();
        let mut counted = 0u64;
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (order, list) in self.free_lists.iter().enumerate() {
            for start in list.blocks.iter() {
                let len = 1u64 << order;
                if start % len != 0 {
                    violations.push(InvariantViolation::BuddyBlockMisaligned { start, pages: len });
                }
                if start + len > self.total_pages {
                    violations.push(InvariantViolation::BuddyBlockOutOfBounds {
                        start,
                        pages: len,
                        total_pages: self.total_pages,
                    });
                }
                spans.push((start, start + len));
                counted += len;
            }
        }
        if counted != self.free_pages {
            violations.push(InvariantViolation::BuddyFreeCountDrift {
                counted,
                recorded: self.free_pages,
            });
        }
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if pair[0].1 > pair[1].0 {
                violations.push(InvariantViolation::BuddyBlocksOverlap {
                    first: pair[0].0,
                    second: pair[1].0,
                });
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Internal consistency check used by tests; thin panicking wrapper
    /// over [`check_consistent`](BuddyAllocator::check_consistent).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn assert_consistent(&self) {
        if let Err(violations) = self.check_consistent() {
            panic!("{}", trident_types::violations_message(&violations));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free_and_coalesced() {
        let b = BuddyAllocator::new(256, 6);
        assert_eq!(b.free_pages(), 256);
        assert_eq!(b.free_blocks(6), 4);
        b.assert_consistent();
    }

    #[test]
    fn handles_non_power_of_two_totals() {
        let b = BuddyAllocator::new(100, 6);
        assert_eq!(b.free_pages(), 100);
        b.assert_consistent();
        // 100 = 64 + 32 + 4
        assert_eq!(b.free_blocks(6), 1);
        assert_eq!(b.free_blocks(5), 1);
        assert_eq!(b.free_blocks(2), 1);
    }

    #[test]
    fn alloc_prefers_lowest_address() {
        let mut b = BuddyAllocator::new(256, 6);
        assert_eq!(b.alloc(0).unwrap(), 0);
        assert_eq!(b.alloc(0).unwrap(), 1);
        assert_eq!(b.alloc(6).unwrap(), 64);
        b.assert_consistent();
    }

    #[test]
    fn split_and_coalesce_roundtrip() {
        let mut b = BuddyAllocator::new(64, 6);
        let p = b.alloc(0).unwrap();
        assert_eq!(b.free_blocks(6), 0);
        b.free(p, 0);
        assert_eq!(b.free_blocks(6), 1);
        b.assert_consistent();
    }

    #[test]
    fn coalescing_stops_at_used_buddy() {
        let mut b = BuddyAllocator::new(64, 6);
        let a = b.alloc(0).unwrap();
        let c = b.alloc(0).unwrap();
        assert_eq!((a, c), (0, 1));
        b.free(a, 0);
        // Buddy of page 0 at order 0 is page 1, still used: no merge.
        assert_eq!(b.free_blocks(0), 1);
        b.free(c, 0);
        assert_eq!(b.free_blocks(6), 1);
    }

    #[test]
    fn alloc_fails_when_no_contiguity() {
        let mut b = BuddyAllocator::new(8, 3);
        // Occupy every other page so no order-1 block can exist.
        let pages: Vec<u64> = (0..8).map(|_| b.alloc(0).unwrap()).collect();
        for &p in pages.iter().filter(|p| **p % 2 == 0) {
            b.free(p, 0);
        }
        assert_eq!(b.free_pages(), 4);
        assert_eq!(b.alloc(1), Err(AllocError { order: 1 }));
        assert!(b.alloc(0).is_ok());
    }

    #[test]
    fn alloc_in_range_respects_bounds() {
        let mut b = BuddyAllocator::new(256, 6);
        let got = b.alloc_in_range(0, 128..192).unwrap();
        assert!((128..192).contains(&got));
        // Range with no free blocks inside.
        let p = b.alloc_in_range(6, 192..256).unwrap();
        assert_eq!(p, 192);
        assert!(b.alloc_in_range(6, 192..256).is_err());
        b.assert_consistent();
    }

    #[test]
    fn alloc_in_range_requires_block_fully_inside() {
        let mut b = BuddyAllocator::new(256, 6);
        // Only giant blocks exist; none lies fully inside a half-region
        // range, so any request there fails — ranges are meant to be whole
        // giant regions.
        assert!(b.alloc_in_range(6, 0..32).is_err());
        assert!(b.alloc_in_range(0, 0..32).is_err());
        // A full-region range succeeds and splits in place.
        assert_eq!(b.alloc_in_range(0, 0..64).unwrap(), 0);
    }

    #[test]
    fn fmfi_tracks_fragmentation() {
        let mut b = BuddyAllocator::new(64, 6);
        assert_eq!(b.fmfi(6), 0.0);
        let pages: Vec<u64> = (0..64).map(|_| b.alloc(0).unwrap()).collect();
        assert_eq!(b.fmfi(0), 1.0); // nothing free at all
        for &p in pages.iter().filter(|p| **p % 2 == 1) {
            b.free(p, 0);
        }
        // 32 pages free, none usable at order >= 1.
        assert_eq!(b.fmfi(1), 1.0);
        assert_eq!(b.fmfi(0), 0.0);
    }

    #[test]
    fn stress_roundtrip_restores_full_coalescing() {
        let mut b = BuddyAllocator::new(4 << 12, 12);
        let mut held = Vec::new();
        for order in [0u8, 3, 5, 0, 9, 1, 12, 0, 7] {
            held.push((b.alloc(order).unwrap(), order));
        }
        b.assert_consistent();
        // Free in a scrambled order.
        held.swap(0, 8);
        held.swap(2, 5);
        for (start, order) in held {
            b.free(start, order);
        }
        assert_eq!(b.free_blocks(12), 4);
        assert_eq!(b.free_pages(), 4 << 12);
        b.assert_consistent();
    }
}
