//! Per-1GB-region occupancy counters for smart compaction.
//!
//! §5.1.3 of the paper: *"we first introduced two counters for each 1GB
//! physical memory region. One counter tracks the number of free page
//! frames, and the other one tracks the number of unmovable pages within a
//! region."* Smart compaction *selects* its source (emptiest, movable-only)
//! and target (fullest) regions from these counters instead of scanning
//! physical memory.

use trident_types::PageGeometry;

/// Index of a giant-page-sized physical region.
pub type RegionId = u64;

/// The two per-region counters the paper introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionCounters {
    /// Free base pages in the region.
    pub free_pages: u64,
    /// Unmovable (kernel-owned) base pages in the region.
    pub unmovable_pages: u64,
}

/// Occupancy statistics for every giant region of physical memory.
///
/// # Examples
///
/// ```
/// use trident_phys::RegionStats;
/// use trident_types::PageGeometry;
///
/// let geo = PageGeometry::TINY;
/// let mut stats = RegionStats::new(geo, 2 * geo.base_pages(geo.largest()));
/// stats.on_alloc(0, 8, false);
/// assert_eq!(stats.counters(0).free_pages, geo.base_pages(geo.largest()) - 8);
/// ```
#[derive(Debug, Clone)]
pub struct RegionStats {
    geo: PageGeometry,
    region_pages: u64,
    total_pages: u64,
    counters: Vec<RegionCounters>,
}

impl RegionStats {
    /// Creates statistics for a physical memory of `total_pages` base pages,
    /// all free.
    ///
    /// The trailing partial region (if `total_pages` is not a multiple of
    /// the giant size) is tracked too, with a proportionally smaller free
    /// count.
    #[must_use]
    pub fn new(geo: PageGeometry, total_pages: u64) -> RegionStats {
        let region_pages = geo.base_pages(geo.largest());
        let regions = total_pages.div_ceil(region_pages);
        let mut counters = Vec::with_capacity(usize::try_from(regions).expect("fits usize"));
        let mut remaining = total_pages;
        for _ in 0..regions {
            let here = remaining.min(region_pages);
            counters.push(RegionCounters {
                free_pages: here,
                unmovable_pages: 0,
            });
            remaining -= here;
        }
        RegionStats {
            geo,
            region_pages,
            total_pages,
            counters,
        }
    }

    /// Base pages actually covered by `region` (smaller than
    /// [`RegionStats::region_pages`] only for a trailing partial region).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn capacity(&self, region: RegionId) -> u64 {
        assert!(region < self.region_count(), "region out of range");
        let start = self.geo.giant_region_start(region);
        self.region_pages.min(self.total_pages - start)
    }

    /// Number of giant regions tracked.
    #[must_use]
    pub fn region_count(&self) -> u64 {
        self.counters.len() as u64
    }

    /// Base pages per (full) region.
    #[must_use]
    pub fn region_pages(&self) -> u64 {
        self.region_pages
    }

    /// The counters of `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn counters(&self, region: RegionId) -> RegionCounters {
        self.counters[usize::try_from(region).expect("fits usize")]
    }

    /// Frame-number range covered by `region`.
    #[must_use]
    pub fn region_range(&self, region: RegionId) -> core::ops::Range<u64> {
        let start = self.geo.giant_region_start(region);
        start..start + self.region_pages
    }

    /// Records an allocation of `count` base pages starting at frame
    /// `start`.
    pub fn on_alloc(&mut self, start: u64, count: u64, unmovable: bool) {
        self.apply(start, count, |c, n| {
            c.free_pages -= n;
            if unmovable {
                c.unmovable_pages += n;
            }
        });
    }

    /// Records a free of `count` base pages starting at frame `start`.
    /// `unmovable` must match the allocation.
    pub fn on_free(&mut self, start: u64, count: u64, unmovable: bool) {
        self.apply(start, count, |c, n| {
            c.free_pages += n;
            if unmovable {
                c.unmovable_pages -= n;
            }
        });
    }

    fn apply(&mut self, start: u64, count: u64, f: impl Fn(&mut RegionCounters, u64)) {
        let mut page = start;
        let mut left = count;
        while left > 0 {
            let region = self.geo.giant_region_of(page);
            let region_end = self.geo.giant_region_start(region) + self.region_pages;
            let here = left.min(region_end - page);
            f(
                &mut self.counters[usize::try_from(region).expect("fits usize")],
                here,
            );
            page += here;
            left -= here;
        }
    }

    /// Regions eligible as compaction *sources*, best first: no unmovable
    /// pages, at least one used page (a fully-free region needs no work),
    /// and full giant-page capacity (a trailing partial region can never
    /// coalesce into a giant block) — ordered by most free pages first so
    /// that freeing them copies the fewest bytes.
    #[must_use]
    pub fn source_candidates(&self) -> Vec<RegionId> {
        let mut v: Vec<(u64, RegionId)> = self
            .counters
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                c.unmovable_pages == 0
                    && c.free_pages < self.region_pages
                    && self.capacity(*i as RegionId) == self.region_pages
            })
            .map(|(i, c)| (c.free_pages, i as RegionId))
            .collect();
        // Most free first; ties broken by lowest region id for determinism.
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Regions eligible as compaction *targets*, best first: some free
    /// space, ordered by least free pages first (fill the fullest regions),
    /// excluding `exclude`.
    #[must_use]
    pub fn target_candidates(&self, exclude: RegionId) -> Vec<RegionId> {
        let mut v: Vec<(u64, RegionId)> = self
            .counters
            .iter()
            .enumerate()
            .map(|(i, c)| (c.free_pages, i as RegionId))
            .filter(|(free, id)| *id != exclude && *free > 0)
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Total free pages across all regions (consistency aid for tests).
    #[must_use]
    pub fn total_free(&self) -> u64 {
        self.counters.iter().map(|c| c.free_pages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RegionStats {
        let geo = PageGeometry::TINY; // 64-page giant regions
        RegionStats::new(geo, 4 * 64)
    }

    #[test]
    fn fresh_regions_are_fully_free() {
        let s = stats();
        assert_eq!(s.region_count(), 4);
        for r in 0..4 {
            assert_eq!(
                s.counters(r),
                RegionCounters {
                    free_pages: 64,
                    unmovable_pages: 0
                }
            );
        }
    }

    #[test]
    fn alloc_free_updates_counters() {
        let mut s = stats();
        s.on_alloc(10, 4, false);
        assert_eq!(s.counters(0).free_pages, 60);
        s.on_alloc(70, 2, true);
        assert_eq!(s.counters(1).unmovable_pages, 2);
        s.on_free(10, 4, false);
        s.on_free(70, 2, true);
        assert_eq!(s.total_free(), 4 * 64);
        assert_eq!(s.counters(1).unmovable_pages, 0);
    }

    #[test]
    fn spanning_updates_split_across_regions() {
        let mut s = stats();
        // 8 pages starting 4 before a region boundary.
        s.on_alloc(60, 8, false);
        assert_eq!(s.counters(0).free_pages, 60);
        assert_eq!(s.counters(1).free_pages, 60);
    }

    #[test]
    fn source_prefers_emptiest_movable_region() {
        let mut s = stats();
        s.on_alloc(0, 60, false); // region 0: 4 free
        s.on_alloc(64, 8, false); // region 1: 56 free
        s.on_alloc(128, 8, true); // region 2: unmovable -> excluded
                                  // region 3 fully free -> excluded
        assert_eq!(s.source_candidates(), vec![1, 0]);
    }

    #[test]
    fn target_prefers_fullest_region_with_space() {
        let mut s = stats();
        s.on_alloc(0, 60, false); // region 0: 4 free
        s.on_alloc(64, 64, false); // region 1: full -> excluded
        s.on_alloc(128, 8, false); // region 2: 56 free
        assert_eq!(s.target_candidates(2), vec![0, 3]);
        assert_eq!(s.target_candidates(99), vec![0, 2, 3]);
    }

    #[test]
    fn partial_trailing_region_is_tracked() {
        let geo = PageGeometry::TINY;
        let s = RegionStats::new(geo, 64 + 16);
        assert_eq!(s.region_count(), 2);
        assert_eq!(s.counters(1).free_pages, 16);
    }
}
