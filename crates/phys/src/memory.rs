//! The physical-memory façade: buddy + frame table + region statistics.

use trident_obs::Recorder;
use trident_types::{InvariantViolation, PageGeometry, PageSize, Pfn};

use crate::{
    AllocationUnit, BuddyAllocator, FrameTable, FrameUse, MappingOwner, PhysMemError, RegionId,
    RegionStats,
};

/// The simulated machine's physical memory.
///
/// All allocation and freeing must go through this type so that the buddy
/// lists, the per-frame metadata and the per-region counters stay mutually
/// consistent — mirroring how the paper hooks Linux's buddy allocator to
/// maintain its new region counters on every allocation and free.
///
/// # Examples
///
/// ```
/// use trident_phys::{FrameUse, PhysicalMemory};
/// use trident_types::{PageGeometry, PageSize};
///
/// let geo = PageGeometry::TINY;
/// let mut mem = PhysicalMemory::new(geo, 2 * geo.base_pages(geo.largest()));
/// let huge = PageSize::new(1);
/// let head = mem.allocate(huge, FrameUse::User, None)?;
/// assert_eq!(mem.free_pages(), mem.total_pages() - geo.base_pages(huge));
/// mem.free(head)?;
/// # Ok::<(), trident_phys::PhysMemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    geo: PageGeometry,
    buddy: BuddyAllocator,
    frames: FrameTable,
    regions: RegionStats,
}

impl PhysicalMemory {
    /// Creates a physical memory of `total_pages` base pages, all free.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages == 0`.
    #[must_use]
    pub fn new(geo: PageGeometry, total_pages: u64) -> PhysicalMemory {
        PhysicalMemory {
            geo,
            buddy: BuddyAllocator::new(total_pages, geo.max_order()),
            frames: FrameTable::new(total_pages),
            regions: RegionStats::new(geo, total_pages),
        }
    }

    /// Creates a physical memory of at least `bytes` bytes.
    #[must_use]
    pub fn with_bytes(geo: PageGeometry, bytes: u64) -> PhysicalMemory {
        PhysicalMemory::new(geo, geo.pages_for_bytes(bytes))
    }

    /// The configured geometry.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    /// Total base pages.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.buddy.total_pages()
    }

    /// Free base pages.
    #[must_use]
    pub fn free_pages(&self) -> u64 {
        self.buddy.free_pages()
    }

    /// Free fraction of memory, in `[0, 1]`.
    #[must_use]
    pub fn free_fraction(&self) -> f64 {
        self.free_pages() as f64 / self.total_pages() as f64
    }

    /// Whether a free chunk for a page of `size` is immediately available.
    #[must_use]
    pub fn has_free(&self, size: PageSize) -> bool {
        self.buddy.has_free(self.geo.order(size))
    }

    /// The Free Memory Fragmentation Index for allocations of `size`.
    /// See [`BuddyAllocator::fmfi`].
    #[must_use]
    pub fn fmfi(&self, size: PageSize) -> f64 {
        self.buddy.fmfi(self.geo.order(size))
    }

    trident_obs::noop_variant! {
        /// Allocates one page of `size`, returning its head frame.
        ///
        /// # Errors
        ///
        /// Returns [`PhysMemError::OutOfContiguousMemory`] when no contiguous
        /// chunk of that size exists — the condition that makes Trident fall
        /// back to a smaller page size or invoke compaction.
        pub fn allocate => allocate_rec(
            &mut self,
            size: PageSize,
            use_: FrameUse,
            owner: Option<MappingOwner>,
        ) -> Result<Pfn, PhysMemError>;
    }

    /// [`allocate`](Self::allocate), reporting buddy split events to `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysMemError::OutOfContiguousMemory`] when no contiguous
    /// chunk of that size exists.
    pub fn allocate_rec<R: Recorder>(
        &mut self,
        size: PageSize,
        use_: FrameUse,
        owner: Option<MappingOwner>,
        rec: &mut R,
    ) -> Result<Pfn, PhysMemError> {
        self.allocate_order_rec(self.geo.order(size), use_, owner, rec)
    }

    trident_obs::noop_variant! {
        /// Allocates a raw buddy block of `2^order` frames (used by the
        /// fragmenter, which churns sub-huge-page chunks like the page cache
        /// does).
        ///
        /// # Errors
        ///
        /// Returns [`PhysMemError::OutOfContiguousMemory`] when no block of
        /// `order` exists.
        pub fn allocate_order => allocate_order_rec(
            &mut self,
            order: u8,
            use_: FrameUse,
            owner: Option<MappingOwner>,
        ) -> Result<Pfn, PhysMemError>;
    }

    /// [`allocate_order`](Self::allocate_order), reporting buddy split
    /// events to `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysMemError::OutOfContiguousMemory`] when no block of
    /// `order` exists.
    pub fn allocate_order_rec<R: Recorder>(
        &mut self,
        order: u8,
        use_: FrameUse,
        owner: Option<MappingOwner>,
        rec: &mut R,
    ) -> Result<Pfn, PhysMemError> {
        let start = self.buddy.alloc_rec(order, rec)?;
        self.finish_alloc(start, order, use_, owner);
        Ok(Pfn::new(start))
    }

    trident_obs::noop_variant! {
        /// Allocates a block of `2^order` frames entirely inside `region` —
        /// how smart compaction steers migrated data into its chosen target
        /// region.
        ///
        /// # Errors
        ///
        /// Returns [`PhysMemError::OutOfContiguousMemory`] when the region has
        /// no suitably-sized free block.
        pub fn allocate_in_region => allocate_in_region_rec(
            &mut self,
            region: RegionId,
            order: u8,
            use_: FrameUse,
            owner: Option<MappingOwner>,
        ) -> Result<Pfn, PhysMemError>;
    }

    /// [`allocate_in_region`](Self::allocate_in_region), reporting buddy
    /// split events to `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysMemError::OutOfContiguousMemory`] when the region has
    /// no suitably-sized free block.
    pub fn allocate_in_region_rec<R: Recorder>(
        &mut self,
        region: RegionId,
        order: u8,
        use_: FrameUse,
        owner: Option<MappingOwner>,
        rec: &mut R,
    ) -> Result<Pfn, PhysMemError> {
        let range = self.regions.region_range(region);
        let end = range.end.min(self.total_pages());
        let start = self
            .buddy
            .alloc_in_range_rec(order, range.start..end, rec)?;
        self.finish_alloc(start, order, use_, owner);
        Ok(Pfn::new(start))
    }

    fn finish_alloc(&mut self, start: u64, order: u8, use_: FrameUse, owner: Option<MappingOwner>) {
        self.frames
            .mark_allocated(Pfn::new(start), order, use_, owner);
        self.regions.on_alloc(start, 1 << order, !use_.is_movable());
    }

    trident_obs::noop_variant! {
        /// Frees the allocation unit headed at `head`, returning its
        /// description.
        ///
        /// # Errors
        ///
        /// Returns [`PhysMemError::NotAUnitHead`] if `head` does not identify a
        /// live allocation unit, or [`PhysMemError::FrameOutOfBounds`] if it is
        /// outside memory.
        pub fn free => free_rec(&mut self, head: Pfn) -> Result<AllocationUnit, PhysMemError>;
    }

    /// [`free`](Self::free), reporting buddy coalesce events to `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysMemError::NotAUnitHead`] if `head` does not identify a
    /// live allocation unit, or [`PhysMemError::FrameOutOfBounds`] if it is
    /// outside memory.
    pub fn free_rec<R: Recorder>(
        &mut self,
        head: Pfn,
        rec: &mut R,
    ) -> Result<AllocationUnit, PhysMemError> {
        if head.raw() >= self.total_pages() {
            return Err(PhysMemError::FrameOutOfBounds { pfn: head.raw() });
        }
        let unit = self
            .frames
            .unit_at(head)
            .ok_or(PhysMemError::NotAUnitHead { pfn: head.raw() })?;
        self.frames.mark_freed(head);
        self.regions
            .on_free(head.raw(), unit.pages(), !unit.use_.is_movable());
        self.buddy.free_rec(head.raw(), unit.order, rec);
        Ok(unit)
    }

    /// The allocation unit headed at `head`, if any.
    #[must_use]
    pub fn unit_at(&self, head: Pfn) -> Option<AllocationUnit> {
        self.frames.unit_at(head)
    }

    /// Whether `pfn` is the head of a live allocation unit.
    #[must_use]
    pub fn is_unit_head(&self, pfn: Pfn) -> bool {
        self.frames.is_unit_head(pfn)
    }

    /// Updates the reverse-map owner of the unit headed at `head`.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not a unit head.
    pub fn set_owner(&mut self, head: Pfn, owner: Option<MappingOwner>) {
        self.frames.set_owner(head, owner);
    }

    /// Enumerates live allocation units whose head lies in `region`.
    #[must_use]
    pub fn units_in_region(&self, region: RegionId) -> Vec<AllocationUnit> {
        let range = self.regions.region_range(region);
        let end = range.end.min(self.total_pages());
        self.frames.units_in(Pfn::new(range.start), Pfn::new(end))
    }

    /// Read access to the per-region counters.
    #[must_use]
    pub fn regions(&self) -> &RegionStats {
        &self.regions
    }

    /// Read access to the buddy allocator (free-list statistics).
    #[must_use]
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Read access to the frame table.
    #[must_use]
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Non-panicking consistency audit: the buddy allocator's own
    /// invariants plus agreement between buddy and region free counts.
    ///
    /// # Errors
    ///
    /// The collected [`InvariantViolation`]s, if any invariant is broken.
    pub fn check_consistent(&self) -> Result<(), Vec<InvariantViolation>> {
        let mut violations = match self.buddy.check_consistent() {
            Ok(()) => Vec::new(),
            Err(v) => v,
        };
        if self.buddy.free_pages() != self.regions.total_free() {
            violations.push(InvariantViolation::FreeCountMismatch {
                buddy_free: self.buddy.free_pages(),
                region_free: self.regions.total_free(),
            });
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Internal consistency check for tests; thin panicking wrapper over
    /// [`check_consistent`](PhysicalMemory::check_consistent).
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_consistent(&self) {
        if let Err(violations) = self.check_consistent() {
            panic!("{}", trident_types::violations_message(&violations));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::{AsId, Vpn};

    fn mem() -> PhysicalMemory {
        PhysicalMemory::new(PageGeometry::TINY, 4 * 64)
    }

    #[test]
    fn allocate_updates_all_three_structures() {
        let mut m = mem();
        let owner = MappingOwner {
            asid: AsId::new(1),
            vpn: Vpn::new(0),
        };
        let head = m
            .allocate(PageSize::new(1), FrameUse::User, Some(owner))
            .unwrap();
        assert_eq!(m.free_pages(), 4 * 64 - 8);
        assert_eq!(m.unit_at(head).unwrap().owner, Some(owner));
        assert_eq!(m.regions().counters(0).free_pages, 64 - 8);
        m.assert_consistent();
    }

    #[test]
    fn free_restores_everything() {
        let mut m = mem();
        let head = m.allocate(PageSize::new(2), FrameUse::User, None).unwrap();
        let unit = m.free(head).unwrap();
        assert_eq!(unit.pages(), 64);
        assert_eq!(m.free_pages(), 4 * 64);
        assert_eq!(m.regions().counters(0).free_pages, 64);
        m.assert_consistent();
    }

    #[test]
    fn double_free_is_an_error() {
        let mut m = mem();
        let head = m.allocate(PageSize::BASE, FrameUse::User, None).unwrap();
        m.free(head).unwrap();
        assert_eq!(
            m.free(head),
            Err(PhysMemError::NotAUnitHead { pfn: head.raw() })
        );
    }

    #[test]
    fn free_out_of_bounds_is_an_error() {
        let mut m = mem();
        assert_eq!(
            m.free(Pfn::new(10_000)),
            Err(PhysMemError::FrameOutOfBounds { pfn: 10_000 })
        );
    }

    #[test]
    fn exhaustion_reports_out_of_contiguous_memory() {
        let mut m = PhysicalMemory::new(PageGeometry::TINY, 64);
        m.allocate(PageSize::new(2), FrameUse::User, None).unwrap();
        let err = m
            .allocate(PageSize::BASE, FrameUse::User, None)
            .unwrap_err();
        assert!(matches!(err, PhysMemError::OutOfContiguousMemory(_)));
    }

    #[test]
    fn allocate_in_region_lands_in_region() {
        let mut m = mem();
        let head = m.allocate_in_region(2, 3, FrameUse::User, None).unwrap();
        assert_eq!(m.geometry().giant_region_of(head.raw()), 2);
        assert_eq!(m.regions().counters(2).free_pages, 64 - 8);
    }

    #[test]
    fn kernel_allocations_poison_region_counters() {
        let mut m = mem();
        m.allocate(PageSize::BASE, FrameUse::Kernel, None).unwrap();
        assert_eq!(m.regions().counters(0).unmovable_pages, 1);
        assert!(m.regions().source_candidates().is_empty());
    }

    #[test]
    fn units_in_region_sees_only_that_region() {
        let mut m = mem();
        let a = m.allocate_in_region(0, 0, FrameUse::User, None).unwrap();
        let b = m.allocate_in_region(1, 0, FrameUse::User, None).unwrap();
        let units0 = m.units_in_region(0);
        assert_eq!(units0.len(), 1);
        assert_eq!(units0[0].head, a);
        assert_eq!(m.units_in_region(1)[0].head, b);
        assert!(m.units_in_region(3).is_empty());
    }

    #[test]
    fn fmfi_surface_matches_buddy() {
        let mut m = mem();
        assert_eq!(m.fmfi(PageSize::new(2)), 0.0);
        // Take all giant blocks; giant FMFI becomes 1.
        for _ in 0..4 {
            m.allocate(PageSize::new(2), FrameUse::User, None).unwrap();
        }
        assert_eq!(m.fmfi(PageSize::new(2)), 1.0);
    }
}
