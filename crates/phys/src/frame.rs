//! Per-frame metadata and the reverse mapping.
//!
//! Compaction must know, for every physical frame, whether it is used,
//! whether its contents can be moved, where its allocation unit begins, and
//! which virtual page maps it (so the page tables can be updated after
//! migration). The [`FrameTable`] stores a compact two-byte record per
//! frame; the frame's *use* is packed into the record's flag bits, the set
//! of unit heads is a packed bitmap (so ranged unit enumeration skips free
//! space a word at a time), and reverse-map owners live in per-region
//! slabs allocated lazily — no hash maps on the allocation hot path.

use trident_types::{AsId, DenseBitSet, Pfn, Vpn};

/// What a physical frame is used for. Determines movability: kernel frames
/// are unmovable and poison their 1GB region for compaction (§5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameUse {
    /// Anonymous user memory; movable via migration.
    User,
    /// Page-cache contents; movable (and reclaimable). The fragmentation
    /// methodology of §3 churns these.
    PageCache,
    /// Kernel objects (inodes, DMA buffers, page tables); unmovable.
    Kernel,
}

impl FrameUse {
    /// Whether frames of this use can be migrated by compaction.
    #[must_use]
    pub fn is_movable(self) -> bool {
        !matches!(self, FrameUse::Kernel)
    }

    fn code(self) -> u8 {
        match self {
            FrameUse::User => 0,
            FrameUse::PageCache => 1,
            FrameUse::Kernel => 2,
        }
    }

    fn from_code(code: u8) -> FrameUse {
        match code {
            0 => FrameUse::User,
            1 => FrameUse::PageCache,
            _ => FrameUse::Kernel,
        }
    }
}

/// The virtual mapping that owns an allocation unit — the reverse map entry
/// compaction follows to fix up page tables after moving data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MappingOwner {
    /// Address space of the owning process.
    pub asid: AsId,
    /// First virtual page of the mapping.
    pub vpn: Vpn,
}

/// A contiguous allocation unit as recorded in the frame table: one buddy
/// block handed out by a single allocation call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationUnit {
    /// First frame of the unit.
    pub head: Pfn,
    /// Buddy order (`2^order` base pages).
    pub order: u8,
    /// What the unit is used for.
    pub use_: FrameUse,
    /// Reverse-map entry, if the caller registered one.
    pub owner: Option<MappingOwner>,
}

impl AllocationUnit {
    /// Number of base pages in the unit.
    #[must_use]
    pub fn pages(&self) -> u64 {
        1 << self.order
    }
}

const FLAG_USED: u8 = 1 << 0;
const FLAG_UNMOVABLE: u8 = 1 << 1;
const FLAG_HEAD: u8 = 1 << 2;
/// Set on a head frame whose owner slab slot holds a live reverse-map
/// entry; cleared slots make stale slab contents unreachable.
const FLAG_HAS_OWNER: u8 = 1 << 3;
const USE_SHIFT: u8 = 4;
const USE_MASK: u8 = 0b11 << USE_SHIFT;

/// Frames per owner-slab region. Slabs materialize only for regions that
/// actually register owners, so page-cache/kernel churn costs nothing.
const OWNER_REGION: usize = 1024;

/// Compact per-frame record: flag bits (including the packed use code)
/// plus the unit order (valid on heads).
#[derive(Debug, Clone, Copy, Default)]
struct FrameInfo {
    flags: u8,
    order: u8,
}

impl FrameInfo {
    fn is_used(self) -> bool {
        self.flags & FLAG_USED != 0
    }
    fn is_head(self) -> bool {
        self.flags & FLAG_HEAD != 0
    }
    fn is_unmovable(self) -> bool {
        self.flags & FLAG_UNMOVABLE != 0
    }
    fn has_owner(self) -> bool {
        self.flags & FLAG_HAS_OWNER != 0
    }
    fn use_(self) -> FrameUse {
        FrameUse::from_code((self.flags & USE_MASK) >> USE_SHIFT)
    }
}

/// One reverse-map slab slot; valid only when the head frame carries
/// `FLAG_HAS_OWNER`.
#[derive(Debug, Clone, Copy, Default)]
struct OwnerSlot {
    asid: u32,
    vpn: u64,
}

/// Metadata for every physical frame, with unit-granularity bookkeeping.
///
/// # Examples
///
/// ```
/// use trident_phys::{FrameTable, FrameUse};
/// use trident_types::Pfn;
///
/// let mut table = FrameTable::new(64);
/// table.mark_allocated(Pfn::new(8), 3, FrameUse::User, None);
/// assert!(table.is_unit_head(Pfn::new(8)));
/// assert!(table.is_used(Pfn::new(15)));
/// assert!(!table.is_used(Pfn::new(16)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameTable {
    frames: Vec<FrameInfo>,
    /// Unit heads as a packed bitmap — ranged enumeration skips free and
    /// tail frames a word at a time.
    heads: DenseBitSet,
    /// Lazily-allocated per-region reverse-map slabs, indexed by
    /// `pfn / OWNER_REGION` then `pfn % OWNER_REGION`.
    owners: Vec<Option<Box<[OwnerSlot]>>>,
}

impl FrameTable {
    /// Creates a table for `total_pages` frames, all free.
    #[must_use]
    pub fn new(total_pages: u64) -> FrameTable {
        let total = usize::try_from(total_pages).expect("fits usize");
        FrameTable {
            frames: vec![FrameInfo::default(); total],
            heads: DenseBitSet::with_capacity(total_pages),
            owners: vec![None; total.div_ceil(OWNER_REGION)],
        }
    }

    /// Number of frames tracked.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.frames.len() as u64
    }

    fn idx(&self, pfn: Pfn) -> usize {
        usize::try_from(pfn.raw()).expect("fits usize")
    }

    fn owner_slot(&self, idx: usize) -> Option<&OwnerSlot> {
        self.owners[idx / OWNER_REGION]
            .as_ref()
            .map(|slab| &slab[idx % OWNER_REGION])
    }

    fn owner_slot_mut(&mut self, idx: usize) -> &mut OwnerSlot {
        let slab = self.owners[idx / OWNER_REGION]
            .get_or_insert_with(|| vec![OwnerSlot::default(); OWNER_REGION].into_boxed_slice());
        &mut slab[idx % OWNER_REGION]
    }

    /// Records a freshly-allocated unit of `2^order` frames starting at
    /// `head`.
    ///
    /// # Panics
    ///
    /// Panics if any frame in the unit is already used or out of bounds.
    pub fn mark_allocated(
        &mut self,
        head: Pfn,
        order: u8,
        use_: FrameUse,
        owner: Option<MappingOwner>,
    ) {
        let start = self.idx(head);
        let len = 1usize << order;
        assert!(start + len <= self.frames.len(), "unit out of bounds");
        let mut flags = FLAG_USED | (use_.code() << USE_SHIFT);
        if !use_.is_movable() {
            flags |= FLAG_UNMOVABLE;
        }
        for (i, frame) in self.frames[start..start + len].iter_mut().enumerate() {
            assert!(!frame.is_used(), "frame {} double-allocated", start + i);
            frame.flags = flags;
            frame.order = order;
        }
        self.frames[start].flags |= FLAG_HEAD;
        self.heads.insert(head.raw());
        if let Some(owner) = owner {
            self.frames[start].flags |= FLAG_HAS_OWNER;
            *self.owner_slot_mut(start) = OwnerSlot {
                asid: owner.asid.raw(),
                vpn: owner.vpn.raw(),
            };
        }
    }

    /// Clears a previously-allocated unit, returning its description.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not the head of a used unit.
    pub fn mark_freed(&mut self, head: Pfn) -> AllocationUnit {
        let unit = self.unit_at(head).expect("mark_freed requires a unit head");
        let start = self.idx(head);
        for frame in &mut self.frames[start..start + (1usize << unit.order)] {
            *frame = FrameInfo::default();
        }
        self.heads.remove(head.raw());
        unit
    }

    /// Whether `pfn` is currently part of any allocation unit.
    #[must_use]
    pub fn is_used(&self, pfn: Pfn) -> bool {
        self.frames.get(self.idx(pfn)).is_some_and(|f| f.is_used())
    }

    /// Whether `pfn` holds unmovable (kernel) contents.
    #[must_use]
    pub fn is_unmovable(&self, pfn: Pfn) -> bool {
        self.frames
            .get(self.idx(pfn))
            .is_some_and(|f| f.is_unmovable())
    }

    /// Whether `pfn` is the head of an allocation unit.
    #[must_use]
    pub fn is_unit_head(&self, pfn: Pfn) -> bool {
        self.frames.get(self.idx(pfn)).is_some_and(|f| f.is_head())
    }

    /// The unit whose head is `pfn`, if `pfn` is a head.
    #[must_use]
    pub fn unit_at(&self, pfn: Pfn) -> Option<AllocationUnit> {
        let idx = self.idx(pfn);
        let info = *self.frames.get(idx)?;
        if !info.is_head() {
            return None;
        }
        Some(AllocationUnit {
            head: pfn,
            order: info.order,
            use_: info.use_(),
            owner: self.read_owner(idx, info),
        })
    }

    fn read_owner(&self, idx: usize, info: FrameInfo) -> Option<MappingOwner> {
        if !info.has_owner() {
            return None;
        }
        let slot = self.owner_slot(idx).expect("owner flag implies slab");
        Some(MappingOwner {
            asid: AsId::new(slot.asid),
            vpn: Vpn::new(slot.vpn),
        })
    }

    /// The head frame of the unit containing `pfn`, if used.
    #[must_use]
    pub fn head_of(&self, pfn: Pfn) -> Option<Pfn> {
        let info = *self.frames.get(self.idx(pfn))?;
        if !info.is_used() {
            return None;
        }
        // Heads are naturally aligned to the unit order.
        let head = pfn.raw() & !((1u64 << info.order) - 1);
        Some(Pfn::new(head))
    }

    /// Updates (or clears) the reverse-map owner of the unit headed at
    /// `head`.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not a unit head.
    pub fn set_owner(&mut self, head: Pfn, owner: Option<MappingOwner>) {
        assert!(self.is_unit_head(head), "set_owner requires a unit head");
        let idx = self.idx(head);
        match owner {
            Some(o) => {
                self.frames[idx].flags |= FLAG_HAS_OWNER;
                *self.owner_slot_mut(idx) = OwnerSlot {
                    asid: o.asid.raw(),
                    vpn: o.vpn.raw(),
                };
            }
            None => {
                self.frames[idx].flags &= !FLAG_HAS_OWNER;
            }
        }
    }

    /// The reverse-map owner of the unit headed at `head`, if any.
    #[must_use]
    pub fn owner(&self, head: Pfn) -> Option<MappingOwner> {
        let idx = self.idx(head);
        self.frames
            .get(idx)
            .and_then(|info| self.read_owner(idx, *info))
    }

    /// Enumerates the allocation units whose head lies in `[start, end)`.
    ///
    /// Units are naturally aligned, so every unit overlapping a giant region
    /// has its head inside it; this is exactly the set compaction must
    /// migrate to free the region.
    ///
    /// Allocates a fresh `Vec` per call; steady-state callers should prefer
    /// [`FrameTable::units_in_into`].
    pub fn units_in(&self, start: Pfn, end: Pfn) -> Vec<AllocationUnit> {
        let mut out = Vec::new();
        self.units_in_into(start, end, &mut out);
        out
    }

    /// Enumerates the allocation units whose head lies in `[start, end)`
    /// into `out` (cleared first), reusing the buffer's storage and
    /// skipping headless stretches a bitmap word at a time.
    pub fn units_in_into(&self, start: Pfn, end: Pfn, out: &mut Vec<AllocationUnit>) {
        out.clear();
        for head in self.heads.iter_range(start.raw(), end.raw()) {
            out.push(
                self.unit_at(Pfn::new(head))
                    .expect("head bitmap implies unit exists"),
            );
        }
    }

    /// Counts used frames in `[start, end)`.
    #[must_use]
    pub fn used_in(&self, start: Pfn, end: Pfn) -> u64 {
        self.heads
            .iter_range(start.raw(), end.raw())
            .map(|head| 1u64 << self.frames[usize::try_from(head).expect("fits usize")].order)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_free_roundtrip() {
        let mut t = FrameTable::new(32);
        let owner = MappingOwner {
            asid: AsId::new(1),
            vpn: Vpn::new(100),
        };
        t.mark_allocated(Pfn::new(8), 3, FrameUse::User, Some(owner));
        let unit = t.unit_at(Pfn::new(8)).unwrap();
        assert_eq!(unit.pages(), 8);
        assert_eq!(unit.owner, Some(owner));
        assert_eq!(unit.use_, FrameUse::User);
        let freed = t.mark_freed(Pfn::new(8));
        assert_eq!(freed, unit);
        assert!(!t.is_used(Pfn::new(8)));
        assert!(t.owner(Pfn::new(8)).is_none());
    }

    #[test]
    fn head_of_finds_unit_start() {
        let mut t = FrameTable::new(32);
        t.mark_allocated(Pfn::new(16), 4, FrameUse::PageCache, None);
        assert_eq!(t.head_of(Pfn::new(23)), Some(Pfn::new(16)));
        assert_eq!(t.head_of(Pfn::new(3)), None);
    }

    #[test]
    fn kernel_frames_are_unmovable() {
        let mut t = FrameTable::new(8);
        t.mark_allocated(Pfn::new(0), 1, FrameUse::Kernel, None);
        assert!(t.is_unmovable(Pfn::new(0)));
        assert!(t.is_unmovable(Pfn::new(1)));
        t.mark_allocated(Pfn::new(2), 0, FrameUse::User, None);
        assert!(!t.is_unmovable(Pfn::new(2)));
        assert!(FrameUse::PageCache.is_movable());
        assert!(!FrameUse::Kernel.is_movable());
    }

    #[test]
    fn units_in_enumerates_heads_only() {
        let mut t = FrameTable::new(64);
        t.mark_allocated(Pfn::new(0), 3, FrameUse::User, None);
        t.mark_allocated(Pfn::new(8), 0, FrameUse::Kernel, None);
        t.mark_allocated(Pfn::new(32), 5, FrameUse::User, None);
        let units = t.units_in(Pfn::new(0), Pfn::new(64));
        assert_eq!(units.len(), 3);
        assert_eq!(t.used_in(Pfn::new(0), Pfn::new(64)), 8 + 1 + 32);
        // Partial window sees only heads inside it.
        let tail = t.units_in(Pfn::new(16), Pfn::new(64));
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].head, Pfn::new(32));
    }

    #[test]
    #[should_panic(expected = "double-allocated")]
    fn double_allocation_panics() {
        let mut t = FrameTable::new(8);
        t.mark_allocated(Pfn::new(0), 2, FrameUse::User, None);
        t.mark_allocated(Pfn::new(2), 1, FrameUse::User, None);
    }

    #[test]
    fn set_owner_replaces_and_clears() {
        let mut t = FrameTable::new(8);
        t.mark_allocated(Pfn::new(0), 0, FrameUse::User, None);
        let o = MappingOwner {
            asid: AsId::new(2),
            vpn: Vpn::new(7),
        };
        t.set_owner(Pfn::new(0), Some(o));
        assert_eq!(t.owner(Pfn::new(0)), Some(o));
        t.set_owner(Pfn::new(0), None);
        assert_eq!(t.owner(Pfn::new(0)), None);
    }

    #[test]
    fn owner_slab_is_region_lazy_and_survives_reuse() {
        let mut t = FrameTable::new(4096);
        // Owner far from frame 0 materializes only that region's slab.
        let o = MappingOwner {
            asid: AsId::new(9),
            vpn: Vpn::new(1234),
        };
        t.mark_allocated(Pfn::new(2048), 0, FrameUse::User, Some(o));
        assert_eq!(t.owner(Pfn::new(2048)), Some(o));
        assert!(t.owners[0].is_none());
        assert!(t.owners[2].is_some());
        // Free then re-allocate without an owner: stale slab contents must
        // not resurface.
        t.mark_freed(Pfn::new(2048));
        t.mark_allocated(Pfn::new(2048), 0, FrameUse::User, None);
        assert_eq!(t.owner(Pfn::new(2048)), None);
        assert_eq!(t.unit_at(Pfn::new(2048)).unwrap().owner, None);
    }

    #[test]
    fn use_codes_roundtrip_through_flags() {
        let mut t = FrameTable::new(8);
        t.mark_allocated(Pfn::new(0), 0, FrameUse::User, None);
        t.mark_allocated(Pfn::new(1), 0, FrameUse::PageCache, None);
        t.mark_allocated(Pfn::new(2), 0, FrameUse::Kernel, None);
        assert_eq!(t.unit_at(Pfn::new(0)).unwrap().use_, FrameUse::User);
        assert_eq!(t.unit_at(Pfn::new(1)).unwrap().use_, FrameUse::PageCache);
        assert_eq!(t.unit_at(Pfn::new(2)).unwrap().use_, FrameUse::Kernel);
    }
}
