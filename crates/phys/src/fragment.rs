//! Physical-memory fragmentation tooling.
//!
//! The paper's methodology (§3): fragment memory by caching a large file in
//! the OS page cache and then reading it at random offsets so that page
//! reclamation frees memory in non-contiguous chunks, driving the Free
//! Memory Fragmentation Index (FMFI) to ≈0.95. This module reproduces the
//! *effect* directly on the simulated allocator: fill memory with
//! page-cache-sized chunks, scatter a few unmovable kernel objects across
//! regions (the inodes/DMA buffers that defeat 1GB compaction), then free a
//! random subset.

use rand::seq::SliceRandom;
use rand::Rng;
use trident_types::{Pfn, MAX_RUNGS};

use crate::{FrameUse, PhysicalMemory};

/// Parameters controlling how aggressively memory is fragmented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentProfile {
    /// Fraction of memory left free (scattered) after fragmentation.
    pub target_free_fraction: f64,
    /// Probability that a giant region receives an unmovable kernel object.
    pub unmovable_region_fraction: f64,
    /// Largest buddy order used for page-cache churn chunks. Small orders
    /// produce fine-grained holes like real reclamation does.
    pub max_chunk_order: u8,
}

impl FragmentProfile {
    /// The paper's heavy-fragmentation setup: FMFI ≈ 0.95 with roughly a
    /// quarter of memory free in scattered small holes, and a modest share
    /// of regions poisoned by unmovable kernel data.
    #[must_use]
    pub fn heavy() -> FragmentProfile {
        FragmentProfile {
            target_free_fraction: 0.25,
            unmovable_region_fraction: 0.70,
            max_chunk_order: 2,
        }
    }

    /// A milder profile: larger holes, fewer poisoned regions.
    #[must_use]
    pub fn moderate() -> FragmentProfile {
        FragmentProfile {
            target_free_fraction: 0.4,
            unmovable_region_fraction: 0.05,
            max_chunk_order: 4,
        }
    }
}

impl Default for FragmentProfile {
    fn default() -> Self {
        FragmentProfile::heavy()
    }
}

/// Outcome of a fragmentation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentReport {
    /// FMFI per ladder rung after fragmentation (indexed by
    /// `PageSize::rung()`; rungs beyond the geometry's ladder stay 0).
    pub fmfi: [f64; MAX_RUNGS],
    /// Index of the geometry's largest rung (the 1GB slot on x86).
    pub largest_rung: usize,
    /// Fraction of memory free after fragmentation.
    pub free_fraction: f64,
    /// Page-cache units still resident (they may be reclaimed later).
    pub resident_chunks: usize,
}

impl FragmentReport {
    /// FMFI at the ladder's largest rung — the paper's headline
    /// fragmentation number (1GB on x86).
    #[must_use]
    pub fn fmfi_largest(&self) -> f64 {
        self.fmfi[self.largest_rung]
    }
}

/// Fragments a [`PhysicalMemory`] according to a [`FragmentProfile`].
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use trident_phys::{FragmentProfile, Fragmenter, PhysicalMemory};
/// use trident_types::PageGeometry;
///
/// let geo = PageGeometry::TINY;
/// let mut mem = PhysicalMemory::new(geo, 32 * geo.base_pages(geo.largest()));
/// let mut rng = SmallRng::seed_from_u64(7);
/// let report = Fragmenter::new(FragmentProfile::heavy()).run(&mut mem, &mut rng);
/// assert!(report.fmfi_largest() > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Fragmenter {
    profile: FragmentProfile,
    resident: Vec<Pfn>,
}

impl Fragmenter {
    /// Creates a fragmenter with the given profile.
    #[must_use]
    pub fn new(profile: FragmentProfile) -> Fragmenter {
        Fragmenter {
            profile,
            resident: Vec::new(),
        }
    }

    /// Fragments `mem` in place and reports the resulting fragmentation.
    ///
    /// The page-cache chunks left resident are remembered by the fragmenter;
    /// [`Fragmenter::reclaim`] can free more of them later, modelling the
    /// page cache shrinking under memory pressure.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        mem: &mut PhysicalMemory,
        rng: &mut R,
    ) -> FragmentReport {
        self.poison_regions(mem, rng);
        self.fill_with_page_cache(mem, rng);
        self.free_scattered(mem, rng);
        self.report(mem)
    }

    /// Scatter unmovable kernel objects across giant regions so that a
    /// subset of regions can never be freed by compaction.
    fn poison_regions<R: Rng + ?Sized>(&mut self, mem: &mut PhysicalMemory, rng: &mut R) {
        let regions = mem.regions().region_count();
        for region in 0..regions {
            if rng.gen_bool(self.profile.unmovable_region_fraction) {
                // Best effort: a full region simply stays unpoisoned.
                let _ = mem.allocate_in_region(region, 0, FrameUse::Kernel, None);
            }
        }
    }

    /// Fill (nearly) all remaining memory with small page-cache chunks.
    fn fill_with_page_cache<R: Rng + ?Sized>(&mut self, mem: &mut PhysicalMemory, rng: &mut R) {
        loop {
            let order = rng.gen_range(0..=self.profile.max_chunk_order);
            match mem.allocate_order(order, FrameUse::PageCache, None) {
                Ok(head) => self.resident.push(head),
                Err(_) => {
                    // Retry at order 0 to squeeze out the last pages.
                    match mem.allocate_order(0, FrameUse::PageCache, None) {
                        Ok(head) => self.resident.push(head),
                        Err(_) => break,
                    }
                }
            }
        }
    }

    /// Free chunks until the target free fraction is reached.
    ///
    /// Freeing is *region-skewed*, like real page-cache reclaim: files are
    /// dropped together, so some 1GB regions end up mostly empty while
    /// others stay nearly full. This occupancy heterogeneity is what smart
    /// compaction exploits (it selects the emptiest region as its source)
    /// and sequential compaction is blind to. One chunk per region is
    /// pinned resident so no region coalesces back into a free giant
    /// block — the memory stays fragmented at giant granularity.
    fn free_scattered<R: Rng + ?Sized>(&mut self, mem: &mut PhysicalMemory, rng: &mut R) {
        let geo = mem.geometry();
        let region_count = mem.regions().region_count();
        // Strongly skewed per-region reclaim propensity.
        let bias: Vec<f64> = (0..region_count)
            .map(|_| rng.gen::<f64>().powi(3))
            .collect();
        // Pin one resident chunk per region.
        let mut pinned = vec![false; usize::try_from(region_count).expect("fits usize")];
        let mut keep = Vec::new();
        let mut candidates = Vec::new();
        self.resident.shuffle(rng);
        for head in self.resident.drain(..) {
            let region = usize::try_from(geo.giant_region_of(head.raw())).expect("fits usize");
            if !pinned[region] {
                pinned[region] = true;
                keep.push(head);
            } else {
                let score = bias[region] + rng.gen_range(0.0..0.15);
                candidates.push((score, head));
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
        let mut queue = candidates.into_iter();
        while mem.free_fraction() < self.profile.target_free_fraction {
            let Some((_, head)) = queue.next() else {
                break;
            };
            mem.free(head).expect("resident chunk is allocated");
        }
        self.resident = keep;
        self.resident.extend(queue.map(|(_, head)| head));
    }

    /// Reclaims up to `pages` base pages of resident page cache, freeing
    /// whole chunks. Returns the number of base pages actually freed.
    ///
    /// Chunks that compaction has migrated since the fragmentation run are
    /// silently skipped: their handles are stale, and the frame they point
    /// at may since have been reallocated to someone else entirely — only
    /// frames that are *still page-cache* may be reclaimed.
    pub fn reclaim(&mut self, mem: &mut PhysicalMemory, pages: u64) -> u64 {
        let mut freed = 0;
        while freed < pages {
            let Some(head) = self.resident.pop() else {
                break;
            };
            match mem.unit_at(head) {
                Some(unit) if unit.use_ == FrameUse::PageCache => {
                    mem.free(head).expect("page-cache unit is live");
                    freed += unit.pages();
                }
                _ => {} // stale handle: migrated or reused by another owner
            }
        }
        freed
    }

    /// Number of page-cache chunks still resident.
    #[must_use]
    pub fn resident_chunks(&self) -> usize {
        self.resident.len()
    }

    fn report(&self, mem: &PhysicalMemory) -> FragmentReport {
        let geo = mem.geometry();
        let mut fmfi = [0.0; MAX_RUNGS];
        for size in geo.rungs() {
            fmfi[size.rung()] = mem.fmfi(size);
        }
        FragmentReport {
            fmfi,
            largest_rung: geo.largest().rung(),
            free_fraction: mem.free_fraction(),
            resident_chunks: self.resident.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use trident_types::{PageGeometry, PageSize};

    fn fragmented() -> (PhysicalMemory, Fragmenter, FragmentReport) {
        let geo = PageGeometry::TINY;
        let mut mem = PhysicalMemory::new(geo, 64 * geo.base_pages(geo.largest()));
        let mut rng = SmallRng::seed_from_u64(42);
        let mut frag = Fragmenter::new(FragmentProfile::heavy());
        let report = frag.run(&mut mem, &mut rng);
        (mem, frag, report)
    }

    #[test]
    fn heavy_profile_destroys_giant_contiguity() {
        let (mem, _, report) = fragmented();
        assert!(
            report.fmfi_largest() > 0.9,
            "fmfi_largest = {}",
            report.fmfi_largest()
        );
        assert!(!mem.has_free(mem.geometry().largest()));
        assert!((0.2..0.35).contains(&report.free_fraction));
        mem.assert_consistent();
    }

    #[test]
    fn fragmentation_leaves_base_pages_allocatable() {
        let (mut mem, _, _) = fragmented();
        assert!(mem.allocate(PageSize::BASE, FrameUse::User, None).is_ok());
    }

    #[test]
    fn reclaim_frees_whole_chunks() {
        let (mut mem, mut frag, _) = fragmented();
        let before = mem.free_pages();
        let freed = frag.reclaim(&mut mem, 100);
        assert!(freed >= 100);
        assert_eq!(mem.free_pages(), before + freed);
        mem.assert_consistent();
    }

    #[test]
    fn some_regions_are_poisoned() {
        let (mem, _, _) = fragmented();
        let poisoned = (0..mem.regions().region_count())
            .filter(|r| mem.regions().counters(*r).unmovable_pages > 0)
            .count();
        assert!(poisoned > 0, "expected at least one poisoned region");
        assert!(poisoned < mem.regions().region_count() as usize);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let geo = PageGeometry::TINY;
            let mut mem = PhysicalMemory::new(geo, 16 * geo.base_pages(geo.largest()));
            let mut rng = SmallRng::seed_from_u64(7);
            Fragmenter::new(FragmentProfile::moderate()).run(&mut mem, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
