//! Error types for physical-memory operations.

use core::fmt;
use std::error::Error;

/// A contiguous chunk of the requested order could not be allocated.
///
/// This is the signal that makes Trident fall back from 1GB to 2MB to 4KB
/// pages, or trigger compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocError {
    /// The buddy order that was requested (in base pages: `2^order`).
    pub order: u8,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no contiguous free chunk of order {} available",
            self.order
        )
    }
}

impl Error for AllocError {}

/// Errors raised by [`PhysicalMemory`](crate::PhysicalMemory) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysMemError {
    /// Allocation failed for lack of a contiguous chunk.
    OutOfContiguousMemory(AllocError),
    /// The frame number lies outside the configured physical memory.
    FrameOutOfBounds {
        /// The offending frame number.
        pfn: u64,
    },
    /// The operation expected the head frame of an allocation unit.
    NotAUnitHead {
        /// The offending frame number.
        pfn: u64,
    },
    /// The frame is already free.
    AlreadyFree {
        /// The offending frame number.
        pfn: u64,
    },
}

impl fmt::Display for PhysMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysMemError::OutOfContiguousMemory(e) => write!(f, "{e}"),
            PhysMemError::FrameOutOfBounds { pfn } => {
                write!(f, "frame {pfn:#x} is outside physical memory")
            }
            PhysMemError::NotAUnitHead { pfn } => {
                write!(f, "frame {pfn:#x} is not the head of an allocation unit")
            }
            PhysMemError::AlreadyFree { pfn } => write!(f, "frame {pfn:#x} is already free"),
        }
    }
}

impl Error for PhysMemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PhysMemError::OutOfContiguousMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AllocError> for PhysMemError {
    fn from(e: AllocError) -> Self {
        PhysMemError::OutOfContiguousMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = AllocError { order: 18 };
        assert!(e.to_string().contains("order 18"));
        let p: PhysMemError = e.into();
        assert_eq!(p.to_string(), e.to_string());
        assert!(PhysMemError::AlreadyFree { pfn: 16 }
            .to_string()
            .contains("0x10"));
    }

    #[test]
    fn source_chains_to_alloc_error() {
        let p = PhysMemError::from(AllocError { order: 9 });
        assert!(p.source().is_some());
        assert!(PhysMemError::FrameOutOfBounds { pfn: 1 }.source().is_none());
    }
}
