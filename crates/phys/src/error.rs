//! Error types for physical-memory operations.
//!
//! Since the workspace-wide error unification these are aliases into
//! [`trident_types`]: [`PhysMemError`] is the physical-memory-flavored view
//! of [`TridentError`], and [`AllocError`] is re-exported unchanged. Old
//! signatures (`Result<_, PhysMemError>`) keep compiling and now compose
//! with virtual-memory and policy errors without wrapper enums.

pub use trident_types::{AllocError, TridentError};

/// Errors raised by [`PhysicalMemory`](crate::PhysicalMemory) operations.
///
/// Alias of the unified [`TridentError`]; the variants used here are
/// `OutOfContiguousMemory`, `FrameOutOfBounds`, `NotAUnitHead` and
/// `AlreadyFree`.
pub type PhysMemError = TridentError;

#[cfg(test)]
mod tests {
    use std::error::Error;

    use super::*;

    #[test]
    fn alias_preserves_display_and_source() {
        let e = AllocError { order: 18 };
        let p: PhysMemError = e.into();
        assert_eq!(p.to_string(), e.to_string());
        assert!(p.source().is_some());
        assert!(matches!(p, PhysMemError::OutOfContiguousMemory(_)));
    }
}
