//! Property tests for the per-region counters: they must always agree
//! with a brute-force recount of the frame table.

use proptest::prelude::*;
use trident_phys::{FrameUse, PhysicalMemory};
use trident_types::{PageGeometry, Pfn};

fn any_use() -> impl Strategy<Value = FrameUse> {
    prop_oneof![
        Just(FrameUse::User),
        Just(FrameUse::PageCache),
        Just(FrameUse::Kernel)
    ]
}

proptest! {
    /// After arbitrary allocation traffic, every region's free counter
    /// equals its recounted free frames and its unmovable counter equals
    /// the recounted kernel frames.
    #[test]
    fn region_counters_match_recount(
        allocs in prop::collection::vec((0u8..=6, any_use()), 1..120),
        frees in prop::collection::vec(any::<prop::sample::Index>(), 0..80),
    ) {
        let geo = PageGeometry::TINY;
        let mut mem = PhysicalMemory::new(geo, 8 * geo.base_pages(geo.largest()));
        let mut held: Vec<Pfn> = Vec::new();
        for (order, use_) in allocs {
            if let Ok(head) = mem.allocate_order(order, use_, None) {
                held.push(head);
            }
        }
        for idx in frees {
            if held.is_empty() { break; }
            let head = held.swap_remove(idx.index(held.len()));
            mem.free(head).unwrap();
        }
        let region_pages = geo.base_pages(geo.largest());
        for region in 0..mem.regions().region_count() {
            let counters = mem.regions().counters(region);
            let start = region * region_pages;
            let mut used = 0;
            let mut unmovable = 0;
            for unit in mem.units_in_region(region) {
                used += unit.pages();
                if !unit.use_.is_movable() {
                    unmovable += unit.pages();
                }
            }
            prop_assert_eq!(
                counters.free_pages,
                region_pages - used,
                "region {} free count drifted (start {})", region, start
            );
            prop_assert_eq!(counters.unmovable_pages, unmovable);
        }
        mem.assert_consistent();
    }

    /// Source candidates never include regions with unmovable content or
    /// fully-free regions; target candidates never include full regions.
    #[test]
    fn candidate_filters_hold(
        allocs in prop::collection::vec((0u8..=5, any_use()), 1..100),
    ) {
        let geo = PageGeometry::TINY;
        let mut mem = PhysicalMemory::new(geo, 8 * geo.base_pages(geo.largest()));
        for (order, use_) in allocs {
            let _ = mem.allocate_order(order, use_, None);
        }
        let region_pages = geo.base_pages(geo.largest());
        for source in mem.regions().source_candidates() {
            let c = mem.regions().counters(source);
            prop_assert_eq!(c.unmovable_pages, 0);
            prop_assert!(c.free_pages < region_pages);
        }
        for target in mem.regions().target_candidates(0) {
            prop_assert!(target != 0);
            prop_assert!(mem.regions().counters(target).free_pages > 0);
        }
    }
}
