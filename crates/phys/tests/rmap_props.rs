//! Property-based tests for the packed frame table and reverse map: the
//! flag-byte records, head bitmap, and lazily-allocated owner slabs must
//! be indistinguishable from a plain `HashMap` model under arbitrary
//! allocate/free/retag sequences.

use std::collections::HashMap;

use proptest::prelude::*;
use trident_phys::{FrameTable, FrameUse, MappingOwner};
use trident_types::{AsId, Pfn, Vpn};

/// Two owner-slab regions' worth of frames, so sequences cross the slab
/// boundary and leave at least one region slab unmaterialized sometimes.
const TOTAL: u64 = 2048;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate `2^order` frames at the `slot`-th aligned position, with
    /// an optional owner; skipped when any frame of the span is used.
    Alloc {
        order: u8,
        slot: u64,
        use_: FrameUse,
        owner: Option<(u32, u64)>,
    },
    /// Free the `nth` live unit (modulo the live count).
    Free(usize),
    /// Re-point or clear the `nth` live unit's owner.
    SetOwner(usize, Option<(u32, u64)>),
}

fn any_use() -> impl Strategy<Value = FrameUse> {
    prop_oneof![
        Just(FrameUse::User),
        Just(FrameUse::PageCache),
        Just(FrameUse::Kernel),
    ]
}

fn any_owner() -> impl Strategy<Value = Option<(u32, u64)>> {
    (any::<bool>(), 1u32..100, 0u64..1 << 20)
        .prop_map(|(some, asid, vpn)| some.then_some((asid, vpn)))
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        // Uniform choice with the alloc arm doubled, so sequences keep a
        // healthy population of live units to free and retag.
        prop_oneof![
            (0u8..=6, 0u64..TOTAL, any_use(), any_owner()).prop_map(
                |(order, slot, use_, owner)| Op::Alloc {
                    order,
                    slot,
                    use_,
                    owner
                }
            ),
            (0u8..=6, 0u64..TOTAL, any_use(), any_owner()).prop_map(
                |(order, slot, use_, owner)| Op::Alloc {
                    order,
                    slot,
                    use_,
                    owner
                }
            ),
            (0usize..64).prop_map(Op::Free),
            ((0usize..64), any_owner()).prop_map(|(n, o)| Op::SetOwner(n, o)),
        ],
        1..150,
    )
}

/// The model's view of one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ModelUnit {
    order: u8,
    use_: FrameUse,
    owner: Option<MappingOwner>,
}

fn mk_owner(raw: Option<(u32, u64)>) -> Option<MappingOwner> {
    raw.map(|(asid, vpn)| MappingOwner {
        asid: AsId::new(asid),
        vpn: Vpn::new(vpn),
    })
}

proptest! {
    /// Packed table == HashMap model: membership, per-unit metadata,
    /// owner lookups, and the ranged unit enumeration (in both its
    /// allocating and buffer-reusing forms) agree after every operation.
    #[test]
    fn frame_table_matches_hashmap_model(ops in ops()) {
        let mut table = FrameTable::new(TOTAL);
        let mut model: HashMap<u64, ModelUnit> = HashMap::new();
        // Sorted unit heads, for nth-unit selection and span checks.
        let mut heads: Vec<u64> = Vec::new();
        let mut scratch = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { order, slot, use_, owner } => {
                    let span = 1u64 << order;
                    let head = (slot % (TOTAL / span)) * span;
                    let overlaps = heads.iter().any(|&h| {
                        let m = model[&h];
                        h < head + span && head < h + (1u64 << m.order)
                    });
                    if overlaps {
                        continue;
                    }
                    table.mark_allocated(Pfn::new(head), order, use_, mk_owner(owner));
                    model.insert(head, ModelUnit { order, use_, owner: mk_owner(owner) });
                    let at = heads.partition_point(|&h| h < head);
                    heads.insert(at, head);
                }
                Op::Free(n) => {
                    if heads.is_empty() {
                        continue;
                    }
                    let head = heads.remove(n % heads.len());
                    let expect = model.remove(&head).expect("model tracks heads");
                    let unit = table.mark_freed(Pfn::new(head));
                    prop_assert_eq!(unit.order, expect.order);
                    prop_assert_eq!(unit.use_, expect.use_);
                    prop_assert_eq!(unit.owner, expect.owner);
                }
                Op::SetOwner(n, owner) => {
                    if heads.is_empty() {
                        continue;
                    }
                    let head = heads[n % heads.len()];
                    table.set_owner(Pfn::new(head), mk_owner(owner));
                    model.get_mut(&head).expect("model tracks heads").owner = mk_owner(owner);
                }
            }
            // Every model unit reads back intact through the packed table.
            for (&head, m) in &model {
                let unit = table.unit_at(Pfn::new(head)).expect("model head is a unit");
                prop_assert_eq!(unit.order, m.order);
                prop_assert_eq!(unit.use_, m.use_);
                prop_assert_eq!(unit.owner, m.owner);
                prop_assert_eq!(table.owner(Pfn::new(head)), m.owner);
                prop_assert_eq!(table.is_unmovable(Pfn::new(head)), !m.use_.is_movable());
            }
        }
        // Final sweep: the ranged enumeration yields exactly the model's
        // units in ascending head order, and the buffer-reusing form
        // agrees with the allocating one.
        let units = table.units_in(Pfn::new(0), Pfn::new(TOTAL));
        let got: Vec<u64> = units.iter().map(|u| u.head.raw()).collect();
        prop_assert_eq!(&got, &heads);
        table.units_in_into(Pfn::new(0), Pfn::new(TOTAL), &mut scratch);
        prop_assert_eq!(&units, &scratch);
        // Per-frame used/head predicates and unit attribution agree with
        // a flat expansion of the model.
        let mut flat = vec![None::<u64>; TOTAL as usize];
        for (&head, m) in &model {
            for i in 0..1u64 << m.order {
                flat[(head + i) as usize] = Some(head);
            }
        }
        for pfn in 0..TOTAL {
            prop_assert_eq!(table.is_used(Pfn::new(pfn)), flat[pfn as usize].is_some());
            prop_assert_eq!(
                table.head_of(Pfn::new(pfn)),
                flat[pfn as usize].map(Pfn::new)
            );
            prop_assert_eq!(
                table.is_unit_head(Pfn::new(pfn)),
                flat[pfn as usize] == Some(pfn)
            );
        }
        let used: u64 = model.values().map(|m| 1u64 << m.order).sum();
        prop_assert_eq!(table.used_in(Pfn::new(0), Pfn::new(TOTAL)), used);
    }
}
