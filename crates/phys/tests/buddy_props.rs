//! Property-based tests for the buddy allocator and physical memory.

use proptest::prelude::*;
use trident_phys::{BuddyAllocator, FrameUse, PhysicalMemory};
use trident_types::{PageGeometry, PageSize};

/// A random sequence of alloc/free operations.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u8),
    FreeNth(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..=6).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    /// After any op sequence, the buddy's internal accounting is
    /// consistent, and freeing everything restores full coalescing.
    #[test]
    fn buddy_accounting_survives_random_ops(ops in ops()) {
        let total = 4u64 << 6;
        let mut buddy = BuddyAllocator::new(total, 6);
        let mut held: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Ok(start) = buddy.alloc(order) {
                        prop_assert_eq!(start % (1 << order), 0);
                        held.push((start, order));
                    }
                }
                Op::FreeNth(n) => {
                    if !held.is_empty() {
                        let (start, order) = held.swap_remove(n % held.len());
                        buddy.free(start, order);
                    }
                }
            }
            buddy.assert_consistent();
        }
        let held_pages: u64 = held.iter().map(|(_, o)| 1u64 << o).sum();
        prop_assert_eq!(buddy.free_pages(), total - held_pages);
        for (start, order) in held {
            buddy.free(start, order);
        }
        prop_assert_eq!(buddy.free_pages(), total);
        prop_assert_eq!(buddy.free_blocks(6), 4);
    }

    /// Allocations never overlap while held.
    #[test]
    fn buddy_allocations_are_disjoint(orders in prop::collection::vec(0u8..=5, 1..40)) {
        let mut buddy = BuddyAllocator::new(1 << 10, 10);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for order in orders {
            if let Ok(start) = buddy.alloc(order) {
                spans.push((start, start + (1 << order)));
            }
        }
        spans.sort_unstable();
        for pair in spans.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlap: {:?}", pair);
        }
    }

    /// PhysicalMemory keeps buddy, frame table and region counters in sync
    /// under random ladder traffic, on the miniature ladders and on every
    /// shipped architecture (scaled so the buddy orders stay testable).
    #[test]
    fn physical_memory_layers_stay_in_sync(
        (geo, seq, frees) in prop_oneof![
            Just(PageGeometry::TINY),
            Just(PageGeometry::TINY_NAPOT),
            Just(PageGeometry::X86_64.scaled(8)),
            Just(PageGeometry::RISCV_SV48.scaled(8)),
            Just(PageGeometry::AARCH64.scaled(8)),
        ]
        .prop_flat_map(|geo| {
            let sizes = (0..geo.rung_count()).prop_map(PageSize::new);
            (
                Just(geo),
                prop::collection::vec(sizes, 1..100),
                prop::collection::vec(any::<prop::sample::Index>(), 0..60),
            )
        }),
    ) {
        let mut mem = PhysicalMemory::new(geo, 8 * geo.base_pages(geo.largest()));
        let mut held = Vec::new();
        for size in seq {
            if let Ok(head) = mem.allocate(size, FrameUse::User, None) {
                held.push(head);
            }
        }
        for idx in frees {
            if held.is_empty() { break; }
            let head = held.swap_remove(idx.index(held.len()));
            mem.free(head).unwrap();
        }
        mem.assert_consistent();
        for head in held {
            mem.free(head).unwrap();
        }
        mem.assert_consistent();
        prop_assert_eq!(mem.free_pages(), mem.total_pages());
    }

    /// FMFI is always within [0, 1] and monotone in order.
    #[test]
    fn fmfi_bounds_and_monotonicity(orders in prop::collection::vec(0u8..=6, 0..80)) {
        let mut buddy = BuddyAllocator::new(1 << 9, 9);
        for order in orders {
            let _ = buddy.alloc(order);
        }
        let mut last = 0.0f64;
        for order in 0..=9u8 {
            let f = buddy.fmfi(order);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last - 1e-12, "fmfi not monotone at order {order}");
            last = f;
        }
    }
}
