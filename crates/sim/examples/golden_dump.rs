//! Regenerates the committed golden CSVs (`tests/golden/*.csv`) that
//! `tests/builder_identity.rs` pins bit for bit: fig1/table4/table5 at
//! quick scale, seed 42, serial, under the default x86-64 geometry.
//!
//! ```sh
//! cargo run -p trident-sim --example golden_dump [-- DIR]
//! ```

use std::fs;
use trident_sim::experiments::{self, ExpOptions};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/golden".into());
    fs::create_dir_all(&dir).unwrap();
    let opts = ExpOptions::quick();
    fs::write(
        format!("{dir}/fig1.csv"),
        experiments::fig1::run(&opts).to_csv(),
    )
    .unwrap();
    fs::write(
        format!("{dir}/table4.csv"),
        experiments::table4::run(&opts).to_csv(),
    )
    .unwrap();
    fs::write(
        format!("{dir}/table5.csv"),
        experiments::table5::run(&opts).to_csv(),
    )
    .unwrap();
    println!("golden CSVs written to {dir}");
}
