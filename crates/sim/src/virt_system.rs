//! A virtualized machine: guest policy over gPA, host policy over hPA.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use trident_core::{ObsRecorder, PolicyError, RingTracer};
use trident_phys::{Fragmenter, PhysMemError};
use trident_tlb::{TlbHierarchy, TranslationEngine, WalkCostModel};
use trident_types::{AsId, PageSize, Vpn};
use trident_virt::{Hypervisor, VirtualMachine};
use trident_vm::AddressSpace;
use trident_workloads::{AccessSampler, AllocPlan, Layout, WorkloadSpec};

use crate::{DaemonGovernor, Measurement, PolicyKind, SimConfig};

/// A guest workload running in a VM over a hypervisor, with nested
/// translation costs (§2: up to 24 accesses for 4KB+4KB, 15 for 2MB+2MB,
/// 8 for 1GB+1GB).
///
/// # Examples
///
/// ```no_run
/// use trident_sim::{PolicyKind, SimConfig, VirtSystem};
/// use trident_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::by_name("SVM").unwrap();
/// let mut vs = VirtSystem::launch(
///     SimConfig::at_scale(64),
///     PolicyKind::Trident,
///     PolicyKind::Trident,
///     spec,
///     false,
/// )?;
/// vs.settle();
/// let m = vs.measure();
/// println!("nested walk cycles: {}", m.walk_cycles);
/// # Ok::<(), trident_phys::PhysMemError>(())
/// ```
pub struct VirtSystem {
    /// The run configuration.
    pub config: SimConfig,
    /// The hypervisor (host level).
    pub hyp: Hypervisor,
    /// The virtual machine (guest level).
    pub vm: VirtualMachine,
    engine: TranslationEngine,
    rng: SmallRng,
    guest_governor: DaemonGovernor,
    guest_fragmenter: Option<Fragmenter>,
    sampler: AccessSampler,
    asid: AsId,
    touched: u64,
}

impl std::fmt::Debug for VirtSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtSystem")
            .field("host", &self.hyp.policy_name())
            .field("guest", &self.vm.kernel.policy.name())
            .finish()
    }
}

impl VirtSystem {
    /// Boots a hypervisor with `host_kind`, a VM with `guest_kind`, and
    /// loads `spec` inside the VM. With `fragment_guest`, guest-physical
    /// memory is fragmented before the workload runs (Figure 13's
    /// setting; the guest daemon is additionally governed by
    /// `config.daemon_cap`).
    ///
    /// # Errors
    ///
    /// Propagates reservation failures from either level's policy.
    pub fn launch(
        config: SimConfig,
        host_kind: PolicyKind,
        guest_kind: PolicyKind,
        spec: WorkloadSpec,
        fragment_guest: bool,
    ) -> Result<VirtSystem, PhysMemError> {
        let geo = config.geo;
        let workload_pages = geo
            .pages_for_bytes(config.scale.apply(spec.footprint_bytes))
            .max(1);
        // Guest RAM: footprint plus 50% headroom, rounded up to whole
        // giant pages, and never more than the host can back.
        let gp = geo.base_pages(PageSize::new(2));
        let guest_pages = ((workload_pages + workload_pages / 2).div_ceil(gp).max(1) * gp)
            .min(config.host_pages() / gp * gp)
            .max(gp.min(config.host_pages()));
        let mut hyp = Hypervisor::try_new(geo, config.host_pages(), |ctx| {
            host_kind.build(ctx, guest_pages)
        })?;
        let mut vm = hyp.try_create_vm(guest_pages, |ctx| guest_kind.build(ctx, workload_pages))?;
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x7419_de57);
        let guest_fragmenter = if fragment_guest {
            let profile = config
                .fragment
                .unwrap_or_else(trident_phys::FragmentProfile::heavy);
            let mut f = Fragmenter::new(profile);
            f.run(&mut vm.kernel.ctx.mem, &mut rng);
            Some(f)
        } else {
            None
        };
        let asid = AsId::new(1);
        vm.kernel.spaces.insert(AddressSpace::new(asid, geo));
        // Profiling a virtualized run derives the profile from the merged
        // guest+host trace at measurement end, so it needs rings even when
        // the caller did not ask for a trace explicitly.
        let ring_capacity = config
            .trace_capacity
            .or_else(|| config.profile.then_some(1 << 20));
        if let Some(capacity) = ring_capacity {
            vm.kernel.ctx.recorder = ObsRecorder::ring(capacity);
            hyp.ctx.recorder = ObsRecorder::ring(capacity);
        }
        // Both levels fail independently but deterministically: each gets
        // its own injector over the same plan (per-context decision
        // streams are keyed by site, not by context).
        if let Some(plan) = config.fault {
            vm.kernel.ctx.fault = trident_core::FaultInjector::new(plan);
            hyp.ctx.fault = trident_core::FaultInjector::new(plan);
        }
        let engine =
            TranslationEngine::new(TlbHierarchy::with_geometry(geo), WalkCostModel::default());
        let mut vs = VirtSystem {
            guest_governor: DaemonGovernor::new(config.daemon_cap, config.tick_interval_app_ns),
            config,
            hyp,
            vm,
            engine,
            rng,
            guest_fragmenter,
            sampler: AccessSampler::new(
                spec,
                Layout::from_ranges(vec![trident_workloads::ChunkRange {
                    start: Vpn::new(0),
                    pages: 1,
                }]),
            ),
            asid,
            touched: 0,
        };
        vs.load(spec);
        Ok(vs)
    }

    fn load(&mut self, spec: WorkloadSpec) {
        let geo = self.config.geo;
        let plan = spec.plan(geo, self.config.scale, &mut self.rng);
        let mut ranges = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let range = {
                let space = self
                    .vm
                    .kernel
                    .spaces
                    .get_mut(self.asid)
                    .expect("workload space");
                AllocPlan::execute_step(space, step)
            };
            for i in 0..range.pages {
                self.touch_populate(range.start + i);
            }
            ranges.push(range);
        }
        self.sampler = AccessSampler::new(spec, Layout::from_ranges(ranges));
    }

    fn touch_populate(&mut self, vpn: Vpn) {
        if self.vm.kernel.ctx.mem.free_fraction() < 0.02 {
            if let Some(f) = &mut self.guest_fragmenter {
                f.reclaim(&mut self.vm.kernel.ctx.mem, 1 << 15);
            }
        }
        match self.vm.touch(&mut self.hyp, self.asid, vpn, false) {
            Ok(_) => {}
            Err(PolicyError::OutOfContiguousMemory(_)) => {
                let f = self
                    .guest_fragmenter
                    .as_mut()
                    .expect("OOM implies a resident guest page cache");
                f.reclaim(&mut self.vm.kernel.ctx.mem, 1 << 16);
                self.vm
                    .touch(&mut self.hyp, self.asid, vpn, false)
                    .expect("touch succeeds after reclaim");
            }
            Err(e) => panic!("populate touch failed: {e}"),
        }
        self.touched += 1;
        if self.touched.is_multiple_of(self.config.tick_interval_pages) {
            self.tick();
        }
    }

    /// One tick of both daemons: the governed guest daemon and the host's.
    pub fn tick(&mut self) -> (trident_core::TickOutcome, trident_core::TickOutcome) {
        let guest = self.guest_governor.tick(
            self.vm.kernel.policy.as_mut(),
            &mut self.vm.kernel.ctx,
            &mut self.vm.kernel.spaces,
        );
        let host = self.hyp.tick();
        (guest, host)
    }

    /// Runs daemons until quiet.
    pub fn settle(&mut self) {
        let mut quiet = 0;
        for _ in 0..self.config.settle_ticks {
            let (g, h) = self.tick();
            if g.promotions == 0
                && h.promotions == 0
                && g.compaction_runs == 0
                && h.compaction_runs == 0
                && self.guest_governor.debt_ns() == 0
            {
                quiet += 1;
                if quiet >= 3 {
                    break;
                }
            } else {
                quiet = 0;
            }
        }
    }

    /// Samples guest accesses through both translation levels and the
    /// nested TLB cost model.
    pub fn measure(&mut self) -> Measurement {
        let warmup = self.config.measure_samples / 10;
        for _ in 0..warmup {
            self.measured_access();
        }
        self.engine.reset_stats();
        for i in 0..self.config.measure_samples {
            self.measured_access();
            if (i + 1) % self.config.measure_tick_every == 0 {
                let (g, h) = self.tick();
                if g.promotions > 0 || h.promotions > 0 {
                    self.engine.flush();
                }
            }
        }
        let tlb = *self.engine.stats();
        // Combine the two levels' MM costs: guest faults and daemons plus
        // host (EPT) faults and daemons all stall or contend with the VM.
        let mut snapshot = self.vm.kernel.ctx.snapshot();
        let host = self.hyp.ctx.snapshot();
        for i in 0..3 {
            snapshot.fault_ns[i] += host.fault_ns[i];
            snapshot.faults[i] += host.faults[i];
        }
        snapshot.daemon_ns += host.daemon_ns;
        // Guest events first, then host: a fixed merge order keeps traces
        // deterministic.
        let trace_dropped = self
            .vm
            .kernel
            .ctx
            .recorder
            .tracer()
            .map_or(0, RingTracer::dropped)
            + self
                .hyp
                .ctx
                .recorder
                .tracer()
                .map_or(0, RingTracer::dropped);
        let mut trace = self
            .vm
            .kernel
            .ctx
            .recorder
            .tracer_mut()
            .map(RingTracer::drain)
            .unwrap_or_default();
        trace.extend(
            self.hyp
                .ctx
                .recorder
                .tracer_mut()
                .map(RingTracer::drain)
                .unwrap_or_default(),
        );
        // The virtualized profile is a replay of the merged trace (a pure
        // fold, so "replay == live" holds by construction); span pairing
        // is per-level because the merge order keeps each level's events
        // contiguous.
        let profile = self
            .config
            .profile
            .then(|| Box::new(trident_prof::Profile::from_events(1, trace.iter())));
        let space = self
            .vm
            .kernel
            .spaces
            .get(self.asid)
            .expect("workload space");
        Measurement {
            samples: self.config.measure_samples,
            walks: tlb.total_walks(),
            walk_cycles: tlb.total_walk_cycles(),
            tlb,
            snapshot,
            trace,
            trace_dropped,
            profile,
            mapped_bytes: {
                let geo = self.config.geo;
                let mut mapped = [0u64; trident_types::MAX_RUNGS];
                for size in geo.rungs() {
                    mapped[size.rung()] = space.page_table().mapped_bytes(size);
                }
                mapped
            },
            miss_by_chunk: Vec::new(),
            tenants: Vec::new(),
        }
    }

    fn measured_access(&mut self) {
        let access = self.sampler.sample(&mut self.rng);
        let nested = self
            .vm
            .touch(&mut self.hyp, self.asid, access.vpn, access.write)
            .expect("measurement touch");
        self.engine.translate_nested_rec(
            access.vpn,
            nested.guest_size,
            nested.host_size,
            &mut self.vm.kernel.ctx.recorder,
        );
    }

    /// Bytes mapped at `size` in the guest workload's page table.
    #[must_use]
    pub fn guest_mapped_bytes(&self, size: PageSize) -> u64 {
        self.vm
            .kernel
            .spaces
            .get(self.asid)
            .expect("workload space")
            .page_table()
            .mapped_bytes(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimConfig {
        let mut c = SimConfig::at_scale(256);
        c.measure_samples = 4_000;
        c.measure_tick_every = 2_000;
        c.settle_ticks = 12;
        c
    }

    #[test]
    fn trident_at_both_levels_maps_large_pages_everywhere() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let mut vs = VirtSystem::launch(
            quick_config(),
            PolicyKind::Trident,
            PolicyKind::Trident,
            spec,
            false,
        )
        .unwrap();
        vs.settle();
        let large =
            vs.guest_mapped_bytes(PageSize::new(1)) + vs.guest_mapped_bytes(PageSize::new(2));
        assert!(large > 0);
    }

    #[test]
    fn base_plus_base_pays_nested_walks() {
        let spec = WorkloadSpec::by_name("Btree").unwrap();
        let mut base = VirtSystem::launch(
            quick_config(),
            PolicyKind::Base,
            PolicyKind::Base,
            spec,
            false,
        )
        .unwrap();
        base.settle();
        let m_base = base.measure();
        let mut thp = VirtSystem::launch(
            quick_config(),
            PolicyKind::Thp,
            PolicyKind::Thp,
            spec,
            false,
        )
        .unwrap();
        thp.settle();
        let m_thp = thp.measure();
        assert!(
            m_base.walk_cycles > m_thp.walk_cycles,
            "4KB+4KB ({}) should out-walk 2MB+2MB ({})",
            m_base.walk_cycles,
            m_thp.walk_cycles
        );
    }

    #[test]
    fn fragmented_guest_still_loads() {
        let spec = WorkloadSpec::by_name("Canneal").unwrap();
        let mut config = quick_config();
        config.daemon_cap = Some(0.1);
        let mut vs =
            VirtSystem::launch(config, PolicyKind::Thp, PolicyKind::TridentPv, spec, true).unwrap();
        vs.settle();
        let m = vs.measure();
        assert!(m.walks > 0 || m.walk_cycles == 0);
        vs.vm.kernel.ctx.mem.assert_consistent();
        vs.hyp.ctx.mem.assert_consistent();
    }
}
