//! The performance model.
//!
//! The paper reports two headline quantities per (application,
//! configuration) pair: the *fraction of execution cycles spent in page
//! walks* (Figures 1a, 2a, 9b, 10b) and *normalized performance*
//! (Figures 1b, 2b, 9a, 10a, 11, 12, 13). We reproduce them with a simple
//! composition, documented in DESIGN.md §5:
//!
//! * The TLB simulation yields walk cycles per sampled access; an
//!   application-specific *overlap* factor models the walk latency an
//!   out-of-order core hides (§4.1 notes walk-cycle reductions do not
//!   translate 1:1 into speedup).
//! * Each application's measured 4KB-page walk-cycle fraction (Figure 1a)
//!   anchors its compute cycles per access: if the app spends fraction
//!   `f` of its time walking under 4KB pages, compute = walk₄ₖ·(1−f)/f.
//! * Memory-management overhead is folded in on the same time base:
//!   fault latency sits on the critical path; daemon CPU time contends
//!   for cores in proportion to how many the application itself uses.

use std::collections::HashMap;

use trident_core::CostModel;
use trident_workloads::WorkloadSpec;

use crate::{Measurement, PolicyKind, SimConfig, System};

/// Modeled accesses per (scaled) heap page over a full application run;
/// sets the ratio between translation time and one-off MM overheads.
const TOUCHES_PER_PAGE: f64 = 1024.0;

/// The paper's testbed has 36 cores; daemon CPU time contends with the
/// application in proportion to the cores it occupies.
const MACHINE_CORES: f64 = 36.0;

/// One evaluated configuration of one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfPoint {
    /// Fraction of execution cycles spent in page walks.
    pub walk_fraction: f64,
    /// Modeled total execution cycles (arbitrary but consistent units;
    /// ratios against a baseline give normalized performance).
    pub total_cycles: f64,
    /// Exposed walk cycles per sampled access.
    pub walk_cycles_per_access: f64,
}

impl PerfPoint {
    /// Normalized performance of `self` relative to `baseline` (higher is
    /// better).
    #[must_use]
    pub fn speedup_over(&self, baseline: &PerfPoint) -> f64 {
        baseline.total_cycles / self.total_cycles
    }

    /// Walk-cycle fraction of `self` normalized to `baseline`'s.
    #[must_use]
    pub fn walk_fraction_ratio(&self, baseline: &PerfPoint) -> f64 {
        if baseline.walk_fraction == 0.0 {
            0.0
        } else {
            self.walk_fraction / baseline.walk_fraction
        }
    }
}

/// Evaluates measurements into [`PerfPoint`]s, caching each application's
/// 4KB anchor run.
#[derive(Debug, Default)]
pub struct PerfModel {
    /// compute cycles per access, keyed by (workload, scale, seed,
    /// virtualized).
    anchors: HashMap<(String, u64, u64, bool), f64>,
}

impl PerfModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> PerfModel {
        PerfModel::default()
    }

    /// Raw walk cycles per access for a measurement.
    fn raw_walk(m: &Measurement) -> f64 {
        m.walk_cycles as f64 / m.samples as f64
    }

    /// Exposed (critical-path) walk cycles per access: the out-of-order
    /// core hides an application-specific fraction of walk latency, which
    /// is why walk-cycle reductions do not translate 1:1 into speedup
    /// (§4.1).
    fn exposed_walk(spec: &WorkloadSpec, m: &Measurement) -> f64 {
        Self::raw_walk(m) * (1.0 - spec.overlap)
    }

    /// The compute-cycles-per-access anchor for `spec`, measured by
    /// running the 4KB configuration on unfragmented memory (cached).
    /// The anchor uses *raw* walk cycles: `walk_fraction_4k` is the
    /// hardware-counter fraction (`DTLB_*.WALK_ACTIVE` over cycles),
    /// which counts walk activity whether or not it stalls retirement.
    pub fn compute_anchor(&mut self, spec: &WorkloadSpec, config: &SimConfig) -> f64 {
        self.anchor_for(spec, config, false)
    }

    /// The compute anchor for virtualized runs: measured from a 4KB+4KB
    /// run, so nested-walk inflation is absorbed by the anchor the same
    /// way the hardware counters would absorb it on the paper's testbed.
    pub fn compute_anchor_virt(&mut self, spec: &WorkloadSpec, config: &SimConfig) -> f64 {
        self.anchor_for(spec, config, true)
    }

    /// Seeds the anchor cache from an already-measured 4KB run, so
    /// drivers that schedule the anchor run as an explicit cell (the
    /// parallel [`runner`](crate::runner)) never trigger the hidden —
    /// and serial — anchor launch inside [`PerfModel::evaluate`].
    ///
    /// `m` must come from a [`PolicyKind::Base`] run (4KB+4KB under
    /// virtualization when `virt`) on unfragmented memory with no daemon
    /// cap, at the same scale and seed as `config` — the same conditions
    /// the lazy anchor run uses. A previously cached anchor wins, so
    /// priming after an evaluation is a no-op rather than a rebase.
    pub fn prime_anchor(
        &mut self,
        spec: &WorkloadSpec,
        config: &SimConfig,
        m: &Measurement,
        virt: bool,
    ) {
        let key = (
            spec.name.to_owned(),
            config.scale.divisor(),
            config.seed,
            virt,
        );
        let e4k = Self::raw_walk(m);
        let f = spec.walk_fraction_4k;
        self.anchors
            .entry(key)
            .or_insert_with(|| (e4k * (1.0 - f) / f).max(1.0));
    }

    fn anchor_for(&mut self, spec: &WorkloadSpec, config: &SimConfig, virt: bool) -> f64 {
        let key = (
            spec.name.to_owned(),
            config.scale.divisor(),
            config.seed,
            virt,
        );
        if let Some(&anchor) = self.anchors.get(&key) {
            return anchor;
        }
        let mut base_config = *config;
        base_config.fragment = None;
        base_config.daemon_cap = None;
        let m = if virt {
            let mut vs = crate::VirtSystem::launch(
                base_config,
                PolicyKind::Base,
                PolicyKind::Base,
                *spec,
                false,
            )
            .expect("4KB+4KB anchor run cannot fail");
            vs.settle();
            vs.measure()
        } else {
            let mut system = System::builder(base_config)
                .policy(PolicyKind::Base)
                .workload(*spec)
                .build()
                .expect("4KB anchor run cannot fail");
            system.settle();
            system.measure()
        };
        let e4k = Self::raw_walk(&m);
        let f = spec.walk_fraction_4k;
        let anchor = (e4k * (1.0 - f) / f).max(1.0);
        self.anchors.insert(key, anchor);
        anchor
    }

    /// Evaluates one native measurement into a [`PerfPoint`].
    pub fn evaluate(
        &mut self,
        spec: &WorkloadSpec,
        config: &SimConfig,
        m: &Measurement,
    ) -> PerfPoint {
        self.evaluate_with(spec, config, m, false)
    }

    /// Evaluates one virtualized measurement (uses the 4KB+4KB anchor).
    pub fn evaluate_virt(
        &mut self,
        spec: &WorkloadSpec,
        config: &SimConfig,
        m: &Measurement,
    ) -> PerfPoint {
        self.evaluate_with(spec, config, m, true)
    }

    fn evaluate_with(
        &mut self,
        spec: &WorkloadSpec,
        config: &SimConfig,
        m: &Measurement,
        virt: bool,
    ) -> PerfPoint {
        let cost = CostModel::default();
        let compute = self.anchor_for(spec, config, virt);
        let walk = Self::exposed_walk(spec, m);
        let per_access = compute + walk;
        let heap_pages = config
            .geo
            .pages_for_bytes(config.scale.apply(spec.footprint_bytes))
            .max(1) as f64;
        let total_accesses = heap_pages * TOUCHES_PER_PAGE;
        let app_cycles = per_access * total_accesses;
        // Fault latency is on the faulting thread's critical path.
        let fault_cycles = cost.ns_to_cycles(m.snapshot.total_fault_ns()) as f64;
        // Daemon CPU contends in proportion to machine occupancy.
        let contention = f64::from(spec.threads).min(MACHINE_CORES) / MACHINE_CORES;
        let daemon_cycles = cost.ns_to_cycles(m.snapshot.daemon_ns) as f64 * contention;
        PerfPoint {
            walk_fraction: walk / per_access,
            total_cycles: app_cycles + fault_cycles + daemon_cycles,
            walk_cycles_per_access: walk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_core::StatsSnapshot;
    use trident_tlb::TranslationStats;

    fn fake_measurement(samples: usize, walk_cycles: u64) -> Measurement {
        Measurement {
            samples,
            walks: walk_cycles / 200,
            walk_cycles,
            tlb: TranslationStats::default(),
            snapshot: StatsSnapshot::default(),
            trace: Vec::new(),
            trace_dropped: 0,
            profile: None,
            mapped_bytes: [0; trident_types::MAX_RUNGS],
            miss_by_chunk: Vec::new(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn fewer_walk_cycles_mean_higher_performance() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let config = {
            let mut c = SimConfig::at_scale(256);
            c.measure_samples = 4_000;
            c
        };
        let mut model = PerfModel::new();
        let slow = model.evaluate(&spec, &config, &fake_measurement(4_000, 800_000));
        let fast = model.evaluate(&spec, &config, &fake_measurement(4_000, 200_000));
        assert!(fast.speedup_over(&slow) > 1.0);
        assert!(fast.walk_fraction < slow.walk_fraction);
    }

    #[test]
    fn anchor_is_cached_across_evaluations() {
        let spec = WorkloadSpec::by_name("Btree").unwrap();
        let config = {
            let mut c = SimConfig::at_scale(256);
            c.measure_samples = 3_000;
            c.measure_tick_every = 1_500;
            c
        };
        let mut model = PerfModel::new();
        let a = model.compute_anchor(&spec, &config);
        let b = model.compute_anchor(&spec, &config);
        assert_eq!(a, b);
        assert_eq!(model.anchors.len(), 1);
    }

    #[test]
    fn primed_anchor_matches_lazy_anchor_run() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let config = {
            let mut c = SimConfig::at_scale(256);
            c.measure_samples = 3_000;
            c.measure_tick_every = 1_500;
            c
        };
        let mut lazy = PerfModel::new();
        let hidden = lazy.compute_anchor(&spec, &config);
        // Run the same Base cell explicitly, as the parallel runner does.
        let mut system = System::builder(config)
            .policy(PolicyKind::Base)
            .workload(spec)
            .build()
            .unwrap();
        system.settle();
        let m = system.measure();
        let mut primed = PerfModel::new();
        primed.prime_anchor(&spec, &config, &m, false);
        assert_eq!(primed.compute_anchor(&spec, &config), hidden);
    }

    #[test]
    fn mm_overhead_degrades_performance() {
        let spec = WorkloadSpec::by_name("Btree").unwrap();
        let config = {
            let mut c = SimConfig::at_scale(256);
            c.measure_samples = 3_000;
            c.measure_tick_every = 1_500;
            c
        };
        let mut model = PerfModel::new();
        let clean = model.evaluate(&spec, &config, &fake_measurement(3_000, 300_000));
        let mut costly = fake_measurement(3_000, 300_000);
        costly.snapshot.fault_ns = [0, 0, 4_000_000_000, 0, 0, 0]; // 4s of 1GB faults
        let burdened = model.evaluate(&spec, &config, &costly);
        assert!(clean.speedup_over(&burdened) > 1.0);
    }
}
