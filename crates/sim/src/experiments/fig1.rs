//! Figure 1: page sizes under native execution.
//!
//! Four configurations per application — 4KB, 2MB via THP, 2MB via
//! hugetlbfs, 1GB via hugetlbfs — reporting (a) the fraction of cycles in
//! page walks and (b) performance, both normalized to the 4KB run.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, row_config, ExpOptions};
use crate::{Cell, PerfModel, PolicyKind, Runner};

/// One bar of Figure 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Whether the paper shades this application as 1GB-sensitive.
    pub shaded: bool,
    /// Walk-cycle fraction normalized to the 4KB run (Fig 1a).
    pub walk_fraction_norm: f64,
    /// Performance normalized to the 4KB run (Fig 1b).
    pub perf_norm: f64,
    /// Raw walk-cycle fraction.
    pub walk_fraction: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// All bars, grouped by application.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering (one row per bar).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("workload,config,shaded,walk_fraction_norm,perf_norm,walk_fraction\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.workload,
                r.config,
                r.shaded,
                f3(r.walk_fraction_norm),
                f3(r.perf_norm),
                f3(r.walk_fraction),
            ));
        }
        out
    }

    /// Mean 1GB-hugetlbfs speedup over THP across the shaded set — the
    /// paper reports 12.5%.
    #[must_use]
    pub fn shaded_giant_gain_over_thp(&self) -> f64 {
        let mut gains = Vec::new();
        for w in self.rows.iter().filter(|r| r.shaded).map(|r| &r.workload) {
            let find = |cfg: &str| {
                self.rows
                    .iter()
                    .find(|r| &r.workload == w && r.config == cfg)
                    .map(|r| r.perf_norm)
            };
            if let (Some(thp), Some(giant)) = (find("2MB-THP"), find("1GB-Hugetlbfs")) {
                gains.push(giant / thp);
            }
        }
        gains.dedup();
        if gains.is_empty() {
            1.0
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        }
    }
}

/// The four bars per application, 4KB first (it doubles as the row's
/// performance-model anchor).
const KINDS: [PolicyKind; 4] = [
    PolicyKind::Base,
    PolicyKind::Thp,
    PolicyKind::HugetlbfsHuge,
    PolicyKind::HugetlbfsGiant,
];

/// Runs the experiment on the parallel runner: one cell per bar, one
/// anchored row per application.
pub fn run(opts: &ExpOptions) -> Result {
    let specs = WorkloadSpec::all();
    let mut cells = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let config = row_config(opts, row as u64);
        for kind in KINDS {
            cells.push(Cell {
                kind,
                spec: *spec,
                config,
            });
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    // Merge in plan order: the 4KB cell primes the row's anchor and acts
    // as the normalization baseline, exactly as a serial loop would.
    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let first = row * KINDS.len();
        let config = cells[first].config;
        let Some(base_m) = &measured[first] else {
            continue;
        };
        model.prime_anchor(spec, &config, base_m, false);
        let base = model.evaluate(spec, &config, base_m);
        for (k, kind) in KINDS.iter().enumerate() {
            let Some(m) = &measured[first + k] else {
                continue;
            };
            let point = model.evaluate(spec, &config, m);
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: kind.label(),
                shaded: spec.giant_sensitive,
                walk_fraction_norm: point.walk_fraction_ratio(&base),
                perf_norm: point.speedup_over(&base),
                walk_fraction: point.walk_fraction,
            });
        }
    }
    Result { rows }
}
