//! Figure 1: page sizes under native execution.
//!
//! Four configurations per application — 4KB, 2MB via THP, 2MB via
//! hugetlbfs, 1GB via hugetlbfs — reporting (a) the fraction of cycles in
//! page walks and (b) performance, both normalized to the 4KB run.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, run_native, ExpOptions};
use crate::{PerfModel, PolicyKind};

/// One bar of Figure 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Whether the paper shades this application as 1GB-sensitive.
    pub shaded: bool,
    /// Walk-cycle fraction normalized to the 4KB run (Fig 1a).
    pub walk_fraction_norm: f64,
    /// Performance normalized to the 4KB run (Fig 1b).
    pub perf_norm: f64,
    /// Raw walk-cycle fraction.
    pub walk_fraction: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// All bars, grouped by application.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering (one row per bar).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("workload,config,shaded,walk_fraction_norm,perf_norm,walk_fraction\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.workload,
                r.config,
                r.shaded,
                f3(r.walk_fraction_norm),
                f3(r.perf_norm),
                f3(r.walk_fraction),
            ));
        }
        out
    }

    /// Mean 1GB-hugetlbfs speedup over THP across the shaded set — the
    /// paper reports 12.5%.
    #[must_use]
    pub fn shaded_giant_gain_over_thp(&self) -> f64 {
        let mut gains = Vec::new();
        for w in self.rows.iter().filter(|r| r.shaded).map(|r| &r.workload) {
            let find = |cfg: &str| {
                self.rows
                    .iter()
                    .find(|r| &r.workload == w && r.config == cfg)
                    .map(|r| r.perf_norm)
            };
            if let (Some(thp), Some(giant)) = (find("2MB-THP"), find("1GB-Hugetlbfs")) {
                gains.push(giant / thp);
            }
        }
        gains.dedup();
        if gains.is_empty() {
            1.0
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        }
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for spec in WorkloadSpec::all() {
        let Some(base) = run_native(&mut model, &config, PolicyKind::Base, &spec) else {
            continue;
        };
        for kind in [
            PolicyKind::Base,
            PolicyKind::Thp,
            PolicyKind::HugetlbfsHuge,
            PolicyKind::HugetlbfsGiant,
        ] {
            let Some(run) = (if kind == PolicyKind::Base {
                Some(EvaluatedClone::from(&base))
            } else {
                run_native(&mut model, &config, kind, &spec).map(|r| EvaluatedClone::from(&r))
            }) else {
                continue;
            };
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: kind.label(),
                shaded: spec.giant_sensitive,
                walk_fraction_norm: run.point.walk_fraction_ratio(&base.point),
                perf_norm: run.point.speedup_over(&base.point),
                walk_fraction: run.point.walk_fraction,
            });
        }
    }
    Result { rows }
}

/// Small helper so the base run can be reused as its own row.
struct EvaluatedClone {
    point: crate::PerfPoint,
}

impl From<&crate::experiments::common::EvaluatedRun> for EvaluatedClone {
    fn from(r: &crate::experiments::common::EvaluatedRun) -> Self {
        EvaluatedClone { point: r.point }
    }
}
