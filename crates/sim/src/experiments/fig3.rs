//! Figure 3: memory mappable with each page size over the allocation
//! timeline, for Graph500 and SVM.
//!
//! The gap between the 2MB and 1GB lines is the memory that *cannot* be
//! served by 1GB pages at all — the structural argument for deploying all
//! large page sizes.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{PolicyKind, System};

/// One timeline point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Allocation step index (the x-axis "execution timeline").
    pub step: usize,
    /// GB mappable with 2MB pages (unscaled back to paper units).
    pub huge_gb: f64,
    /// GB mappable with 1GB pages.
    pub giant_gb: f64,
}

/// One application's timeline.
#[derive(Debug, Clone)]
pub struct Series {
    /// Application name.
    pub workload: String,
    /// The timeline.
    pub points: Vec<Point>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Graph500 and SVM series.
    pub series: Vec<Series>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,step,mappable_2mb_gb,mappable_1gb_gb\n");
        for s in &self.series {
            for p in &s.points {
                out.push_str(&format!(
                    "{},{},{:.2},{:.2}\n",
                    s.workload, p.step, p.huge_gb, p.giant_gb
                ));
            }
        }
        out
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let unscale = config.scale.divisor() as f64;
    let mut series = Vec::new();
    for name in ["Graph500", "SVM"] {
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        let system = System::builder(config)
            .policy(PolicyKind::Thp)
            .workload(spec)
            .build()
            .expect("unfragmented launch");
        let points = system
            .mappable_timeline
            .iter()
            .enumerate()
            .map(|(step, (huge, giant))| Point {
                step,
                huge_gb: *huge as f64 * unscale / (1u64 << 30) as f64,
                giant_gb: *giant as f64 * unscale / (1u64 << 30) as f64,
            })
            .collect();
        series.push(Series {
            workload: name.to_owned(),
            points,
        });
    }
    Result { series }
}
