//! Table 4: percentage of 1GB allocation attempts that fail for lack of
//! contiguous physical memory, at fault time versus promotion time,
//! under fragmentation.

use trident_core::AllocSite;
use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{PolicyKind, System};

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Failure rate at page-fault time, or `None` when the fault handler
    /// never attempted a 1GB allocation (the paper's "NA": no
    /// 1GB-mappable range existed at fault time).
    pub fault_failure_rate: Option<f64>,
    /// Failure rate during promotion (after compaction had its chance).
    pub promotion_failure_rate: Option<f64>,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per shaded application.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering (`NA` for never-attempted cells, as in the paper).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let fmt = |v: Option<f64>| match v {
            Some(r) => format!("{:.0}%", r * 100.0),
            None => "NA".to_owned(),
        };
        let mut out = String::from("workload,page_fault,promotion\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                r.workload,
                fmt(r.fault_failure_rate),
                fmt(r.promotion_failure_rate)
            ));
        }
        out
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config().fragmented();
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let mut system = System::launch(config, PolicyKind::Trident, spec).expect("trident launch");
        system.settle();
        rows.push(Row {
            workload: spec.name.to_owned(),
            fault_failure_rate: system.ctx.stats.giant_failure_rate(AllocSite::PageFault),
            promotion_failure_rate: system.ctx.stats.giant_failure_rate(AllocSite::Promotion),
        });
    }
    Result { rows }
}
