//! Table 4: percentage of 1GB allocation attempts that fail for lack of
//! contiguous physical memory, at fault time versus promotion time,
//! under fragmentation.

use trident_core::AllocSite;
use trident_workloads::WorkloadSpec;

use crate::experiments::common::{row_config, ExpOptions};
use crate::{PolicyKind, Runner, System};

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Failure rate at page-fault time, or `None` when the fault handler
    /// never attempted a 1GB allocation (the paper's "NA": no
    /// 1GB-mappable range existed at fault time).
    pub fault_failure_rate: Option<f64>,
    /// Failure rate during promotion (after compaction had its chance).
    pub promotion_failure_rate: Option<f64>,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per shaded application.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering (`NA` for never-attempted cells, as in the paper).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let fmt = |v: Option<f64>| match v {
            Some(r) => format!("{:.0}%", r * 100.0),
            None => "NA".to_owned(),
        };
        let mut out = String::from("workload,page_fault,promotion\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                r.workload,
                fmt(r.fault_failure_rate),
                fmt(r.promotion_failure_rate)
            ));
        }
        out
    }
}

/// Runs the experiment on the parallel runner: one cell per shaded
/// application, each a Trident run on fragmented memory.
pub fn run(opts: &ExpOptions) -> Result {
    let specs = WorkloadSpec::shaded();
    let cells: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(row, spec)| (*spec, row_config(opts, row as u64).fragmented()))
        .collect();
    let measured = Runner::new(opts.threads).map(&cells, |_, (spec, config)| {
        let mut system = System::builder(*config)
            .policy(PolicyKind::Trident)
            .workload(*spec)
            .build()
            .expect("trident launch");
        system.settle();
        let snap = system.ctx.snapshot();
        (
            snap.giant_failure_rate(AllocSite::PageFault),
            snap.giant_failure_rate(AllocSite::Promotion),
        )
    });
    let rows = specs
        .iter()
        .zip(measured)
        .map(|(spec, (fault, promotion))| Row {
            workload: spec.name.to_owned(),
            fault_failure_rate: fault,
            promotion_failure_rate: promotion,
        })
        .collect();
    Result { rows }
}
