//! Figure 2: page sizes under virtualized execution.
//!
//! The guest and host each use one page size: 4KB+4KB, 2MB+2MB (THP at
//! both levels), 1GB+1GB (hugetlbfs at both levels). Walk-cycle fraction
//! and performance are normalized to the 4KB+4KB run.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, row_config, ExpOptions};
use crate::{PerfModel, PerfPoint, PolicyKind, Runner, VirtCell, VirtSystem};

/// One bar of Figure 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Guest+host configuration label.
    pub config: &'static str,
    /// Shaded (1GB-sensitive) application.
    pub shaded: bool,
    /// Walk-cycle fraction normalized to 4KB+4KB.
    pub walk_fraction_norm: f64,
    /// Performance normalized to 4KB+4KB.
    pub perf_norm: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,shaded,walk_fraction_norm,perf_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.workload,
                r.config,
                r.shaded,
                f3(r.walk_fraction_norm),
                f3(r.perf_norm),
            ));
        }
        out
    }
}

pub(crate) fn run_virt_point(
    model: &mut PerfModel,
    config: &crate::SimConfig,
    host: PolicyKind,
    guest: PolicyKind,
    spec: &WorkloadSpec,
    fragment_guest: bool,
) -> Option<PerfPoint> {
    let mut vs = VirtSystem::launch(*config, host, guest, *spec, fragment_guest).ok()?;
    vs.settle();
    let m = vs.measure();
    Some(model.evaluate_virt(spec, config, &m))
}

/// Runs the full nine-combination matrix the paper mentions exploring
/// ("nine combinations of page sizes are possible. While we explored all,
/// we discuss only 4KB-4KB, 2MB-2MB, and 1GB-1GB"), for the shaded
/// applications. Labels are `guest+host`.
pub fn run_all_combos(opts: &ExpOptions) -> Result {
    let sizes: [(&'static str, PolicyKind); 3] = [
        ("4KB", PolicyKind::Base),
        ("2MB", PolicyKind::Thp),
        ("1GB", PolicyKind::HugetlbfsGiant),
    ];
    let specs = WorkloadSpec::shaded();
    // The 4KB+4KB combo is the first cell of each row: it is both the
    // normalization baseline and the row's virtualized anchor.
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let config = row_config(opts, row as u64);
        for (guest_label, guest) in sizes {
            for (host_label, host) in sizes {
                cells.push(VirtCell {
                    host,
                    guest,
                    spec: *spec,
                    config,
                    fragment_guest: false,
                });
                // Leak the combo label; there are only nine.
                let label: &'static str =
                    Box::leak(format!("{guest_label}+{host_label}").into_boxed_str());
                labels.push(label);
            }
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let per_row = sizes.len() * sizes.len();
    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let first = row * per_row;
        let config = cells[first].config;
        let Some(base_m) = &measured[first] else {
            continue;
        };
        model.prime_anchor(spec, &config, base_m, true);
        let base = model.evaluate_virt(spec, &config, base_m);
        for k in 0..per_row {
            let Some(m) = &measured[first + k] else {
                continue;
            };
            let point = model.evaluate_virt(spec, &config, m);
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: labels[first + k],
                shaded: spec.giant_sensitive,
                walk_fraction_norm: point.walk_fraction_ratio(&base),
                perf_norm: point.speedup_over(&base),
            });
        }
    }
    Result { rows }
}

/// Runs the experiment on the parallel runner: one cell per bar, with
/// each row's 4KB+4KB cell doubling as its virtualized anchor.
pub fn run(opts: &ExpOptions) -> Result {
    let combos: [(&'static str, PolicyKind, PolicyKind); 3] = [
        ("4KB+4KB", PolicyKind::Base, PolicyKind::Base),
        ("2MB+2MB", PolicyKind::Thp, PolicyKind::Thp),
        (
            "1GB+1GB",
            PolicyKind::HugetlbfsGiant,
            PolicyKind::HugetlbfsGiant,
        ),
    ];
    let specs = WorkloadSpec::all();
    let mut cells = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let config = row_config(opts, row as u64);
        for (_, host, guest) in combos {
            cells.push(VirtCell {
                host,
                guest,
                spec: *spec,
                config,
                fragment_guest: false,
            });
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let first = row * combos.len();
        let config = cells[first].config;
        let Some(base_m) = &measured[first] else {
            continue;
        };
        model.prime_anchor(spec, &config, base_m, true);
        let base = model.evaluate_virt(spec, &config, base_m);
        for (k, &(label, _, _)) in combos.iter().enumerate() {
            let Some(m) = &measured[first + k] else {
                continue;
            };
            let point = model.evaluate_virt(spec, &config, m);
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: label,
                shaded: spec.giant_sensitive,
                walk_fraction_norm: point.walk_fraction_ratio(&base),
                perf_norm: point.speedup_over(&base),
            });
        }
    }
    Result { rows }
}
