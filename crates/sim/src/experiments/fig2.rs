//! Figure 2: page sizes under virtualized execution.
//!
//! The guest and host each use one page size: 4KB+4KB, 2MB+2MB (THP at
//! both levels), 1GB+1GB (hugetlbfs at both levels). Walk-cycle fraction
//! and performance are normalized to the 4KB+4KB run.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, ExpOptions};
use crate::{PerfModel, PerfPoint, PolicyKind, VirtSystem};

/// One bar of Figure 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Guest+host configuration label.
    pub config: &'static str,
    /// Shaded (1GB-sensitive) application.
    pub shaded: bool,
    /// Walk-cycle fraction normalized to 4KB+4KB.
    pub walk_fraction_norm: f64,
    /// Performance normalized to 4KB+4KB.
    pub perf_norm: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,shaded,walk_fraction_norm,perf_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.workload,
                r.config,
                r.shaded,
                f3(r.walk_fraction_norm),
                f3(r.perf_norm),
            ));
        }
        out
    }
}

pub(crate) fn run_virt_point(
    model: &mut PerfModel,
    config: &crate::SimConfig,
    host: PolicyKind,
    guest: PolicyKind,
    spec: &WorkloadSpec,
    fragment_guest: bool,
) -> Option<PerfPoint> {
    let mut vs = VirtSystem::launch(*config, host, guest, *spec, fragment_guest).ok()?;
    vs.settle();
    let m = vs.measure();
    Some(model.evaluate_virt(spec, config, &m))
}

/// Runs the full nine-combination matrix the paper mentions exploring
/// ("nine combinations of page sizes are possible. While we explored all,
/// we discuss only 4KB-4KB, 2MB-2MB, and 1GB-1GB"), for the shaded
/// applications. Labels are `guest+host`.
pub fn run_all_combos(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let mut model = PerfModel::new();
    let sizes: [(&'static str, PolicyKind); 3] = [
        ("4KB", PolicyKind::Base),
        ("2MB", PolicyKind::Thp),
        ("1GB", PolicyKind::HugetlbfsGiant),
    ];
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let Some(base) = run_virt_point(
            &mut model,
            &config,
            PolicyKind::Base,
            PolicyKind::Base,
            &spec,
            false,
        ) else {
            continue;
        };
        for (guest_label, guest) in sizes {
            for (host_label, host) in sizes {
                let point = if guest == PolicyKind::Base && host == PolicyKind::Base {
                    Some(base)
                } else {
                    run_virt_point(&mut model, &config, host, guest, &spec, false)
                };
                let Some(point) = point else { continue };
                // Leak the combo label; there are only nine.
                let label: &'static str =
                    Box::leak(format!("{guest_label}+{host_label}").into_boxed_str());
                rows.push(Row {
                    workload: spec.name.to_owned(),
                    config: label,
                    shaded: spec.giant_sensitive,
                    walk_fraction_norm: point.walk_fraction_ratio(&base),
                    perf_norm: point.speedup_over(&base),
                });
            }
        }
    }
    Result { rows }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let mut model = PerfModel::new();
    let combos: [(&'static str, PolicyKind, PolicyKind); 3] = [
        ("4KB+4KB", PolicyKind::Base, PolicyKind::Base),
        ("2MB+2MB", PolicyKind::Thp, PolicyKind::Thp),
        (
            "1GB+1GB",
            PolicyKind::HugetlbfsGiant,
            PolicyKind::HugetlbfsGiant,
        ),
    ];
    let mut rows = Vec::new();
    for spec in WorkloadSpec::all() {
        let Some(base) =
            run_virt_point(&mut model, &config, combos[0].1, combos[0].2, &spec, false)
        else {
            continue;
        };
        for (label, host, guest) in combos {
            let point = if label == "4KB+4KB" {
                Some(base)
            } else {
                run_virt_point(&mut model, &config, host, guest, &spec, false)
            };
            let Some(point) = point else { continue };
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: label,
                shaded: spec.giant_sensitive,
                walk_fraction_norm: point.walk_fraction_ratio(&base),
                perf_norm: point.speedup_over(&base),
            });
        }
    }
    Result { rows }
}
