//! §4.3 side-experiment: the kernel's direct map.
//!
//! Linux direct-maps all of physical memory into kernel address space with
//! the largest available page size. The paper reports that OS-intensive
//! workloads (apache, filebench) run 2–3% faster when the direct map uses
//! 1GB instead of 2MB pages. We reproduce the effect by mapping a
//! direct-map address space at each size and driving it with an
//! OS-intensive access pattern (page-cache and inode touches scattered
//! across all of RAM).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trident_phys::{FrameUse, PhysicalMemory};
use trident_tlb::{TlbHierarchy, TranslationEngine, WalkCostModel};
use trident_types::{AsId, PageSize, Vpn};
use trident_vm::AddressSpace;

use crate::experiments::common::ExpOptions;

/// Fraction of kernel execution spent in page walks with 4KB mappings
/// (kernel code has better locality than the big-memory applications).
const KERNEL_WALK_FRACTION_4K: f64 = 0.12;

/// One direct-map configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Direct-map page size.
    pub size: PageSize,
    /// Architecture label of `size` for the CSV.
    pub label: String,
    /// Page walks over the sampled kernel accesses.
    pub walks: u64,
    /// Walk cycles.
    pub walk_cycles: u64,
    /// Kernel performance normalized to the 2MB direct map.
    pub perf_vs_huge: f64,
}

/// The side-experiment result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per page size.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("size,walks,walk_cycles,perf_vs_2mb\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.3}\n",
                r.label, r.walks, r.walk_cycles, r.perf_vs_huge
            ));
        }
        out
    }

    /// The top-rung-over-2MB kernel speedup (the paper's 2–3%).
    #[must_use]
    pub fn giant_gain(&self) -> f64 {
        self.rows.last().map(|r| r.perf_vs_huge).unwrap_or(1.0)
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let geo = config.geo;
    let total_pages = config.host_pages();
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    // Kernel objects are scattered over all of RAM; accesses mix a warm
    // slab/page-cache subset with cold sweeps (writeback, reclaim scans).
    let samples: Vec<Vpn> = (0..opts.samples)
        .map(|_| {
            if rng.gen_bool(0.7) {
                Vpn::new(rng.gen_range(0..total_pages / 8))
            } else {
                Vpn::new(rng.gen_range(0..total_pages))
            }
        })
        .collect();

    let mut measured = Vec::new();
    for size in geo.rungs() {
        // Build the direct map: all of physical memory, identity-mapped
        // at `size`. The backing frames are physical memory itself.
        let mut mem = PhysicalMemory::new(geo, total_pages);
        let mut space = AddressSpace::new(AsId::new(0), geo);
        space
            .mmap_at(Vpn::new(0), total_pages, trident_vm::VmaKind::File)
            .expect("fresh space");
        let span = geo.base_pages(size);
        let mut page = 0;
        while page + span <= total_pages {
            let pfn = mem
                .allocate(size, FrameUse::Kernel, None)
                .expect("identity map allocation");
            space
                .page_table_mut()
                .map(Vpn::new(page), pfn, size)
                .expect("identity map");
            page += span;
        }
        let mut engine =
            TranslationEngine::new(TlbHierarchy::with_geometry(geo), WalkCostModel::default());
        for vpn in &samples {
            if let Some(t) = space.page_table().translate(*vpn) {
                engine.translate(*vpn, t.size);
            }
        }
        let stats = *engine.stats();
        measured.push((size, stats.total_walks(), stats.total_walk_cycles()));
    }

    // Anchor kernel compute on the 4KB row and normalize against the
    // ladder's natural PMD-level (2MB-class) rung.
    let huge = geo
        .size_for_order(geo.level_order(2))
        .expect("every ladder has a natural level-2 rung");
    let e4k = measured[0].2 as f64 / opts.samples as f64;
    let compute = e4k * (1.0 - KERNEL_WALK_FRACTION_4K) / KERNEL_WALK_FRACTION_4K;
    let cycles = |walk_cycles: u64| compute + walk_cycles as f64 / opts.samples as f64;
    let huge_total = cycles(
        measured
            .iter()
            .find(|(s, _, _)| *s == huge)
            .expect("huge rung measured")
            .2,
    );
    let rows = measured
        .into_iter()
        .map(|(size, walks, walk_cycles)| Row {
            size,
            label: geo.label(size),
            walks,
            walk_cycles,
            perf_vs_huge: huge_total / cycles(walk_cycles),
        })
        .collect();
    Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giant_direct_map_beats_huge_by_a_few_percent() {
        let opts = ExpOptions {
            scale: 64,
            samples: 40_000,
            seed: 7,
            threads: 0,
            trace_capacity: None,
            profile: false,
        };
        let r = run(&opts);
        let gain = r.giant_gain();
        // The paper reports 2–3%; accept a 1–8% band for the model.
        assert!((1.01..1.08).contains(&gain), "kernel giant gain {gain}");
        // And 4KB should be clearly worse than 2MB.
        assert!(r.rows[0].perf_vs_huge < 1.0);
    }
}
