//! Figure 4: relative TLB-miss frequency across the virtual address
//! space, colored by whether each region is 1GB-mappable.
//!
//! Reproduces the paper's methodology: the application runs on 4KB PTEs,
//! accessed bits proxy TLB misses (we count actual simulated misses per
//! giant-aligned chunk), and each chunk is classified as 1GB-mappable or
//! only-2MB-mappable from the VMA layout. The paper's observation — the
//! 1GB-*unmappable* regions take frequent misses — is what justifies
//! backing them with 2MB pages.

use std::collections::HashSet;

use trident_types::PageSize;
use trident_vm::mappable_ranges;
use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{PolicyKind, System};

/// Mappability class of a virtual chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkClass {
    /// The giant-aligned chunk lies fully inside a VMA.
    GiantMappable,
    /// Parts are huge-mappable but the chunk cannot take a 1GB page.
    HugeOnly,
}

/// One giant-aligned chunk of the address space.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Chunk index (x-axis: "allocated virtual address regions").
    pub chunk: u64,
    /// TLB misses observed in the chunk (relative frequency).
    pub misses: u64,
    /// Mappability class (the bar color).
    pub class: ChunkClass,
}

/// One application's profile.
#[derive(Debug, Clone)]
pub struct Series {
    /// Application name.
    pub workload: String,
    /// Chunk rows in address order.
    pub rows: Vec<Row>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Graph500 and SVM profiles.
    pub series: Vec<Series>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,chunk,misses,class\n");
        for s in &self.series {
            for r in &s.rows {
                let class = match r.class {
                    ChunkClass::GiantMappable => "1GB-mappable",
                    ChunkClass::HugeOnly => "2MB-only",
                };
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    s.workload, r.chunk, r.misses, class
                ));
            }
        }
        out
    }

    /// Total misses landing on 1GB-unmappable chunks, per series — the
    /// quantity the paper circles for Graph500.
    #[must_use]
    pub fn huge_only_miss_share(&self, workload: &str) -> f64 {
        let Some(s) = self.series.iter().find(|s| s.workload == workload) else {
            return 0.0;
        };
        let total: u64 = s.rows.iter().map(|r| r.misses).sum();
        let huge_only: u64 = s
            .rows
            .iter()
            .filter(|r| r.class == ChunkClass::HugeOnly)
            .map(|r| r.misses)
            .sum();
        if total == 0 {
            0.0
        } else {
            huge_only as f64 / total as f64
        }
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let mut series = Vec::new();
    for name in ["Graph500", "SVM"] {
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        // 4KB pages per the measurement methodology.
        let mut system = System::builder(config)
            .policy(PolicyKind::Base)
            .workload(spec)
            .build()
            .expect("unfragmented launch");
        let m = system.measure();
        let geo = config.geo;
        let giant_chunks: HashSet<u64> = mappable_ranges(system.space(), PageSize::new(2))
            .into_iter()
            .map(|vpn| geo.giant_region_of(vpn.raw()))
            .collect();
        let rows = m
            .miss_by_chunk
            .iter()
            .map(|&(chunk, misses)| Row {
                chunk,
                misses,
                class: if giant_chunks.contains(&chunk) {
                    ChunkClass::GiantMappable
                } else {
                    ChunkClass::HugeOnly
                },
            })
            .collect();
        series.push(Series {
            workload: name.to_owned(),
            rows,
        });
    }
    Result { series }
}
