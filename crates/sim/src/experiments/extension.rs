//! Extension study (beyond the paper's figures): how the paper's argument
//! strengthens on upcoming hardware.
//!
//! §4.3 motivates 1GB enablement with "denser NVM technologies and
//! five-level page tables". This experiment quantifies that trajectory:
//! worst-case walk accesses per page-size combination under four- versus
//! five-level tables, and the *measured* average walk cost once realistic
//! page-walk caches are accounted for.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trident_tlb::{nested_walk_accesses_at, walk_accesses_at, PageTableDepth, PageWalkCache};
use trident_types::{PageGeometry, PageSize, Vpn, GIB};

use crate::experiments::common::ExpOptions;

/// One page-size row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Page size (same at both levels for the nested columns).
    pub size: PageSize,
    /// Architecture label of `size` for the CSV.
    pub label: String,
    /// Native walk accesses, four-level tables.
    pub native_4l: u64,
    /// Native walk accesses, five-level tables.
    pub native_5l: u64,
    /// Nested (same size at both levels), four-level.
    pub nested_4l: u64,
    /// Nested, five-level.
    pub nested_5l: u64,
    /// Measured *average* native walk accesses with page-walk caches, for
    /// a uniform-random working set larger than the PWC reach.
    pub pwc_avg: f64,
}

/// The study result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per page size.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("size,native_4level,native_5level,nested_4level,nested_5level,pwc_avg\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{:.2}\n",
                r.label, r.native_4l, r.native_5l, r.nested_4l, r.nested_5l, r.pwc_avg
            ));
        }
        out
    }
}

/// Runs the study.
pub fn run(opts: &ExpOptions) -> Result {
    let geo = PageGeometry::X86_64;
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let footprint_pages = geo.pages_for_bytes(64 * GIB);
    let rows = geo
        .rungs()
        .map(|size| {
            // Average PWC-adjusted walk cost over random pages of a 64GB
            // working set (well beyond every PWC's reach at 4KB, within
            // the PML4 entry's at 1GB).
            let mut pwc = PageWalkCache::skylake(geo);
            let samples = opts.samples.max(1);
            let total: u64 = (0..samples)
                .map(|_| pwc.walk_accesses(Vpn::new(rng.gen_range(0..footprint_pages)), size))
                .sum();
            Row {
                size,
                label: geo.label(size),
                native_4l: walk_accesses_at(&geo, size, PageTableDepth::FourLevel),
                native_5l: walk_accesses_at(&geo, size, PageTableDepth::FiveLevel),
                nested_4l: nested_walk_accesses_at(&geo, size, size, PageTableDepth::FourLevel),
                nested_5l: nested_walk_accesses_at(&geo, size, size, PageTableDepth::FiveLevel),
                pwc_avg: total as f64 / samples as f64,
            }
        })
        .collect();
    Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_level_widens_the_giant_advantage() {
        let r = run(&ExpOptions::quick());
        let base = &r.rows[0];
        let giant = &r.rows[2];
        // Worst-case nested gap grows from 24-8=16 to 35-15=20 accesses.
        assert_eq!(base.nested_4l - giant.nested_4l, 16);
        assert_eq!(base.nested_5l - giant.nested_5l, 20);
        // PWC compresses 4KB walks below the worst case but giant pages
        // stay cheaper even then.
        assert!(base.pwc_avg < base.native_4l as f64);
        assert!(giant.pwc_avg <= base.pwc_avg);
    }
}
