//! Ladder study (beyond the paper's figures): the same machine and
//! workloads under every shipped architecture ladder.
//!
//! The paper's argument is made on x86-64's three-rung ladder (4KB, 2MB,
//! 1GB). Other ISAs offer *more* rungs with different semantics: RISC-V
//! SVNAPOT adds a 64KB group page whose walk is still a full PTE-level
//! walk (the win is TLB reach), and AArch64's contiguous bit coalesces
//! 16 PTEs or PMDs into one TLB entry without any page-table reshaping.
//! This experiment runs the identical workload, machine and seed under
//! each ladder and reports translation behaviour (walks, walk cycles)
//! and the top-rung fragmentation experience (FMFI), plus the
//! architectural worst-case walk accesses for every rung.

use trident_tlb::{walk_accesses_at, PageTableDepth};
use trident_types::PageGeometry;
use trident_workloads::WorkloadSpec;

use crate::config::scaled_geometry_for;
use crate::experiments::common::{row_config, ExpOptions};
use crate::{Cell, PolicyKind, Runner};

/// The shipped ladders, in the order the CSV reports them.
const ARCHES: [PageGeometry; 3] = [
    PageGeometry::X86_64,
    PageGeometry::RISCV_SV48,
    PageGeometry::AARCH64,
];

/// Architecture ids in reporting order, for callers timing each ladder
/// on its own (the bench matrix's per-geometry records).
pub const GEOMETRY_NAMES: [&str; 3] = ["x86_64", "sv48", "aarch64"];

/// Workloads contrasting the ladders: GUPS stresses TLB reach with
/// uniform random access; Redis grows incrementally, exercising the
/// promotion ladder rung by rung.
const WORKLOADS: [&str; 2] = ["GUPS", "Redis"];

/// One measured (geometry, workload) run.
#[derive(Debug, Clone)]
pub struct Row {
    /// Architecture id (`"x86_64"`, `"sv48"`, `"aarch64"`).
    pub geometry: &'static str,
    /// Application.
    pub workload: String,
    /// Rungs surviving at this run's scale.
    pub rung_count: usize,
    /// The ladder's size-class labels, `+`-joined in ascending order.
    pub ladder: String,
    /// TLB-miss page walks over the sampled accesses.
    pub walks: u64,
    /// Cycles spent translating.
    pub walk_cycles: u64,
    /// The tenant's top-rung fragmentation experience in thousandths
    /// (fraction of resident bytes not top-rung-backed).
    pub fmfi_milli: u64,
    /// MB mapped at the ladder's largest rung at measurement end.
    pub top_mapped_mb: u64,
}

/// One architectural rung: its worst-case walk cost and semantics.
#[derive(Debug, Clone)]
pub struct WalkRow {
    /// Architecture id.
    pub geometry: &'static str,
    /// Size-class label.
    pub label: String,
    /// `leaf`, `napot`, or `contig` — how the rung is encoded.
    pub kind: &'static str,
    /// Worst-case walk accesses, four-level tables. Group rungs walk at
    /// their backing level: SVNAPOT and contiguous hints buy TLB reach,
    /// never a shorter walk.
    pub walk_accesses_4l: u64,
}

/// The study result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One measured row per (geometry, workload).
    pub rows: Vec<Row>,
    /// One architectural row per (geometry, rung), at full scale.
    pub walk_rows: Vec<WalkRow>,
}

impl Result {
    /// CSV rendering of the measured runs.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "geometry,workload,rungs,ladder,walks,walk_cycles,fmfi_milli,top_mapped_mb\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.geometry,
                r.workload,
                r.rung_count,
                r.ladder,
                r.walks,
                r.walk_cycles,
                r.fmfi_milli,
                r.top_mapped_mb,
            ));
        }
        out
    }

    /// CSV rendering of the per-rung walk-cost table.
    #[must_use]
    pub fn to_walk_csv(&self) -> String {
        let mut out = String::from("geometry,size,kind,walk_accesses_4level\n");
        for r in &self.walk_rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.geometry, r.label, r.kind, r.walk_accesses_4l
            ));
        }
        out
    }
}

fn rung_kind(geo: &PageGeometry, size: trident_types::PageSize) -> &'static str {
    let class = geo.class(size);
    if class.napot {
        "napot"
    } else if class.contiguous_span.is_some() {
        "contig"
    } else {
        "leaf"
    }
}

/// Runs the study on the parallel runner: one cell per (geometry,
/// workload), the same row seed for all ladders of one workload so the
/// comparison uses common random numbers.
pub fn run(opts: &ExpOptions) -> Result {
    run_arches(opts, &ARCHES)
}

/// Runs the study restricted to one shipped architecture (both
/// workloads, same row seeds as the full study). Returns `None` for an
/// unknown id; see [`GEOMETRY_NAMES`] for the valid ones.
pub fn run_geometry(opts: &ExpOptions, name: &str) -> Option<Result> {
    ARCHES
        .iter()
        .find(|arch| arch.name() == name)
        .map(|arch| run_arches(opts, std::slice::from_ref(arch)))
}

fn run_arches(opts: &ExpOptions, arches: &[PageGeometry]) -> Result {
    let specs: Vec<WorkloadSpec> = WORKLOADS
        .iter()
        .map(|name| WorkloadSpec::by_name(name).expect("built-in workload"))
        .collect();
    let mut cells = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        for arch in arches {
            let mut config = row_config(opts, row as u64);
            config.geo = scaled_geometry_for(arch, opts.scale);
            cells.push(Cell {
                kind: PolicyKind::Trident,
                spec: *spec,
                config,
            });
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let mut rows = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let Some(m) = &measured[i] else {
            continue;
        };
        let geo = cell.config.geo;
        let top = geo.largest();
        let ladder = geo
            .rungs()
            .map(|s| geo.label(s))
            .collect::<Vec<_>>()
            .join("+");
        rows.push(Row {
            geometry: geo.name(),
            workload: cell.spec.name.to_owned(),
            rung_count: geo.rung_count(),
            ladder,
            walks: m.walks,
            walk_cycles: m.walk_cycles,
            fmfi_milli: m
                .tenants
                .first()
                .map_or(0, |t| (t.fmfi_giant * 1000.0).round() as u64),
            top_mapped_mb: m.mapped_bytes[top.rung()] >> 20,
        });
    }

    // The walk table describes the architecture, not the scaled machine:
    // report the full-scale ladders.
    let walk_rows = arches
        .iter()
        .flat_map(|arch| {
            arch.rungs().map(|size| WalkRow {
                geometry: arch.name(),
                label: arch.label(size),
                kind: rung_kind(arch, size),
                walk_accesses_4l: walk_accesses_at(arch, size, PageTableDepth::FourLevel),
            })
        })
        .collect();
    Result { rows, walk_rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize) -> ExpOptions {
        ExpOptions {
            scale: 64,
            samples: 8_000,
            seed: 42,
            threads,
            trace_capacity: None,
            profile: false,
        }
    }

    #[test]
    fn every_ladder_runs_and_walk_table_matches_the_architectures() {
        let r = run(&opts(0));
        assert_eq!(r.rows.len(), WORKLOADS.len() * ARCHES.len());
        // At scale 1/64 every shipped ladder keeps all its rungs.
        for row in &r.rows {
            let expected = match row.geometry {
                "x86_64" => 3,
                "sv48" => 4,
                "aarch64" => 5,
                other => panic!("unexpected geometry {other}"),
            };
            assert_eq!(row.rung_count, expected, "{}", row.geometry);
            assert!(row.walks > 0 && row.walk_cycles > 0);
        }
        // Group rungs walk at their backing level: the sv48 64KB NAPOT
        // rung costs exactly a PTE-level walk, and AArch64's contiguous
        // rungs cost their level's walk.
        let walk = |geometry: &str, label: &str| {
            r.walk_rows
                .iter()
                .find(|w| w.geometry == geometry && w.label == label)
                .unwrap_or_else(|| panic!("{geometry}/{label} missing"))
                .clone()
        };
        assert_eq!(walk("sv48", "64KB").kind, "napot");
        assert_eq!(
            walk("sv48", "64KB").walk_accesses_4l,
            walk("sv48", "4KB").walk_accesses_4l
        );
        assert_eq!(walk("aarch64", "32MB").kind, "contig");
        assert_eq!(
            walk("aarch64", "32MB").walk_accesses_4l,
            walk("aarch64", "2MB").walk_accesses_4l
        );
        assert!(walk("x86_64", "1GB").walk_accesses_4l < walk("x86_64", "4KB").walk_accesses_4l);
    }

    #[test]
    fn run_geometry_matches_the_full_study() {
        let full = run(&opts(0)).to_csv();
        let solo = run_geometry(&opts(0), "sv48").expect("shipped id").to_csv();
        for row in solo.lines().skip(1) {
            assert!(
                full.contains(row),
                "solo row {row:?} missing from full study"
            );
        }
        assert!(run_geometry(&opts(0), "pdp11").is_none());
    }

    #[test]
    fn results_are_thread_count_independent() {
        let serial = run(&opts(1));
        let parallel = run(&opts(4));
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_walk_csv(), parallel.to_walk_csv());
    }
}
