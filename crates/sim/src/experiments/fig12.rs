//! Figure 12: performance under virtualization with the same system
//! deployed at both levels — THP+THP, HawkEye+HawkEye, Trident+Trident.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, ExpOptions};
use crate::experiments::fig2::run_virt_point;
use crate::{PerfModel, PolicyKind};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Performance normalized to THP+THP.
    pub perf_norm: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,perf_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                r.workload,
                r.config,
                f3(r.perf_norm)
            ));
        }
        out
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let config = opts.config();
    let mut model = PerfModel::new();
    let combos: [(&'static str, PolicyKind); 3] = [
        ("2MB+2MB-THP", PolicyKind::Thp),
        ("HawkEye+HawkEye", PolicyKind::HawkEye),
        ("Trident+Trident", PolicyKind::Trident),
    ];
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let Some(thp) = run_virt_point(
            &mut model,
            &config,
            PolicyKind::Thp,
            PolicyKind::Thp,
            &spec,
            false,
        ) else {
            continue;
        };
        for (label, kind) in combos {
            let point = if kind == PolicyKind::Thp {
                Some(thp)
            } else {
                run_virt_point(&mut model, &config, kind, kind, &spec, false)
            };
            let Some(point) = point else { continue };
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: label,
                perf_norm: point.speedup_over(&thp),
            });
        }
    }
    Result { rows }
}
