//! Table 5: p99 request latency for Redis and Memcached under 4KB, THP
//! and Trident, with and without fragmentation — showing Trident does not
//! hurt tails despite dynamically managing 1GB pages.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{row_config, ExpOptions};
use crate::{request_p99_ms, Cell, LatencyModel, PolicyKind, Runner};

/// One cell of Table 5.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application (Redis or Memcached).
    pub workload: String,
    /// Whether memory was fragmented.
    pub fragmented: bool,
    /// Configuration label.
    pub config: &'static str,
    /// p99 request latency in milliseconds.
    pub p99_ms: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Result {
    /// All cells.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,fragmented,config,p99_ms\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.2}\n",
                r.workload, r.fragmented, r.config, r.p99_ms
            ));
        }
        out
    }

    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, workload: &str, fragmented: bool, config: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.fragmented == fragmented && r.config == config)
            .map(|r| r.p99_ms)
    }
}

/// Runs the experiment on the parallel runner. The three policy cells of
/// one (workload, fragmentation) group share a seed, so the paired
/// 4KB-vs-Trident tail comparison uses common random numbers.
pub fn run(opts: &ExpOptions) -> Result {
    let kinds = [PolicyKind::Base, PolicyKind::Thp, PolicyKind::Trident];
    let mut cells = Vec::new();
    let mut plan = Vec::new();
    let mut group = 0u64;
    for name in ["Redis", "Memcached"] {
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        for fragmented in [false, true] {
            let mut config = row_config(opts, group);
            group += 1;
            if fragmented {
                config = config.fragmented();
            }
            for kind in kinds {
                cells.push(Cell { kind, spec, config });
                plan.push((name, fragmented));
            }
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let mut rows = Vec::new();
    for ((cell, (name, fragmented)), m) in cells.iter().zip(plan).zip(measured) {
        let Some(m) = m else { continue };
        let latency_model = match name {
            "Redis" => LatencyModel::redis(),
            _ => LatencyModel::memcached(),
        };
        rows.push(Row {
            workload: name.to_owned(),
            fragmented,
            config: cell.kind.label(),
            p99_ms: request_p99_ms(&latency_model, &m, cell.config.seed),
        });
    }
    Result { rows }
}
