//! Table 5: p99 request latency for Redis and Memcached under 4KB, THP
//! and Trident, with and without fragmentation — showing Trident does not
//! hurt tails despite dynamically managing 1GB pages.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{request_p99_ms, LatencyModel, PolicyKind, System};

/// One cell of Table 5.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application (Redis or Memcached).
    pub workload: String,
    /// Whether memory was fragmented.
    pub fragmented: bool,
    /// Configuration label.
    pub config: &'static str,
    /// p99 request latency in milliseconds.
    pub p99_ms: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Result {
    /// All cells.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,fragmented,config,p99_ms\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.2}\n",
                r.workload, r.fragmented, r.config, r.p99_ms
            ));
        }
        out
    }

    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, workload: &str, fragmented: bool, config: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.fragmented == fragmented && r.config == config)
            .map(|r| r.p99_ms)
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let mut rows = Vec::new();
    for name in ["Redis", "Memcached"] {
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        let latency_model = match name {
            "Redis" => LatencyModel::redis(),
            _ => LatencyModel::memcached(),
        };
        for fragmented in [false, true] {
            for kind in [PolicyKind::Base, PolicyKind::Thp, PolicyKind::Trident] {
                let mut config = opts.config();
                if fragmented {
                    config = config.fragmented();
                }
                let Ok(mut system) = System::launch(config, kind, spec) else {
                    continue;
                };
                system.settle();
                let m = system.measure();
                rows.push(Row {
                    workload: name.to_owned(),
                    fragmented,
                    config: kind.label(),
                    p99_ms: request_p99_ms(&latency_model, &m, opts.seed),
                });
            }
        }
    }
    Result { rows }
}
