//! Figure 7: reduction in bytes copied by smart compaction over normal
//! compaction, on fragmented memory.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{PolicyKind, System};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Bytes copied by compaction under normal compaction.
    pub normal_bytes: u64,
    /// Bytes copied under smart compaction.
    pub smart_bytes: u64,
    /// Percentage reduction (the figure's y-axis).
    pub reduction_pct: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per shaded application.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,normal_bytes,smart_bytes,reduction_pct\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.1}\n",
                r.workload, r.normal_bytes, r.smart_bytes, r.reduction_pct
            ));
        }
        out
    }
}

fn copied_bytes(opts: &ExpOptions, kind: PolicyKind, spec: &WorkloadSpec) -> u64 {
    let config = opts.config().fragmented();
    let mut system = System::builder(config)
        .policy(kind)
        .workload(*spec)
        .build()
        .expect("trident launch");
    system.settle();
    system.ctx.snapshot().compaction_bytes_copied
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let normal = copied_bytes(opts, PolicyKind::TridentNC, &spec);
        let smart = copied_bytes(opts, PolicyKind::Trident, &spec);
        let reduction = if normal == 0 {
            0.0
        } else {
            (1.0 - smart as f64 / normal as f64) * 100.0
        };
        rows.push(Row {
            workload: spec.name.to_owned(),
            normal_bytes: normal,
            smart_bytes: smart,
            reduction_pct: reduction,
        });
    }
    Result { rows }
}
