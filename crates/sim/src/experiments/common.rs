//! Shared experiment plumbing.

use crate::SimConfig;

/// Command-line-tunable options shared by every experiment binary.
/// (Flag parsing lives downstream in `trident_bench::args`; this crate
/// only defines the option set and its mapping to [`SimConfig`].)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpOptions {
    /// Memory-scale divisor (DESIGN.md §2; default 32 for the binaries).
    pub scale: u64,
    /// Sampled accesses per measurement.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel runner (`0` = one per core).
    /// Results are bit-identical for every value — see DESIGN.md's
    /// determinism contract.
    pub threads: usize,
    /// Ring-tracer capacity, in events (`None` = tracing off). Tracing
    /// never changes results — see DESIGN.md §8.
    pub trace_capacity: Option<usize>,
    /// Fold a live [`trident_prof::Profile`] during measurement
    /// (DESIGN.md §9). Profiling never changes results.
    pub profile: bool,
}

impl ExpOptions {
    /// Options for quick runs (integration tests).
    #[must_use]
    pub fn quick() -> ExpOptions {
        ExpOptions {
            scale: 256,
            samples: 8_000,
            seed: 42,
            threads: 0,
            trace_capacity: None,
            profile: false,
        }
    }

    /// Builds the base [`SimConfig`] for these options.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut c = SimConfig::at_scale(self.scale);
        c.measure_samples = self.samples;
        c.measure_tick_every = (self.samples / 6).max(1);
        c.seed = self.seed;
        c.trace_capacity = self.trace_capacity;
        c.profile = self.profile;
        c
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 32,
            samples: 120_000,
            seed: 42,
            threads: 0,
            trace_capacity: None,
            profile: false,
        }
    }
}

/// The configuration for row `row` of an anchored experiment grid: the
/// base options with the seed replaced by [`derive_cell_seed`] of
/// `(opts.seed, row)`. All cells of one row (the row's baseline, its
/// anchor, and every policy under test) share the row seed, so paired
/// comparisons use common random numbers while distinct rows draw
/// decorrelated streams.
///
/// [`derive_cell_seed`]: crate::runner::derive_cell_seed
pub(crate) fn row_config(opts: &ExpOptions, row: u64) -> SimConfig {
    let mut c = opts.config();
    c.seed = crate::runner::derive_cell_seed(opts.seed, row);
    c
}

/// Formats a float with 3 decimals for CSV output.
pub(crate) fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_documented_binaries() {
        let opts = ExpOptions::default();
        assert_eq!(opts.scale, 32);
        assert_eq!(opts.samples, 120_000);
        assert_eq!(opts.trace_capacity, None);
        assert!(!opts.profile);
    }

    #[test]
    fn config_wires_samples_into_tick_cadence() {
        let opts = ExpOptions {
            scale: 64,
            samples: 60_000,
            seed: 1,
            threads: 1,
            trace_capacity: None,
            profile: false,
        };
        let c = opts.config();
        assert_eq!(c.measure_samples, 60_000);
        assert_eq!(c.measure_tick_every, 10_000);
        assert_eq!(c.scale.divisor(), 64);
    }
}
