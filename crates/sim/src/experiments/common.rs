//! Shared experiment plumbing.

use crate::SimConfig;

/// Command-line-tunable options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpOptions {
    /// Memory-scale divisor (DESIGN.md §2; default 32 for the binaries).
    pub scale: u64,
    /// Sampled accesses per measurement.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel runner (`0` = one per core).
    /// Results are bit-identical for every value — see DESIGN.md's
    /// determinism contract.
    pub threads: usize,
    /// Ring-tracer capacity, in events (`None` = tracing off). Tracing
    /// never changes results — see DESIGN.md §8.
    pub trace_capacity: Option<usize>,
    /// Fold a live [`trident_prof::Profile`] during measurement
    /// (DESIGN.md §9). Profiling never changes results.
    pub profile: bool,
}

impl ExpOptions {
    /// Options for quick runs (integration tests).
    #[must_use]
    pub fn quick() -> ExpOptions {
        ExpOptions {
            scale: 256,
            samples: 8_000,
            seed: 42,
            threads: 0,
            trace_capacity: None,
            profile: false,
        }
    }

    /// Parses `--scale N`, `--samples N`, `--seed N`, `--threads N`,
    /// `--trace N` and `--profile` from an argument list, starting from
    /// the defaults.
    #[must_use]
    pub fn from_args(args: &[String]) -> ExpOptions {
        let mut opts = ExpOptions::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut set = |target: &mut u64| {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    *target = v;
                }
            };
            match arg.as_str() {
                "--scale" => set(&mut opts.scale),
                "--seed" => set(&mut opts.seed),
                "--samples" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        opts.samples = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        opts.threads = v;
                    }
                }
                "--trace" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        opts.trace_capacity = Some(v);
                    }
                }
                "--profile" => opts.profile = true,
                _ => {}
            }
        }
        opts
    }

    /// Builds the base [`SimConfig`] for these options.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut c = SimConfig::at_scale(self.scale);
        c.measure_samples = self.samples;
        c.measure_tick_every = (self.samples / 6).max(1);
        c.seed = self.seed;
        c.trace_capacity = self.trace_capacity;
        c.profile = self.profile;
        c
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 32,
            samples: 120_000,
            seed: 42,
            threads: 0,
            trace_capacity: None,
            profile: false,
        }
    }
}

/// The configuration for row `row` of an anchored experiment grid: the
/// base options with the seed replaced by [`derive_cell_seed`] of
/// `(opts.seed, row)`. All cells of one row (the row's baseline, its
/// anchor, and every policy under test) share the row seed, so paired
/// comparisons use common random numbers while distinct rows draw
/// decorrelated streams.
///
/// [`derive_cell_seed`]: crate::runner::derive_cell_seed
pub(crate) fn row_config(opts: &ExpOptions, row: u64) -> SimConfig {
    let mut c = opts.config();
    c.seed = crate::runner::derive_cell_seed(opts.seed, row);
    c
}

/// Formats a float with 3 decimals for CSV output.
pub(crate) fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_parses_known_flags_and_ignores_noise() {
        let args: Vec<String> = [
            "--scale",
            "64",
            "--noise",
            "--samples",
            "9000",
            "--seed",
            "7",
            "--threads",
            "3",
            "--fragment",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = ExpOptions::from_args(&args);
        assert_eq!(opts.scale, 64);
        assert_eq!(opts.samples, 9000);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.trace_capacity, None);
        assert!(!opts.profile);
    }

    #[test]
    fn from_args_parses_profile_flag() {
        let args: Vec<String> = ["--profile"].iter().map(|s| s.to_string()).collect();
        let opts = ExpOptions::from_args(&args);
        assert!(opts.profile);
        assert!(opts.config().profile);
    }

    #[test]
    fn from_args_parses_trace_capacity() {
        let args: Vec<String> = ["--trace", "65536"].iter().map(|s| s.to_string()).collect();
        let opts = ExpOptions::from_args(&args);
        assert_eq!(opts.trace_capacity, Some(65536));
    }

    #[test]
    fn from_args_defaults_when_empty() {
        let opts = ExpOptions::from_args(&[]);
        assert_eq!(opts, ExpOptions::default());
        assert_eq!(opts.scale, 32);
    }

    #[test]
    fn config_wires_samples_into_tick_cadence() {
        let opts = ExpOptions {
            scale: 64,
            samples: 60_000,
            seed: 1,
            threads: 1,
            trace_capacity: None,
            profile: false,
        };
        let c = opts.config();
        assert_eq!(c.measure_samples, 60_000);
        assert_eq!(c.measure_tick_every, 10_000);
        assert_eq!(c.scale.divisor(), 64);
    }
}
