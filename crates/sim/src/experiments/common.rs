//! Shared experiment plumbing.

use trident_workloads::WorkloadSpec;

use crate::{Measurement, PerfModel, PerfPoint, PolicyKind, SimConfig, System};

/// Command-line-tunable options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpOptions {
    /// Memory-scale divisor (DESIGN.md §2; default 32 for the binaries).
    pub scale: u64,
    /// Sampled accesses per measurement.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExpOptions {
    /// Options for quick runs (integration tests).
    #[must_use]
    pub fn quick() -> ExpOptions {
        ExpOptions {
            scale: 256,
            samples: 8_000,
            seed: 42,
        }
    }

    /// Parses `--scale N`, `--samples N` and `--seed N` from an argument
    /// list, starting from the defaults.
    #[must_use]
    pub fn from_args(args: &[String]) -> ExpOptions {
        let mut opts = ExpOptions::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut set = |target: &mut u64| {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    *target = v;
                }
            };
            match arg.as_str() {
                "--scale" => set(&mut opts.scale),
                "--seed" => set(&mut opts.seed),
                "--samples" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        opts.samples = v;
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// Builds the base [`SimConfig`] for these options.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut c = SimConfig::at_scale(self.scale);
        c.measure_samples = self.samples;
        c.measure_tick_every = (self.samples / 6).max(1);
        c.seed = self.seed;
        c
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 32,
            samples: 120_000,
            seed: 42,
        }
    }
}

/// One native run evaluated through the performance model.
pub(crate) struct EvaluatedRun {
    /// Raw measurement, kept for experiments that read counters directly.
    #[allow(dead_code)]
    pub measurement: Measurement,
    pub point: PerfPoint,
}

/// Launches, settles, measures and evaluates one native run; returns
/// `None` when the policy cannot even boot (hugetlbfs reservation on
/// fragmented memory).
pub(crate) fn run_native(
    model: &mut PerfModel,
    config: &SimConfig,
    kind: PolicyKind,
    spec: &WorkloadSpec,
) -> Option<EvaluatedRun> {
    let mut system = System::launch(*config, kind, *spec).ok()?;
    system.settle();
    let measurement = system.measure();
    let point = model.evaluate(spec, config, &measurement);
    Some(EvaluatedRun { measurement, point })
}

/// Formats a float with 3 decimals for CSV output.
pub(crate) fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_parses_known_flags_and_ignores_noise() {
        let args: Vec<String> = [
            "--scale", "64", "--noise", "--samples", "9000", "--seed", "7", "--fragment",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = ExpOptions::from_args(&args);
        assert_eq!(opts.scale, 64);
        assert_eq!(opts.samples, 9000);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn from_args_defaults_when_empty() {
        let opts = ExpOptions::from_args(&[]);
        assert_eq!(opts, ExpOptions::default());
        assert_eq!(opts.scale, 32);
    }

    #[test]
    fn config_wires_samples_into_tick_cadence() {
        let opts = ExpOptions {
            scale: 64,
            samples: 60_000,
            seed: 1,
        };
        let c = opts.config();
        assert_eq!(c.measure_samples, 60_000);
        assert_eq!(c.measure_tick_every, 10_000);
        assert_eq!(c.scale.divisor(), 64);
    }
}
