//! Table 3: how much memory each Trident mechanism maps with 1GB and 2MB
//! pages, on unfragmented and fragmented physical memory.
//!
//! Three mechanisms: the page-fault handler alone, fault + promotion with
//! normal compaction, and fault + promotion with smart compaction.

use trident_types::PageSize;
use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{PolicyKind, SimConfig, System};

/// The allocation mechanism column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Fault handler only; no background promotion.
    PageFaultOnly,
    /// Promotion with Linux's normal compaction.
    PromotionNormal,
    /// Promotion with smart compaction.
    PromotionSmart,
}

impl Mechanism {
    /// Column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::PageFaultOnly => "page-fault-only",
            Mechanism::PromotionNormal => "promotion-normal",
            Mechanism::PromotionSmart => "promotion-smart",
        }
    }
}

/// One cell pair of Table 3.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Whether memory was fragmented first.
    pub fragmented: bool,
    /// Mechanism column.
    pub mechanism: Mechanism,
    /// GB mapped with 1GB pages (paper units).
    pub giant_gb: f64,
    /// GB mapped with 2MB pages.
    pub huge_gb: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Result {
    /// All cells.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,fragmented,mechanism,gb_1gb,gb_2mb\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.2},{:.2}\n",
                r.workload,
                r.fragmented,
                r.mechanism.label(),
                r.giant_gb,
                r.huge_gb
            ));
        }
        out
    }

    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, workload: &str, fragmented: bool, mechanism: Mechanism) -> Option<&Row> {
        self.rows.iter().find(|r| {
            r.workload == workload && r.fragmented == fragmented && r.mechanism == mechanism
        })
    }
}

fn config_for(opts: &ExpOptions, fragmented: bool, _mechanism: Mechanism) -> SimConfig {
    let mut config = opts.config();
    if fragmented {
        config = config.fragmented();
    }
    config
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let mut rows = Vec::new();
    let unscale = opts.scale as f64;
    for spec in WorkloadSpec::shaded() {
        for fragmented in [false, true] {
            for mechanism in [
                Mechanism::PageFaultOnly,
                Mechanism::PromotionNormal,
                Mechanism::PromotionSmart,
            ] {
                let kind = match mechanism {
                    Mechanism::PageFaultOnly => PolicyKind::TridentFaultOnly,
                    Mechanism::PromotionNormal => PolicyKind::TridentNC,
                    Mechanism::PromotionSmart => PolicyKind::Trident,
                };
                let config = config_for(opts, fragmented, mechanism);
                let Ok(mut system) = System::launch(config, kind, spec) else {
                    continue;
                };
                system.settle();
                // A few extra settle rounds give promotion a fair shot.
                for _ in 0..4 {
                    system.settle();
                }
                let to_gb = |bytes: u64| bytes as f64 * unscale / (1u64 << 30) as f64;
                rows.push(Row {
                    workload: spec.name.to_owned(),
                    fragmented,
                    mechanism,
                    giant_gb: to_gb(system.mapped_bytes(PageSize::Giant)),
                    huge_gb: to_gb(system.mapped_bytes(PageSize::Huge)),
                });
            }
        }
    }
    Result { rows }
}
