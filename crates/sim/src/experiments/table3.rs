//! Table 3: how much memory each Trident mechanism maps with 1GB and 2MB
//! pages, on unfragmented and fragmented physical memory.
//!
//! Three mechanisms: the page-fault handler alone, fault + promotion with
//! normal compaction, and fault + promotion with smart compaction.

use trident_types::PageSize;
use trident_workloads::WorkloadSpec;

use crate::experiments::common::{row_config, ExpOptions};
use crate::{PolicyKind, Runner, SimConfig, System};

/// The allocation mechanism column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Fault handler only; no background promotion.
    PageFaultOnly,
    /// Promotion with Linux's normal compaction.
    PromotionNormal,
    /// Promotion with smart compaction.
    PromotionSmart,
}

impl Mechanism {
    /// Column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::PageFaultOnly => "page-fault-only",
            Mechanism::PromotionNormal => "promotion-normal",
            Mechanism::PromotionSmart => "promotion-smart",
        }
    }
}

/// One cell pair of Table 3.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Whether memory was fragmented first.
    pub fragmented: bool,
    /// Mechanism column.
    pub mechanism: Mechanism,
    /// GB mapped with 1GB pages (paper units).
    pub giant_gb: f64,
    /// GB mapped with 2MB pages.
    pub huge_gb: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Result {
    /// All cells.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,fragmented,mechanism,gb_1gb,gb_2mb\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.2},{:.2}\n",
                r.workload,
                r.fragmented,
                r.mechanism.label(),
                r.giant_gb,
                r.huge_gb
            ));
        }
        out
    }

    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, workload: &str, fragmented: bool, mechanism: Mechanism) -> Option<&Row> {
        self.rows.iter().find(|r| {
            r.workload == workload && r.fragmented == fragmented && r.mechanism == mechanism
        })
    }
}

fn config_for(base: SimConfig, fragmented: bool, _mechanism: Mechanism) -> SimConfig {
    if fragmented {
        base.fragmented()
    } else {
        base
    }
}

/// The mechanism columns in paper order.
const MECHANISMS: [Mechanism; 3] = [
    Mechanism::PageFaultOnly,
    Mechanism::PromotionNormal,
    Mechanism::PromotionSmart,
];

/// One table-3 cell: a full run plus extra settle rounds, reduced to the
/// mapped bytes per large page size.
struct TableCell {
    spec: WorkloadSpec,
    fragmented: bool,
    mechanism: Mechanism,
    config: SimConfig,
}

impl TableCell {
    fn measure(&self) -> Option<(u64, u64)> {
        let kind = match self.mechanism {
            Mechanism::PageFaultOnly => PolicyKind::TridentFaultOnly,
            Mechanism::PromotionNormal => PolicyKind::TridentNC,
            Mechanism::PromotionSmart => PolicyKind::Trident,
        };
        let mut system = System::builder(self.config)
            .policy(kind)
            .workload(self.spec)
            .build()
            .ok()?;
        system.settle();
        // A few extra settle rounds give promotion a fair shot.
        for _ in 0..4 {
            system.settle();
        }
        Some((
            system.mapped_bytes(PageSize::new(2)),
            system.mapped_bytes(PageSize::new(1)),
        ))
    }
}

/// Runs the experiment on the parallel runner. The three mechanism cells
/// of one (workload, fragmentation) group share a seed, so the columns
/// compare mechanisms on identical memory layouts.
pub fn run(opts: &ExpOptions) -> Result {
    let unscale = opts.scale as f64;
    let mut cells = Vec::new();
    let mut group = 0u64;
    for spec in WorkloadSpec::shaded() {
        for fragmented in [false, true] {
            let base = row_config(opts, group);
            group += 1;
            for mechanism in MECHANISMS {
                cells.push(TableCell {
                    spec,
                    fragmented,
                    mechanism,
                    config: config_for(base, fragmented, mechanism),
                });
            }
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let mut rows = Vec::new();
    for (cell, mapped) in cells.iter().zip(measured) {
        let Some((giant, huge)) = mapped else {
            continue;
        };
        let to_gb = |bytes: u64| bytes as f64 * unscale / (1u64 << 30) as f64;
        rows.push(Row {
            workload: cell.spec.name.to_owned(),
            fragmented: cell.fragmented,
            mechanism: cell.mechanism,
            giant_gb: to_gb(giant),
            huge_gb: to_gb(huge),
        });
    }
    Result { rows }
}
