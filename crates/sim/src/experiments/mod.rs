//! One reproduction routine per table and figure of the evaluation.
//!
//! Each module returns a typed result with a `to_csv` method; the
//! binaries in `trident-bench` print them. The experiment index lives in
//! DESIGN.md; paper-vs-measured numbers are recorded in EXPERIMENTS.md.

pub mod bloat;
pub mod coloc;
mod common;
pub mod extension;
pub mod fig1;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig7;
pub mod fig9;
pub mod kernel_map;
pub mod ladder;
pub mod table3;
pub mod table4;
pub mod table5;

pub use common::ExpOptions;
