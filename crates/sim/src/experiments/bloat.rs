//! §7 "Memory bloat": aggressive large pages back memory the application
//! never touched. The paper reports Trident bloats Memcached by 38GB and
//! Btree by 13GB over THP, and that incorporating HawkEye's
//! demote-and-recover technique wins the memory back.

use trident_core::{TridentConfig, TridentPolicy};
use trident_workloads::WorkloadSpec;

use crate::experiments::common::ExpOptions;
use crate::{PolicyKind, System};

/// One workload's bloat accounting.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// GB of resident memory under THP.
    pub thp_resident_gb: f64,
    /// GB of resident memory under Trident (no recovery).
    pub trident_resident_gb: f64,
    /// GB of resident memory under Trident with demotion-based bloat
    /// recovery enabled (recovers promotion bloat; fault-time bloat needs
    /// the zero-page dedup below).
    pub recovered_resident_gb: f64,
    /// GB the application actually touched — the floor zero-page
    /// deduplication recovers to (§7 combines demotion with dedup).
    pub touched_gb: f64,
}

/// The bloat study.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per studied workload.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,thp_gb,trident_gb,trident_demoted_gb,touched_gb\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.2},{:.2},{:.2},{:.2}\n",
                r.workload,
                r.thp_resident_gb,
                r.trident_resident_gb,
                r.recovered_resident_gb,
                r.touched_gb
            ));
        }
        out
    }
}

fn resident_gb(system: &System, unscale: f64) -> f64 {
    let geo = system.geometry();
    let bytes: u64 = geo.rungs().map(|s| system.mapped_bytes(s)).sum();
    bytes as f64 * unscale / (1u64 << 30) as f64
}

/// Runs the study on the two workloads the paper calls out (Memcached,
/// Btree) plus Redis as a control.
pub fn run(opts: &ExpOptions) -> Result {
    let unscale = opts.scale as f64;
    let mut rows = Vec::new();
    for name in ["Memcached", "Btree", "Redis"] {
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        let measure = |kind: PolicyKind| {
            let mut config = opts.config();
            // Memory pressure triggers recovery; leave head-room tight.
            config.settle_ticks = 32;
            let mut system = System::builder(config)
                .policy(kind)
                .workload(spec)
                .build()
                .expect("launch");
            system.settle();
            system
        };
        let thp = measure(PolicyKind::Thp);
        let trident = measure(PolicyKind::Trident);
        // Trident + HawkEye-style recovery, squeezed by memory pressure.
        let mut config = opts.config();
        config.settle_ticks = 32;
        let mut recovered = System::builder(config)
            .policy_instance(Box::new(TridentPolicy::new(TridentConfig {
                bloat_recovery: true,
                ..TridentConfig::full()
            })))
            .workload(spec)
            .build()
            .expect("launch");
        // Apply memory pressure so the watermark trips, then settle.
        recovered.apply_memory_pressure(0.06);
        recovered.settle();
        rows.push(Row {
            workload: name.to_owned(),
            thp_resident_gb: resident_gb(&thp, unscale),
            trident_resident_gb: resident_gb(&trident, unscale),
            recovered_resident_gb: resident_gb(&recovered, unscale),
            touched_gb: trident.touched_pages() as f64
                * trident.config.geo.base_bytes() as f64
                * unscale
                / (1u64 << 30) as f64,
        });
    }
    Result { rows }
}
