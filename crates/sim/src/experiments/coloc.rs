//! The co-location grid: three tenants — Redis beside GUPS beside
//! XSBench — sharing one physical pool under one kernel policy, with and
//! without cross-tenant fragmentation.
//!
//! This is the multi-tenant extension of the paper's evaluation: every
//! number the single-tenant experiments report machine-wide is reported
//! here *per tenant* (walk cycles, FMFI, faults), plus the isolation
//! headline — the per-tick audit must collect zero violations, because
//! on a shared pool a bookkeeping violation in one tenant's space is an
//! isolation violation.
//!
//! Redis runs weighted (2× promotion-daemon share) with its first giant
//! region pinned hot, so the grid also exercises the [`PolicyHint`]
//! surface end to end.

use trident_types::{PageSize, TenantId, Vpn};
use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, row_config, ExpOptions};
use crate::runner::Runner;
use crate::{Measurement, PolicyHint, PolicyKind, System, TenantSpec};

/// The tenants of the grid, in tenant order.
pub const TENANT_WORKLOADS: [&str; 3] = ["Redis", "GUPS", "XSBench"];

/// One tenant's row of one grid cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Policy label.
    pub config: &'static str,
    /// Whether memory was fragmented before the tenants loaded.
    pub fragmented: bool,
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// Its workload.
    pub workload: &'static str,
    /// Accesses sampled from this tenant.
    pub samples: usize,
    /// Page walks among them.
    pub walks: u64,
    /// Cycles this tenant spent translating.
    pub walk_cycles: u64,
    /// The tenant's 1GB fragmentation experience (fraction of its
    /// resident bytes not giant-backed).
    pub fmfi_giant: f64,
    /// Faults attributed to this tenant.
    pub faults: u64,
}

/// The full grid.
#[derive(Debug, Clone)]
pub struct Result {
    /// Per-tenant rows, cell-major in grid order.
    pub rows: Vec<Row>,
    /// Audit violations per cell, in grid order — the isolation check;
    /// every entry must be 0.
    pub violations: Vec<(String, u64)>,
}

impl Result {
    /// CSV rendering of the per-tenant rows.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "config,fragmented,tenant,workload,samples,walks,walk_cycles,fmfi_giant,faults\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.config,
                r.fragmented,
                r.tenant,
                r.workload,
                r.samples,
                r.walks,
                r.walk_cycles,
                f3(r.fmfi_giant),
                r.faults,
            ));
        }
        out
    }

    /// Total audit violations across the grid (0 on a correct engine).
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().map(|(_, n)| n).sum()
    }
}

/// One grid cell: the three tenants under `kind`, audited.
fn run_cell(
    opts: &ExpOptions,
    group: u64,
    kind: PolicyKind,
    fragmented: bool,
) -> (Measurement, u64) {
    let mut config = row_config(opts, group);
    config.audit = true;
    if fragmented {
        config = config.fragmented();
    }
    // Redis gets 2× the promotion daemon's attention and pins its first
    // giant region (its hot keyspace) so the hint surface is exercised
    // under contention, not just in unit tests.
    let pin_pages = config.geo.base_pages(PageSize::new(2));
    let mut system = System::builder(config)
        .policy(kind)
        .tenant(
            TenantSpec::new(WorkloadSpec::by_name("Redis").expect("known workload"))
                .weight(2)
                .hint(PolicyHint::new().pin(Vpn::new(0), pin_pages)),
        )
        .tenant(TenantSpec::new(
            WorkloadSpec::by_name("GUPS").expect("known workload"),
        ))
        .tenant(TenantSpec::new(
            WorkloadSpec::by_name("XSBench").expect("known workload"),
        ))
        .build()
        .expect("no reservation in the grid; boot cannot fail");
    system.settle();
    let m = system.measure();
    (m, system.violations().len() as u64)
}

/// Runs the grid on the parallel runner: {THP, Trident} × {clean,
/// fragmented}, every cell a 3-tenant machine. Cell results are
/// bit-identical at any thread count.
pub fn run(opts: &ExpOptions) -> Result {
    let kinds = [PolicyKind::Thp, PolicyKind::Trident];
    let mut cells = Vec::new();
    let mut group = 0u64;
    for fragmented in [false, true] {
        for kind in kinds {
            cells.push((group, kind, fragmented));
            group += 1;
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, &(group, kind, fragmented)| {
        run_cell(opts, group, kind, fragmented)
    });

    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for (&(_, kind, fragmented), (m, v)) in cells.iter().zip(measured) {
        for t in &m.tenants {
            rows.push(Row {
                config: kind.label(),
                fragmented,
                tenant: t.tenant,
                workload: t.workload,
                samples: t.samples,
                walks: t.walks,
                walk_cycles: t.walk_cycles,
                fmfi_giant: t.fmfi_giant,
                faults: t.snapshot.total_faults(),
            });
        }
        violations.push((format!("{}/{fragmented}", kind.label()), v));
    }
    Result { rows, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_attributes_work_to_every_tenant_with_zero_violations() {
        let result = run(&ExpOptions::quick());
        assert_eq!(result.rows.len(), 4 * TENANT_WORKLOADS.len());
        for row in &result.rows {
            assert!(row.samples > 0, "{row:?}");
            assert!((0.0..=1.0).contains(&row.fmfi_giant));
        }
        assert_eq!(result.total_violations(), 0, "{:?}", result.violations);
        let csv = result.to_csv();
        assert!(csv.contains("Redis") && csv.contains("GUPS") && csv.contains("XSBench"));
    }

    #[test]
    fn grid_is_bit_identical_across_thread_counts() {
        let csv_at = |threads| {
            let mut opts = ExpOptions::quick();
            opts.threads = threads;
            run(&opts).to_csv()
        };
        let serial = csv_at(1);
        assert_eq!(serial, csv_at(4));
        assert_eq!(serial, csv_at(8));
    }
}
