//! Figures 9 and 10: THP versus HawkEye versus Trident, without and with
//! physical-memory fragmentation.
//!
//! Reports performance and walk-cycle fraction normalized to THP — the
//! paper's headline result (Trident +14% unfragmented, +18% fragmented,
//! GUPS up to +47%/+50%).

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, run_native, ExpOptions};
use crate::{PerfModel, PolicyKind};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Performance normalized to THP.
    pub perf_norm: f64,
    /// Walk-cycle fraction normalized to THP.
    pub walk_fraction_norm: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Whether this is the fragmented variant (Figure 10).
    pub fragmented: bool,
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,perf_norm,walk_fraction_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.workload,
                r.config,
                f3(r.perf_norm),
                f3(r.walk_fraction_norm)
            ));
        }
        out
    }

    /// Geometric-mean speedup of `config` over THP.
    #[must_use]
    pub fn mean_speedup(&self, config: &str) -> f64 {
        let gains: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.config == config)
            .map(|r| r.perf_norm)
            .collect();
        if gains.is_empty() {
            return 1.0;
        }
        (gains.iter().map(|g| g.ln()).sum::<f64>() / gains.len() as f64).exp()
    }
}

/// Runs the experiment (`fragmented = false` reproduces Figure 9,
/// `true` reproduces Figure 10).
pub fn run(opts: &ExpOptions, fragmented: bool) -> Result {
    let mut config = opts.config();
    if fragmented {
        config = config.fragmented();
    }
    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let Some(thp) = run_native(&mut model, &config, PolicyKind::Thp, &spec) else {
            continue;
        };
        for kind in [PolicyKind::Thp, PolicyKind::HawkEye, PolicyKind::Trident] {
            let point = if kind == PolicyKind::Thp {
                thp.point
            } else {
                match run_native(&mut model, &config, kind, &spec) {
                    Some(r) => r.point,
                    None => continue,
                }
            };
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: kind.label(),
                perf_norm: point.speedup_over(&thp.point),
                walk_fraction_norm: point.walk_fraction_ratio(&thp.point),
            });
        }
    }
    Result { fragmented, rows }
}
