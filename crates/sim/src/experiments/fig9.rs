//! Figures 9 and 10: THP versus HawkEye versus Trident, without and with
//! physical-memory fragmentation.
//!
//! Reports performance and walk-cycle fraction normalized to THP — the
//! paper's headline result (Trident +14% unfragmented, +18% fragmented,
//! GUPS up to +47%/+50%).

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, row_config, ExpOptions};
use crate::{Cell, PerfModel, PolicyKind, Runner};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Performance normalized to THP.
    pub perf_norm: f64,
    /// Walk-cycle fraction normalized to THP.
    pub walk_fraction_norm: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Whether this is the fragmented variant (Figure 10).
    pub fragmented: bool,
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,perf_norm,walk_fraction_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.workload,
                r.config,
                f3(r.perf_norm),
                f3(r.walk_fraction_norm)
            ));
        }
        out
    }

    /// Geometric-mean speedup of `config` over THP.
    #[must_use]
    pub fn mean_speedup(&self, config: &str) -> f64 {
        let gains: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.config == config)
            .map(|r| r.perf_norm)
            .collect();
        if gains.is_empty() {
            return 1.0;
        }
        (gains.iter().map(|g| g.ln()).sum::<f64>() / gains.len() as f64).exp()
    }
}

/// The policies compared against THP.
const KINDS: [PolicyKind; 3] = [PolicyKind::Thp, PolicyKind::HawkEye, PolicyKind::Trident];

/// Runs the experiment on the parallel runner (`fragmented = false`
/// reproduces Figure 9, `true` reproduces Figure 10).
///
/// Each row's plan is `[4KB anchor, THP, HawkEye, Trident]`: the anchor
/// cell runs 4KB on unfragmented memory — the run `PerfModel::evaluate`
/// would otherwise launch hidden and serially.
pub fn run(opts: &ExpOptions, fragmented: bool) -> Result {
    let specs = WorkloadSpec::shaded();
    let per_row = 1 + KINDS.len();
    let mut cells = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let mut config = row_config(opts, row as u64);
        if fragmented {
            config = config.fragmented();
        }
        let mut anchor_config = config;
        anchor_config.fragment = None;
        anchor_config.daemon_cap = None;
        cells.push(Cell {
            kind: PolicyKind::Base,
            spec: *spec,
            config: anchor_config,
        });
        for kind in KINDS {
            cells.push(Cell {
                kind,
                spec: *spec,
                config,
            });
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let first = row * per_row;
        let config = cells[first + 1].config;
        if let Some(anchor_m) = &measured[first] {
            model.prime_anchor(spec, &cells[first].config, anchor_m, false);
        }
        let Some(thp_m) = &measured[first + 1] else {
            continue;
        };
        let thp = model.evaluate(spec, &config, thp_m);
        for (k, kind) in KINDS.iter().enumerate() {
            let Some(m) = &measured[first + 1 + k] else {
                continue;
            };
            let point = model.evaluate(spec, &config, m);
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: kind.label(),
                perf_norm: point.speedup_over(&thp),
                walk_fraction_norm: point.walk_fraction_ratio(&thp),
            });
        }
    }
    Result { fragmented, rows }
}
