//! Figure 11: ablation of Trident's design components.
//!
//! *Trident-1Gonly* (no 2MB pages) isolates the value of using every
//! large page size; *Trident-NC* (normal compaction) isolates smart
//! compaction. Both variants lose to full Trident; 1Gonly even loses to
//! THP on apps with 1GB-unmappable hot regions (Graph500, SVM).

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, run_native, ExpOptions};
use crate::{PerfModel, PolicyKind};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Performance normalized to THP.
    pub perf_norm: f64,
}

/// One fragmentation state's figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Whether memory was fragmented (Figure 11b vs 11a).
    pub fragmented: bool,
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,perf_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                r.workload,
                r.config,
                f3(r.perf_norm)
            ));
        }
        out
    }

    /// The bar for one (workload, config) pair.
    #[must_use]
    pub fn bar(&self, workload: &str, config: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.config == config)
            .map(|r| r.perf_norm)
    }
}

/// Runs one sub-figure.
pub fn run(opts: &ExpOptions, fragmented: bool) -> Result {
    let mut config = opts.config();
    if fragmented {
        config = config.fragmented();
    }
    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let Some(thp) = run_native(&mut model, &config, PolicyKind::Thp, &spec) else {
            continue;
        };
        for kind in [
            PolicyKind::Thp,
            PolicyKind::Trident1G,
            PolicyKind::TridentNC,
            PolicyKind::Trident,
        ] {
            let point = if kind == PolicyKind::Thp {
                thp.point
            } else {
                match run_native(&mut model, &config, kind, &spec) {
                    Some(r) => r.point,
                    None => continue,
                }
            };
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: kind.label(),
                perf_norm: point.speedup_over(&thp.point),
            });
        }
    }
    Result { fragmented, rows }
}
