//! Figure 11: ablation of Trident's design components.
//!
//! *Trident-1Gonly* (no 2MB pages) isolates the value of using every
//! large page size; *Trident-NC* (normal compaction) isolates smart
//! compaction. Both variants lose to full Trident; 1Gonly even loses to
//! THP on apps with 1GB-unmappable hot regions (Graph500, SVM).

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, row_config, ExpOptions};
use crate::{Cell, PerfModel, PolicyKind, Runner};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Performance normalized to THP.
    pub perf_norm: f64,
}

/// One fragmentation state's figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Whether memory was fragmented (Figure 11b vs 11a).
    pub fragmented: bool,
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,perf_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                r.workload,
                r.config,
                f3(r.perf_norm)
            ));
        }
        out
    }

    /// The bar for one (workload, config) pair.
    #[must_use]
    pub fn bar(&self, workload: &str, config: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.config == config)
            .map(|r| r.perf_norm)
    }
}

/// The ablation variants compared against THP.
const KINDS: [PolicyKind; 4] = [
    PolicyKind::Thp,
    PolicyKind::Trident1G,
    PolicyKind::TridentNC,
    PolicyKind::Trident,
];

/// Runs one sub-figure on the parallel runner; each row's plan is
/// `[4KB anchor, THP, Trident-1Gonly, Trident-NC, Trident]`.
pub fn run(opts: &ExpOptions, fragmented: bool) -> Result {
    let specs = WorkloadSpec::shaded();
    let per_row = 1 + KINDS.len();
    let mut cells = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let mut config = row_config(opts, row as u64);
        if fragmented {
            config = config.fragmented();
        }
        let mut anchor_config = config;
        anchor_config.fragment = None;
        anchor_config.daemon_cap = None;
        cells.push(Cell {
            kind: PolicyKind::Base,
            spec: *spec,
            config: anchor_config,
        });
        for kind in KINDS {
            cells.push(Cell {
                kind,
                spec: *spec,
                config,
            });
        }
    }
    let measured = Runner::new(opts.threads).map(&cells, |_, cell| cell.measure());

    let mut model = PerfModel::new();
    let mut rows = Vec::new();
    for (row, spec) in specs.iter().enumerate() {
        let first = row * per_row;
        let config = cells[first + 1].config;
        if let Some(anchor_m) = &measured[first] {
            model.prime_anchor(spec, &cells[first].config, anchor_m, false);
        }
        let Some(thp_m) = &measured[first + 1] else {
            continue;
        };
        let thp = model.evaluate(spec, &config, thp_m);
        for (k, kind) in KINDS.iter().enumerate() {
            let Some(m) = &measured[first + 1 + k] else {
                continue;
            };
            let point = model.evaluate(spec, &config, m);
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: kind.label(),
                perf_norm: point.speedup_over(&thp),
            });
        }
    }
    Result { fragmented, rows }
}
