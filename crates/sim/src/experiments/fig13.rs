//! Figure 13: Trident_pv under fragmented guest-physical memory with the
//! guest's `khugepaged` capped at 10% of a vCPU.
//!
//! Under the cap, copy-based guest promotion/compaction (≈600ms per 1GB)
//! starves and giant pages arrive slowly; Trident_pv's hypercall-based
//! exchanges (≈500µs batched) fit comfortably in the budget, recovering
//! the 1GB benefit — up to 10% over copy-based Trident in the paper.

use trident_workloads::WorkloadSpec;

use crate::experiments::common::{f3, ExpOptions};
use crate::experiments::fig2::run_virt_point;
use crate::{PerfModel, PolicyKind};

/// One bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub workload: String,
    /// Configuration label.
    pub config: &'static str,
    /// Performance normalized to THP+THP.
    pub perf_norm: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// All bars.
    pub rows: Vec<Row>,
}

impl Result {
    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,config,perf_norm\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                r.workload,
                r.config,
                f3(r.perf_norm)
            ));
        }
        out
    }

    /// The bar for one (workload, config) pair.
    #[must_use]
    pub fn bar(&self, workload: &str, config: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.config == config)
            .map(|r| r.perf_norm)
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Result {
    let mut config = opts.config();
    config.daemon_cap = Some(0.10);
    // Tighter accounting interval: the 10% budget is scarce relative to
    // the run length, as on the paper's testbed where copy-based
    // promotion work (≈600ms per 1GB region) outruns the allowance.
    config.tick_interval_app_ns = 20_000_000;
    let mut model = PerfModel::new();
    // (label, host policy, guest policy); gPA fragmented in all runs.
    let combos: [(&'static str, PolicyKind, PolicyKind); 3] = [
        ("2MB+2MB-THP", PolicyKind::Thp, PolicyKind::Thp),
        ("Trident+Trident", PolicyKind::Trident, PolicyKind::Trident),
        (
            "Trident-pv+Trident-pv",
            PolicyKind::Trident,
            PolicyKind::TridentPv,
        ),
    ];
    let mut rows = Vec::new();
    for spec in WorkloadSpec::shaded() {
        let Some(thp) = run_virt_point(&mut model, &config, combos[0].1, combos[0].2, &spec, true)
        else {
            continue;
        };
        for (label, host, guest) in combos {
            let point = if label == "2MB+2MB-THP" {
                Some(thp)
            } else {
                run_virt_point(&mut model, &config, host, guest, &spec, true)
            };
            let Some(point) = point else { continue };
            rows.push(Row {
                workload: spec.name.to_owned(),
                config: label,
                perf_norm: point.speedup_over(&thp),
            });
        }
    }
    Result { rows }
}
