//! The policy configurations the experiments compare.

use trident_core::{
    BasePolicy, HawkEyePolicy, HugetlbfsPolicy, IngensPolicy, MmContext, PagePolicy, ThpPolicy,
    TridentConfig, TridentPolicy,
};
use trident_phys::PhysMemError;
use trident_types::PageSize;

/// Every system configuration that appears in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// 4KB pages only.
    Base,
    /// Linux THP (2MB dynamic).
    Thp,
    /// `libHugetlbfs` with pre-reserved 2MB pages.
    HugetlbfsHuge,
    /// `libHugetlbfs` with pre-reserved 1GB pages.
    HugetlbfsGiant,
    /// HawkEye (ASPLOS'19).
    HawkEye,
    /// Ingens (OSDI'16): conservative utilization-gated 2MB promotion.
    Ingens,
    /// Trident (all sizes, smart compaction).
    Trident,
    /// Trident restricted to 1GB+4KB (Figure 11 ablation).
    Trident1G,
    /// Trident with normal compaction (Figure 11 ablation).
    TridentNC,
    /// Trident with paravirtualized copy-less promotion (guest side).
    TridentPv,
    /// Trident with background promotion disabled: only the fault
    /// handler allocates large pages (Table 3's "page-fault only"
    /// mechanism column; zero-fill and the stocking compactor still run).
    TridentFaultOnly,
}

impl PolicyKind {
    /// Every policy, in figure order.
    pub const ALL: [PolicyKind; 11] = [
        PolicyKind::Base,
        PolicyKind::Thp,
        PolicyKind::HugetlbfsHuge,
        PolicyKind::HugetlbfsGiant,
        PolicyKind::HawkEye,
        PolicyKind::Ingens,
        PolicyKind::Trident,
        PolicyKind::Trident1G,
        PolicyKind::TridentNC,
        PolicyKind::TridentPv,
        PolicyKind::TridentFaultOnly,
    ];

    /// The short name `tridentctl` and the job service accept on the
    /// command line and the wire (the paper label is also accepted by
    /// [`from_name`](Self::from_name)).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            PolicyKind::Base => "4KB",
            PolicyKind::Thp => "THP",
            PolicyKind::HugetlbfsHuge => "Hugetlbfs2M",
            PolicyKind::HugetlbfsGiant => "Hugetlbfs1G",
            PolicyKind::HawkEye => "HawkEye",
            PolicyKind::Ingens => "Ingens",
            PolicyKind::Trident => "Trident",
            PolicyKind::Trident1G => "Trident1G",
            PolicyKind::TridentNC => "TridentNC",
            PolicyKind::TridentPv => "TridentPv",
            PolicyKind::TridentFaultOnly => "TridentFaultOnly",
        }
    }

    /// Resolves a policy from its [`short_name`](Self::short_name) or
    /// its paper [`label`](Self::label), case-insensitively.
    #[must_use]
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| {
            k.short_name().eq_ignore_ascii_case(name) || k.label().eq_ignore_ascii_case(name)
        })
    }

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Base => "4KB",
            PolicyKind::Thp => "2MB-THP",
            PolicyKind::HugetlbfsHuge => "2MB-Hugetlbfs",
            PolicyKind::HugetlbfsGiant => "1GB-Hugetlbfs",
            PolicyKind::HawkEye => "HawkEye",
            PolicyKind::Ingens => "Ingens",
            PolicyKind::Trident => "Trident",
            PolicyKind::Trident1G => "Trident-1Gonly",
            PolicyKind::TridentNC => "Trident-NC",
            PolicyKind::TridentPv => "Trident-pv",
            PolicyKind::TridentFaultOnly => "Trident-fault-only",
        }
    }

    /// Builds the policy. Hugetlbfs variants reserve enough pages of
    /// their size to cover `workload_pages` (in scaled base pages) up
    /// front — which is exactly what fails on fragmented memory.
    ///
    /// # Errors
    ///
    /// Propagates the reservation failure for the hugetlbfs variants.
    pub fn build(
        self,
        ctx: &mut MmContext,
        workload_pages: u64,
    ) -> Result<Box<dyn PagePolicy>, PhysMemError> {
        let geo = ctx.geometry();
        Ok(match self {
            PolicyKind::Base => Box::new(BasePolicy::new()),
            PolicyKind::Thp => Box::new(ThpPolicy::new()),
            PolicyKind::HugetlbfsHuge => {
                let count = workload_pages.div_ceil(geo.base_pages(PageSize::new(1))) + 2;
                Box::new(HugetlbfsPolicy::reserve(
                    ctx,
                    PageSize::new(1),
                    usize::try_from(count).expect("fits usize"),
                )?)
            }
            PolicyKind::HugetlbfsGiant => {
                let count = workload_pages.div_ceil(geo.base_pages(PageSize::new(2))) + 1;
                Box::new(HugetlbfsPolicy::reserve(
                    ctx,
                    PageSize::new(2),
                    usize::try_from(count).expect("fits usize"),
                )?)
            }
            PolicyKind::HawkEye => Box::new(HawkEyePolicy::new()),
            PolicyKind::Ingens => Box::new(IngensPolicy::new()),
            PolicyKind::Trident => Box::new(TridentPolicy::new(TridentConfig::full())),
            PolicyKind::Trident1G => Box::new(TridentPolicy::new(TridentConfig::giant_only())),
            PolicyKind::TridentNC => {
                Box::new(TridentPolicy::new(TridentConfig::normal_compaction()))
            }
            PolicyKind::TridentPv => Box::new(TridentPolicy::new(TridentConfig::paravirt())),
            PolicyKind::TridentFaultOnly => Box::new(TridentPolicy::new(TridentConfig {
                chunk_budget: 0,
                ..TridentConfig::full()
            })),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::PageGeometry;

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(PolicyKind::Thp.label(), "2MB-THP");
        assert_eq!(PolicyKind::HugetlbfsGiant.label(), "1GB-Hugetlbfs");
        assert_eq!(PolicyKind::Trident1G.label(), "Trident-1Gonly");
    }

    #[test]
    fn from_name_resolves_both_spellings_of_every_policy() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(kind.short_name()), Some(kind));
            assert_eq!(PolicyKind::from_name(kind.label()), Some(kind));
            assert_eq!(
                PolicyKind::from_name(&kind.label().to_uppercase()),
                Some(kind),
                "matching is case-insensitive"
            );
        }
        assert_eq!(PolicyKind::from_name("NotAPolicy"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 16 * 64));
        for kind in [
            PolicyKind::Base,
            PolicyKind::Thp,
            PolicyKind::HawkEye,
            PolicyKind::Trident,
            PolicyKind::TridentNC,
        ] {
            let policy = kind.build(&mut ctx, 64).unwrap();
            assert_eq!(policy.name(), kind.label());
        }
    }

    #[test]
    fn hugetlbfs_reservation_sizes_cover_the_workload() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 16 * 64));
        let before = ctx.mem.free_pages();
        let _policy = PolicyKind::HugetlbfsGiant.build(&mut ctx, 100).unwrap();
        // ceil(100/64) + 1 = 3 giant pages reserved.
        assert_eq!(before - ctx.mem.free_pages(), 3 * 64);
    }
}
