//! Parallel experiment engine.
//!
//! Every experiment in this crate is a grid of independent simulations:
//! one [`Cell`] per (policy, workload, configuration) triple. Cells share
//! no state — each builds its own [`System`] — so they can execute on any
//! number of threads. Three rules make the parallel results *bit-identical*
//! to a serial run (DESIGN.md §"Determinism contract"):
//!
//! 1. Each cell's RNG seed is a pure function of the experiment's base
//!    seed and the cell's position in the plan ([`derive_cell_seed`]),
//!    never of which thread ran it or when.
//! 2. Cells never share mutable state; a cell's entire simulation lives
//!    on the thread that executes it.
//! 3. Results are merged in plan order ([`Runner::map`] returns results
//!    indexed exactly like its input), so downstream evaluation sees the
//!    same sequence a serial loop would produce.
//!
//! The [`PerfModel`](crate::PerfModel) anchor runs that `evaluate` used to
//! launch lazily (and serially) are instead scheduled as explicit cells
//! and fed back via [`PerfModel::prime_anchor`](crate::PerfModel::prime_anchor),
//! so nothing hides a serial bottleneck behind the parallel grid.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use trident_workloads::WorkloadSpec;

use crate::{Measurement, PolicyKind, SimConfig, System, VirtSystem};

/// Derives the RNG seed for plan position `cell_index` from the
/// experiment's base seed.
///
/// SplitMix64 finalization of `base_seed ⊕ φ·cell_index`: cells get
/// decorrelated streams, and the result depends only on the two inputs —
/// never on thread count or scheduling — which is what makes parallel
/// runs bit-identical to serial ones.
#[must_use]
pub fn derive_cell_seed(base_seed: u64, cell_index: u64) -> u64 {
    let mut z = base_seed ^ cell_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One native experiment cell: a full simulated system run.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Page-size policy under test.
    pub kind: PolicyKind,
    /// Application.
    pub spec: WorkloadSpec,
    /// Complete run configuration (seed already derived by the planner).
    pub config: SimConfig,
}

impl Cell {
    /// Launches, settles and measures the cell's system; `None` when the
    /// policy cannot boot (hugetlbfs reservation on fragmented memory).
    #[must_use]
    pub fn measure(&self) -> Option<Measurement> {
        let mut system = System::builder(self.config)
            .policy(self.kind)
            .workload(self.spec)
            .build()
            .ok()?;
        system.settle();
        Some(system.measure())
    }
}

/// One virtualized experiment cell (guest and host each run a policy).
#[derive(Debug, Clone, Copy)]
pub struct VirtCell {
    /// Hypervisor-side policy.
    pub host: PolicyKind,
    /// Guest-kernel policy.
    pub guest: PolicyKind,
    /// Application.
    pub spec: WorkloadSpec,
    /// Complete run configuration.
    pub config: SimConfig,
    /// Fragment guest-physical memory before the run.
    pub fragment_guest: bool,
}

impl VirtCell {
    /// Launches, settles and measures the nested system.
    #[must_use]
    pub fn measure(&self) -> Option<Measurement> {
        let mut vs = VirtSystem::launch(
            self.config,
            self.host,
            self.guest,
            self.spec,
            self.fragment_guest,
        )
        .ok()?;
        vs.settle();
        Some(vs.measure())
    }
}

/// Executes independent cells across a fixed pool of scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner using `threads` worker threads; `0` means one per
    /// available hardware core.
    #[must_use]
    pub fn new(threads: usize) -> Runner {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        Runner { threads }
    }

    /// The worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, fanning the calls out across the worker
    /// pool, and returns the results *in input order*.
    ///
    /// `f` receives `(plan_index, item)`. Work is handed out through an
    /// atomic cursor, so threads stay busy regardless of how unevenly
    /// cell runtimes are distributed; because each result lands in the
    /// slot of its plan index, the output is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell ran to completion")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seeds_are_deterministic_and_decorrelated() {
        let a = derive_cell_seed(42, 0);
        assert_eq!(a, derive_cell_seed(42, 0));
        let seeds: Vec<u64> = (0..64).map(|i| derive_cell_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "64 cells must get 64 seeds");
        assert_ne!(derive_cell_seed(42, 1), derive_cell_seed(43, 1));
    }

    #[test]
    fn map_preserves_input_order_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let serial = Runner::new(1).map(&items, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 4, 8] {
            let parallel = Runner::new(threads).map(&items, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(Runner::new(0).threads() >= 1);
        assert_eq!(Runner::new(3).threads(), 3);
    }
}
