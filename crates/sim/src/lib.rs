//! Full-system driver for the Trident simulator.
//!
//! Ties every substrate together into runnable systems:
//!
//! * [`System`] — a native machine: physical memory (optionally
//!   fragmented per the paper's §3 methodology), N co-located tenant
//!   processes on the one pool, a page-size policy, and the Skylake TLB
//!   model. Boot one with [`System::builder`]. Workloads are *loaded*
//!   (allocation interleaved with first-touch faults and daemon ticks,
//!   round-robin across tenants), *settled* (daemons run to quiescence)
//!   and *measured* (sampled accesses drive the TLB, attributed per
//!   tenant).
//! * [`VirtSystem`] — the same under virtualization: a guest kernel with
//!   its own policy over guest-physical memory, a hypervisor with its own
//!   policy over host memory, nested walk costs.
//! * [`PerfModel`] — converts measured walk cycles and MM overheads into
//!   the normalized performance numbers the paper plots, anchored on each
//!   application's measured 4KB walk-cycle fraction (Figure 1a).
//! * [`runner`] — the parallel experiment engine: experiments decompose
//!   into independent cells executed across scoped threads, with per-cell
//!   seeds derived so parallel results are bit-identical to serial ones.
//! * [`experiments`] — one routine per table and figure of the paper's
//!   evaluation; see DESIGN.md for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod config;
pub mod experiments;
mod governor;
mod latency;
mod model;
mod policy;
mod report;
pub mod runner;
mod system;
mod virt_system;

pub use config::{scaled_geometry, scaled_geometry_for, SimConfig};
pub use governor::DaemonGovernor;
pub use latency::{request_p99_ms, LatencyModel};
pub use model::{PerfModel, PerfPoint};
pub use policy::PolicyKind;
pub use report::RunReport;
pub use runner::{derive_cell_seed, Cell, Runner, VirtCell};
pub use system::{Measurement, RunProgress, System, SystemBuilder, TenantMeasurement, TenantSpec};
// Tenant vocabulary, re-exported so experiment authors need not depend on
// `trident-core`/`trident-types` directly.
pub use trident_core::{PinnedRange, PolicyHint};
pub use trident_types::TenantId;
pub use virt_system::VirtSystem;
