//! Simulation configuration.

use trident_core::FaultPlan;
use trident_phys::FragmentProfile;
use trident_types::{PageGeometry, TridentError, GIB};
use trident_workloads::MemoryScale;

/// Configuration of one simulated system run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Page geometry (the real x86-64 layout for experiments).
    pub geo: PageGeometry,
    /// Host physical memory in bytes, unscaled (the paper's testbed has
    /// 384GB).
    pub host_mem_bytes: u64,
    /// Memory-scale divisor applied to host memory and workload
    /// footprints alike; the TLB is scaled by the same factor so the
    /// reach ratios of Table 1 are preserved.
    pub scale: MemoryScale,
    /// Fragment physical memory before the run (§3 methodology).
    pub fragment: Option<FragmentProfile>,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Touched pages between background-daemon ticks during load.
    pub tick_interval_pages: u64,
    /// Sampled accesses in the measurement phase.
    pub measure_samples: usize,
    /// Samples between daemon ticks during measurement.
    pub measure_tick_every: usize,
    /// Maximum settling ticks after load (stops early at quiescence).
    pub settle_ticks: usize,
    /// Cap background daemons to this fraction of one CPU (Figure 13's
    /// 10% `khugepaged` limit), or `None` for no cap.
    pub daemon_cap: Option<f64>,
    /// Application wall-clock nanoseconds represented by one tick
    /// interval (used by the daemon cap accounting).
    pub tick_interval_app_ns: u64,
    /// When set, the system records events into a ring tracer of this
    /// capacity (in events); `None` runs with the free no-op recorder.
    pub trace_capacity: Option<usize>,
    /// When true, a live profiler aggregates spans, time-series windows
    /// and counters during the run (on top of the ring tracer if
    /// `trace_capacity` is also set); the result lands in
    /// `Measurement::profile`.
    pub profile: bool,
    /// When set, a deterministic [`FaultInjector`](trident_core::FaultInjector)
    /// seeded from this plan is installed into every memory-management
    /// context before load, failing allocations, compactions, promotions,
    /// hypercalls and trace writes per the plan; `None` runs fault-free.
    pub fault: Option<FaultPlan>,
    /// When true, every daemon tick runs the non-panicking cross-layer
    /// audit ([`check_mm_consistent`](trident_core::check_mm_consistent))
    /// and collects any violations instead of asserting (chaos harness).
    pub audit: bool,
}

impl SimConfig {
    /// The default configuration at a given memory scale.
    ///
    /// Scaling divides every byte quantity (host memory, workload
    /// footprints) *and* the large-page sizes by the same power of two:
    /// at scale 16 a "giant" page is 64MB and a "huge" page 128KB, while
    /// the TLB keeps its real Skylake entry counts — so every ratio that
    /// drives the paper's results (footprint : TLB reach, footprint :
    /// giant-page size, huge : giant) is preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a power of two or exceeds 256.
    #[must_use]
    pub fn at_scale(scale: u64) -> SimConfig {
        SimConfig {
            scale: MemoryScale::new(scale),
            geo: scaled_geometry(scale),
            ..SimConfig::default()
        }
    }

    /// Host memory in (scaled) base pages.
    #[must_use]
    pub fn host_pages(&self) -> u64 {
        self.geo
            .pages_for_bytes(self.scale.apply(self.host_mem_bytes))
    }

    /// The TLB scale divisor matching the memory scale.
    #[must_use]
    pub fn tlb_divisor(&self) -> usize {
        usize::try_from(self.scale.divisor()).expect("fits usize")
    }

    /// Returns a copy with fragmentation enabled (heavy profile).
    #[must_use]
    pub fn fragmented(mut self) -> SimConfig {
        self.fragment = Some(FragmentProfile::heavy());
        self
    }

    /// Returns a copy with event tracing enabled at the given ring
    /// capacity.
    #[must_use]
    pub fn traced(mut self, capacity: usize) -> SimConfig {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Returns a copy with live profiling enabled.
    #[must_use]
    pub fn profiled(mut self) -> SimConfig {
        self.profile = true;
        self
    }

    /// Starts building a configuration at a given memory scale, with
    /// every knob validated at [`SimConfigBuilder::build`] time.
    ///
    /// # Examples
    ///
    /// ```
    /// use trident_sim::SimConfig;
    ///
    /// let c = SimConfig::builder(256).measure_samples(5_000).build()?;
    /// assert_eq!(c.measure_samples, 5_000);
    /// assert!(SimConfig::builder(256).measure_samples(0).build().is_err());
    /// # Ok::<(), trident_types::TridentError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a power of two or exceeds 256 (same
    /// contract as [`SimConfig::at_scale`]).
    #[must_use]
    pub fn builder(scale: u64) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::at_scale(scale),
        }
    }
}

/// Builder for [`SimConfig`]: starts from [`SimConfig::at_scale`] defaults
/// and rejects degenerate values (zero sample counts or intervals, a
/// daemon cap outside `(0, 1]`) at [`build`](SimConfigBuilder::build)
/// time.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the host physical memory in (unscaled) bytes.
    #[must_use]
    pub fn host_mem_bytes(mut self, bytes: u64) -> Self {
        self.config.host_mem_bytes = bytes;
        self
    }

    /// Enables pre-run fragmentation with the given profile.
    #[must_use]
    pub fn fragment(mut self, profile: FragmentProfile) -> Self {
        self.config.fragment = Some(profile);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the touched pages between daemon ticks during load.
    #[must_use]
    pub fn tick_interval_pages(mut self, pages: u64) -> Self {
        self.config.tick_interval_pages = pages;
        self
    }

    /// Sets the measurement-phase sample count.
    #[must_use]
    pub fn measure_samples(mut self, samples: usize) -> Self {
        self.config.measure_samples = samples;
        self
    }

    /// Sets the samples between daemon ticks during measurement.
    #[must_use]
    pub fn measure_tick_every(mut self, samples: usize) -> Self {
        self.config.measure_tick_every = samples;
        self
    }

    /// Sets the maximum settling ticks after load.
    #[must_use]
    pub fn settle_ticks(mut self, ticks: usize) -> Self {
        self.config.settle_ticks = ticks;
        self
    }

    /// Caps background daemons to a fraction of one CPU.
    #[must_use]
    pub fn daemon_cap(mut self, cap: f64) -> Self {
        self.config.daemon_cap = Some(cap);
        self
    }

    /// Sets the app nanoseconds represented by one tick interval.
    #[must_use]
    pub fn tick_interval_app_ns(mut self, ns: u64) -> Self {
        self.config.tick_interval_app_ns = ns;
        self
    }

    /// Enables event tracing with a ring of the given capacity.
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.config.trace_capacity = Some(capacity);
        self
    }

    /// Enables or disables live profiling.
    #[must_use]
    pub fn profile(mut self, on: bool) -> Self {
        self.config.profile = on;
        self
    }

    /// Installs a deterministic fault-injection plan.
    #[must_use]
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.config.fault = Some(plan);
        self
    }

    /// Enables or disables the per-tick consistency audit.
    #[must_use]
    pub fn audit(mut self, on: bool) -> Self {
        self.config.audit = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`TridentError::InvalidConfig`] when a sample count or interval is
    /// zero, host memory is smaller than one giant page, the daemon cap is
    /// outside `(0, 1]`, or the trace capacity is zero.
    pub fn build(self) -> Result<SimConfig, TridentError> {
        let c = self.config;
        if c.measure_samples == 0 {
            return Err(TridentError::InvalidConfig {
                field: "measure_samples",
                reason: "must be nonzero",
            });
        }
        if c.measure_tick_every == 0 {
            return Err(TridentError::InvalidConfig {
                field: "measure_tick_every",
                reason: "must be nonzero",
            });
        }
        if c.tick_interval_pages == 0 {
            return Err(TridentError::InvalidConfig {
                field: "tick_interval_pages",
                reason: "must be nonzero",
            });
        }
        if c.scale.apply(c.host_mem_bytes) < c.geo.bytes(c.geo.largest()) {
            return Err(TridentError::InvalidConfig {
                field: "host_mem_bytes",
                reason: "scaled host memory must hold at least one top-rung page",
            });
        }
        if let Some(cap) = c.daemon_cap {
            if !(cap.is_finite() && cap > 0.0 && cap <= 1.0) {
                return Err(TridentError::InvalidConfig {
                    field: "daemon_cap",
                    reason: "must be in (0, 1]",
                });
            }
        }
        if c.trace_capacity == Some(0) {
            return Err(TridentError::InvalidConfig {
                field: "trace_capacity",
                reason: "must be nonzero when tracing is enabled",
            });
        }
        Ok(c)
    }
}

/// The x86-64 geometry with huge/giant orders reduced by log2(`scale`):
/// page-size *ratios* against footprints and TLB reach stay exactly as on
/// real hardware while everything shrinks.
///
/// # Panics
///
/// Panics if `scale` is not a power of two in `1..=256`.
#[must_use]
pub fn scaled_geometry(scale: u64) -> PageGeometry {
    scaled_geometry_for(&PageGeometry::X86_64, scale)
}

/// Any architecture's ladder with every rung order reduced by
/// log2(`scale`) — [`PageGeometry::scaled`] applied to the simulator's
/// power-of-two scale contract. Rung *labels* keep their architectural
/// names ("2MB", "64KB-napot", ...) so reports and golden CSVs read the
/// same at every scale.
///
/// # Panics
///
/// Panics if `scale` is not a power of two in `1..=256`.
#[must_use]
pub fn scaled_geometry_for(arch: &PageGeometry, scale: u64) -> PageGeometry {
    assert!(
        scale.is_power_of_two() && scale <= 256,
        "scale must be a power of two <= 256"
    );
    arch.scaled(scale.trailing_zeros() as u8)
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            geo: scaled_geometry(MemoryScale::default().divisor()),
            host_mem_bytes: 384 * GIB,
            scale: MemoryScale::default(),
            fragment: None,
            seed: 42,
            tick_interval_pages: 8192,
            measure_samples: 120_000,
            measure_tick_every: 20_000,
            settle_ticks: 48,
            daemon_cap: None,
            tick_interval_app_ns: 50_000_000,
            trace_capacity: None,
            profile: false,
            fault: None,
            audit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales_the_paper_testbed() {
        let c = SimConfig::default();
        // 384GB / 16 = 24GB = 6M pages.
        assert_eq!(c.host_pages(), 24 * GIB / 4096);
        assert_eq!(c.tlb_divisor(), 16);
    }

    #[test]
    fn fragmented_toggle_sets_heavy_profile() {
        let c = SimConfig::default().fragmented();
        assert!(c.fragment.is_some());
    }

    #[test]
    fn at_scale_only_changes_the_scale() {
        let c = SimConfig::at_scale(64);
        assert_eq!(c.scale.divisor(), 64);
        assert_eq!(c.host_mem_bytes, SimConfig::default().host_mem_bytes);
    }

    #[test]
    fn builder_defaults_match_at_scale() {
        assert_eq!(
            SimConfig::builder(64).build().unwrap(),
            SimConfig::at_scale(64)
        );
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        for err in [
            SimConfig::builder(64).measure_samples(0).build(),
            SimConfig::builder(64).measure_tick_every(0).build(),
            SimConfig::builder(64).tick_interval_pages(0).build(),
            SimConfig::builder(64).daemon_cap(0.0).build(),
            SimConfig::builder(64).daemon_cap(1.5).build(),
            SimConfig::builder(64).daemon_cap(f64::NAN).build(),
            SimConfig::builder(64).trace_capacity(0).build(),
            SimConfig::builder(64).host_mem_bytes(0).build(),
        ] {
            assert!(matches!(err, Err(TridentError::InvalidConfig { .. })));
        }
    }

    #[test]
    fn builder_accepts_tracing_and_fragmentation() {
        let c = SimConfig::builder(256)
            .seed(7)
            .trace_capacity(1 << 16)
            .fragment(FragmentProfile::heavy())
            .daemon_cap(0.1)
            .build()
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.trace_capacity, Some(1 << 16));
        assert!(c.fragment.is_some());
    }

    #[test]
    fn traced_toggle_sets_capacity() {
        assert_eq!(SimConfig::default().traced(512).trace_capacity, Some(512));
    }

    #[test]
    fn profile_toggles() {
        assert!(!SimConfig::default().profile);
        assert!(SimConfig::default().profiled().profile);
        assert!(
            SimConfig::builder(64)
                .profile(true)
                .build()
                .unwrap()
                .profile
        );
    }
}
