//! Simulation configuration.

use trident_phys::FragmentProfile;
use trident_types::{PageGeometry, GIB};
use trident_workloads::MemoryScale;

/// Configuration of one simulated system run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Page geometry (the real x86-64 layout for experiments).
    pub geo: PageGeometry,
    /// Host physical memory in bytes, unscaled (the paper's testbed has
    /// 384GB).
    pub host_mem_bytes: u64,
    /// Memory-scale divisor applied to host memory and workload
    /// footprints alike; the TLB is scaled by the same factor so the
    /// reach ratios of Table 1 are preserved.
    pub scale: MemoryScale,
    /// Fragment physical memory before the run (§3 methodology).
    pub fragment: Option<FragmentProfile>,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Touched pages between background-daemon ticks during load.
    pub tick_interval_pages: u64,
    /// Sampled accesses in the measurement phase.
    pub measure_samples: usize,
    /// Samples between daemon ticks during measurement.
    pub measure_tick_every: usize,
    /// Maximum settling ticks after load (stops early at quiescence).
    pub settle_ticks: usize,
    /// Cap background daemons to this fraction of one CPU (Figure 13's
    /// 10% `khugepaged` limit), or `None` for no cap.
    pub daemon_cap: Option<f64>,
    /// Application wall-clock nanoseconds represented by one tick
    /// interval (used by the daemon cap accounting).
    pub tick_interval_app_ns: u64,
}

impl SimConfig {
    /// The default configuration at a given memory scale.
    ///
    /// Scaling divides every byte quantity (host memory, workload
    /// footprints) *and* the large-page sizes by the same power of two:
    /// at scale 16 a "giant" page is 64MB and a "huge" page 128KB, while
    /// the TLB keeps its real Skylake entry counts — so every ratio that
    /// drives the paper's results (footprint : TLB reach, footprint :
    /// giant-page size, huge : giant) is preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a power of two or exceeds 256.
    #[must_use]
    pub fn at_scale(scale: u64) -> SimConfig {
        SimConfig {
            scale: MemoryScale::new(scale),
            geo: scaled_geometry(scale),
            ..SimConfig::default()
        }
    }

    /// Host memory in (scaled) base pages.
    #[must_use]
    pub fn host_pages(&self) -> u64 {
        self.geo
            .pages_for_bytes(self.scale.apply(self.host_mem_bytes))
    }

    /// The TLB scale divisor matching the memory scale.
    #[must_use]
    pub fn tlb_divisor(&self) -> usize {
        usize::try_from(self.scale.divisor()).expect("fits usize")
    }

    /// Returns a copy with fragmentation enabled (heavy profile).
    #[must_use]
    pub fn fragmented(mut self) -> SimConfig {
        self.fragment = Some(FragmentProfile::heavy());
        self
    }
}

/// The x86-64 geometry with huge/giant orders reduced by log2(`scale`):
/// page-size *ratios* against footprints and TLB reach stay exactly as on
/// real hardware while everything shrinks.
///
/// # Panics
///
/// Panics if `scale` is not a power of two in `1..=256`.
#[must_use]
pub fn scaled_geometry(scale: u64) -> PageGeometry {
    assert!(
        scale.is_power_of_two() && scale <= 256,
        "scale must be a power of two <= 256"
    );
    let shift = scale.trailing_zeros() as u8;
    PageGeometry::new(12, 9 - shift.min(8), 18 - shift)
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            geo: scaled_geometry(MemoryScale::default().divisor()),
            host_mem_bytes: 384 * GIB,
            scale: MemoryScale::default(),
            fragment: None,
            seed: 42,
            tick_interval_pages: 8192,
            measure_samples: 120_000,
            measure_tick_every: 20_000,
            settle_ticks: 48,
            daemon_cap: None,
            tick_interval_app_ns: 50_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales_the_paper_testbed() {
        let c = SimConfig::default();
        // 384GB / 16 = 24GB = 6M pages.
        assert_eq!(c.host_pages(), 24 * GIB / 4096);
        assert_eq!(c.tlb_divisor(), 16);
    }

    #[test]
    fn fragmented_toggle_sets_heavy_profile() {
        let c = SimConfig::default().fragmented();
        assert!(c.fragment.is_some());
    }

    #[test]
    fn at_scale_only_changes_the_scale() {
        let c = SimConfig::at_scale(64);
        assert_eq!(c.scale.divisor(), 64);
        assert_eq!(c.host_mem_bytes, SimConfig::default().host_mem_bytes);
    }
}
