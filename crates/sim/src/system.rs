//! A native simulated machine running N co-located workloads — one per
//! tenant — on one physical pool under one kernel policy.
//!
//! Single-tenant machines are the degenerate case (and stay bit-identical
//! to the historical single-workload engine); multi-tenant machines
//! interleave tenant loads on the shared buddy allocator, attribute every
//! memory-management event to the tenant it was done for, and let each
//! tenant steer the shared promotion daemon through a
//! [`PolicyHint`](trident_core::PolicyHint).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use trident_core::{
    Event, FaultInjector, InvariantViolation, MmContext, ObsRecorder, PagePolicy, PolicyError,
    PolicyHint, Recorder, RingTracer, SpaceSet, StatsSnapshot, TenantPolicy,
};
use trident_phys::{Fragmenter, PhysMemError, PhysicalMemory};
use trident_prof::{Profile, Profiler};
use trident_tlb::{TlbHierarchy, TlbOutcome, TranslationEngine, TranslationStats, WalkCostModel};
use trident_types::{AsId, PageGeometry, PageSize, TenantId, TridentError, Vpn, MAX_RUNGS};
use trident_vm::{mappable_bytes, AddressSpace};
use trident_workloads::{AccessSampler, AllocPlan, Layout, WorkloadSpec};

use crate::{DaemonGovernor, PolicyKind, SimConfig};

/// Virtual-page-number offset separating co-located tenants in the shared
/// TLB (the model has no ASID tagging, so distinct high bits stand in for
/// it). Tenant 0's offset is zero, preserving single-tenant bit-identity.
const TENANT_VPN_SALT_SHIFT: u32 = 44;

/// What one tenant experienced during the measurement phase.
#[derive(Debug, Clone)]
pub struct TenantMeasurement {
    /// The tenant these numbers belong to.
    pub tenant: TenantId,
    /// This tenant's workload name.
    pub workload: &'static str,
    /// Accesses sampled from this tenant.
    pub samples: usize,
    /// TLB-miss page walks among them.
    pub walks: u64,
    /// Cycles this tenant spent translating (walks + L2-hit latency).
    pub walk_cycles: u64,
    /// Snapshot of the MM events attributed to this tenant (cumulative
    /// since boot).
    pub snapshot: StatsSnapshot,
    /// Bytes this tenant has mapped at each ladder rung.
    pub mapped_bytes: [u64; MAX_RUNGS],
    /// The tenant's fragmentation experience: the fraction of its
    /// resident bytes *not* backed by top-rung (1GB on x86-64) mappings
    /// (0.0 when everything top-backed, 1.0 when nothing is). The
    /// machine-wide FMFI is a pool property; this is the per-tenant
    /// projection of it.
    pub fmfi_giant: f64,
}

/// What one measurement phase observed.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Sampled accesses (across all tenants).
    pub samples: usize,
    /// TLB-miss page walks among them.
    pub walks: u64,
    /// Cycles spent translating (walks + L2-hit latency).
    pub walk_cycles: u64,
    /// Full TLB statistics.
    pub tlb: TranslationStats,
    /// Snapshot of the pooled MM statistics at measurement end
    /// (cumulative since boot).
    pub snapshot: StatsSnapshot,
    /// Events recorded since tracing started (empty unless the config
    /// enables a trace capacity); drained from the ring at measurement
    /// end.
    pub trace: Vec<Event>,
    /// Events the ring tracer evicted before measurement end (0 when the
    /// trace is complete, or when tracing was off).
    pub trace_dropped: u64,
    /// The live profile (spans + time-series + counters), present when
    /// the config enables profiling. Boxed: a profile is several KB and
    /// most measurements carry none.
    pub profile: Option<Box<Profile>>,
    /// Bytes mapped at each ladder rung at measurement end, summed over
    /// every tenant.
    pub mapped_bytes: [u64; MAX_RUNGS],
    /// Page-walk counts per giant-aligned virtual chunk of tenant 0's
    /// address space (Figure 4).
    pub miss_by_chunk: Vec<(u64, u64)>,
    /// Per-tenant breakdown, in tenant order. One entry per tenant; the
    /// per-tenant `samples`/`walks`/`walk_cycles` sum to the pooled
    /// fields above, and each snapshot holds only the events attributed
    /// to that tenant.
    pub tenants: Vec<TenantMeasurement>,
}

struct LoadedWorkload {
    spec: WorkloadSpec,
    sampler: AccessSampler,
}

/// One co-located tenant's runtime state: its address space id, its
/// workload sampler, and its own RNG stream (tenant 0 owns the machine
/// RNG; later tenants get derived streams, so adding a tenant never
/// perturbs an earlier tenant's sequence).
struct Tenant {
    id: TenantId,
    asid: AsId,
    workload: LoadedWorkload,
    rng: SmallRng,
    touched: u64,
    vpn_salt: u64,
}

/// Launch-time description of one tenant: its workload plus the
/// scheduling parameters and [`PolicyHint`] registered with the engine.
///
/// # Examples
///
/// ```
/// use trident_sim::TenantSpec;
/// use trident_workloads::WorkloadSpec;
///
/// let spec = TenantSpec::new(WorkloadSpec::by_name("Redis").unwrap())
///     .weight(2)
///     .chunk_budget(4);
/// assert_eq!(spec.weight, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The workload this tenant runs.
    pub workload: WorkloadSpec,
    /// Weighted-round-robin share of the promotion daemon (≥ 1).
    pub weight: u32,
    /// Per-tick promotion-budget override (`None` = daemon default).
    pub chunk_budget: Option<usize>,
    /// Promotion guidance the tenant supplies.
    pub hint: PolicyHint,
}

impl TenantSpec {
    /// A neutral tenant: weight 1, default budget, no hints.
    #[must_use]
    pub fn new(workload: WorkloadSpec) -> TenantSpec {
        TenantSpec {
            workload,
            weight: 1,
            chunk_budget: None,
            hint: PolicyHint::new(),
        }
    }

    /// Sets the fairness weight.
    #[must_use]
    pub fn weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Overrides the per-tick promotion budget.
    #[must_use]
    pub fn chunk_budget(mut self, budget: usize) -> TenantSpec {
        self.chunk_budget = Some(budget);
        self
    }

    /// Installs promotion guidance.
    #[must_use]
    pub fn hint(mut self, hint: PolicyHint) -> TenantSpec {
        self.hint = hint;
        self
    }
}

/// Builds a [`System`]: the one way to boot a machine.
///
/// Replaces the old `launch`/`launch_recording`/`launch_with` triad with
/// chained setters; [`build`](SystemBuilder::build) validates the whole
/// description before booting.
///
/// # Examples
///
/// ```no_run
/// use trident_sim::{PolicyKind, SimConfig, System, TenantSpec};
/// use trident_workloads::WorkloadSpec;
///
/// // Single tenant — the common case:
/// let mut system = System::builder(SimConfig::at_scale(64))
///     .policy(PolicyKind::Trident)
///     .workload(WorkloadSpec::by_name("GUPS").unwrap())
///     .build()?;
/// system.settle();
/// let m = system.measure();
/// println!("walk cycles: {}", m.walk_cycles);
///
/// // Co-location — three tenants on one pool:
/// let mut cell = System::builder(SimConfig::at_scale(64))
///     .policy(PolicyKind::Trident)
///     .tenant(TenantSpec::new(WorkloadSpec::by_name("Redis").unwrap()).weight(2))
///     .tenant(TenantSpec::new(WorkloadSpec::by_name("GUPS").unwrap()))
///     .tenant(TenantSpec::new(WorkloadSpec::by_name("XSBench").unwrap()))
///     .build()?;
/// cell.settle();
/// for t in &cell.measure().tenants {
///     println!("{}: {} walk cycles", t.tenant, t.walk_cycles);
/// }
/// # Ok::<(), trident_phys::PhysMemError>(())
/// ```
pub struct SystemBuilder {
    config: SimConfig,
    kind: Option<PolicyKind>,
    policy: Option<Box<dyn PagePolicy>>,
    recorder: Option<ObsRecorder>,
    tenants: Vec<TenantSpec>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("kind", &self.kind)
            .field("tenants", &self.tenants.len())
            .finish()
    }
}

impl SystemBuilder {
    /// Selects the kernel policy by kind.
    #[must_use]
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Installs a caller-constructed policy — for configurations outside
    /// the standard [`PolicyKind`] set (e.g. Trident with bloat recovery
    /// enabled). Mutually exclusive with [`policy`](Self::policy).
    #[must_use]
    pub fn policy_instance(mut self, policy: Box<dyn PagePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Adds a neutral tenant running `spec` — shorthand for
    /// `.tenant(TenantSpec::new(spec))`.
    #[must_use]
    pub fn workload(self, spec: WorkloadSpec) -> Self {
        self.tenant(TenantSpec::new(spec))
    }

    /// Adds a tenant. Tenants are numbered in insertion order: the first
    /// becomes tenant 0 (whose view legacy accessors like
    /// [`System::space`] expose).
    #[must_use]
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Selects the page-size ladder by architecture — the unscaled
    /// descriptor (e.g. [`PageGeometry::RISCV_SV48`]) is rescaled to the
    /// config's memory scale, exactly as the default x86-64 ladder is.
    /// The default is [`PageGeometry::X86_64`], whose runs are
    /// bit-identical to the historical three-size engine.
    #[must_use]
    pub fn geometry(mut self, arch: PageGeometry) -> Self {
        self.config.geo = crate::config::scaled_geometry_for(&arch, self.config.scale.divisor());
        self
    }

    /// Installs a caller-supplied recorder *before* the load phase, so
    /// load-time events are captured too — the hook `--trace-out` uses to
    /// stream a run's full event stream to disk instead of buffering it
    /// in a ring. Overrides whatever `config.trace_capacity` and
    /// `config.profile` would have installed.
    #[must_use]
    pub fn recorder(mut self, recorder: ObsRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Validates the description and boots the machine: fragments memory
    /// if configured, registers the tenant directory, builds the policy
    /// (hugetlbfs variants reserve their pool here — failing on
    /// fragmented memory exactly as the paper reports), and loads every
    /// tenant with faults interleaved with allocation.
    ///
    /// # Errors
    ///
    /// [`TridentError::InvalidConfig`] when no tenant or no policy was
    /// given, both a [`PolicyKind`] and a policy instance were given, or
    /// a tenant's budget override is zero; otherwise the allocation error
    /// when a hugetlbfs reservation cannot be satisfied.
    pub fn build(self) -> Result<System, PhysMemError> {
        if self.tenants.is_empty() {
            return Err(TridentError::InvalidConfig {
                field: "tenants",
                reason: "at least one tenant (or workload) is required",
            });
        }
        if self.kind.is_some() && self.policy.is_some() {
            return Err(TridentError::InvalidConfig {
                field: "policy",
                reason: "policy kind and policy instance are mutually exclusive",
            });
        }
        if self.tenants.iter().any(|t| t.chunk_budget == Some(0)) {
            return Err(TridentError::InvalidConfig {
                field: "chunk_budget",
                reason: "a tenant budget override must be nonzero",
            });
        }
        let config = self.config;
        let geo = config.geo;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, config.host_pages()));
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let fragmenter = config.fragment.map(|profile| {
            let mut f = Fragmenter::new(profile);
            f.run(&mut ctx.mem, &mut rng);
            f
        });

        // Register who owns what before anything records or promotes, and
        // open attribution on tenant 0 while the recorder is still the
        // no-op (so no scope marker lands in single-tenant traces). From
        // here on the scope is always some tenant, which is what makes
        // per-tenant snapshots sum to the pooled totals.
        let mut spaces = SpaceSet::new();
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (i, spec) in self.tenants.iter().enumerate() {
            let id = TenantId::new(u32::try_from(i).expect("tenant count fits u32"));
            let asid = AsId::new(u32::try_from(i + 1).expect("tenant count fits u32"));
            ctx.tenants.register(
                asid,
                TenantPolicy {
                    tenant: id,
                    weight: spec.weight,
                    chunk_budget: spec.chunk_budget,
                    hint: spec.hint.clone(),
                },
            );
            spaces.insert(AddressSpace::new(asid, geo));
            tenants.push(Tenant {
                id,
                asid,
                workload: LoadedWorkload {
                    spec: spec.workload,
                    // Placeholder sampler; replaced after load.
                    sampler: AccessSampler::new(
                        spec.workload,
                        Layout::from_ranges(vec![trident_workloads::ChunkRange {
                            start: Vpn::new(0),
                            pages: 1,
                        }]),
                    ),
                },
                // Tenant 0 takes over the machine RNG (continuing the
                // fragmenter's stream, exactly as the single-workload
                // engine did); later tenants get derived streams.
                rng: SmallRng::seed_from_u64(
                    config
                        .seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64)),
                ),
                touched: 0,
                vpn_salt: (i as u64) << TENANT_VPN_SALT_SHIFT,
            });
        }
        tenants[0].rng = rng;
        ctx.set_tenant_scope(Some(TenantId::new(0)));

        let workload_pages: u64 = self
            .tenants
            .iter()
            .map(|t| {
                geo.pages_for_bytes(config.scale.apply(t.workload.footprint_bytes))
                    .max(1)
            })
            .sum();
        let policy = match self.policy {
            Some(policy) => policy,
            None => {
                let kind = self.kind.ok_or(TridentError::InvalidConfig {
                    field: "policy",
                    reason: "a policy kind or policy instance is required",
                })?;
                kind.build(&mut ctx, workload_pages)?
            }
        };

        ctx.recorder = match self.recorder {
            Some(recorder) => recorder,
            None => {
                let inner = match config.trace_capacity {
                    Some(capacity) => ObsRecorder::ring(capacity),
                    None => ObsRecorder::default(),
                };
                if config.profile {
                    ObsRecorder::custom(Box::new(Profiler::new(1, inner)))
                } else {
                    inner
                }
            }
        };
        // The injector must be live before load so load-phase faults are
        // subject to the plan too.
        if let Some(plan) = config.fault {
            ctx.fault = FaultInjector::new(plan);
        }
        let engine =
            TranslationEngine::new(TlbHierarchy::with_geometry(geo), WalkCostModel::default());
        let mut system = System {
            governor: DaemonGovernor::new(config.daemon_cap, config.tick_interval_app_ns),
            config,
            ctx,
            spaces,
            policy,
            engine,
            fragmenter,
            tenants,
            touched: 0,
            mappable_timeline: Vec::new(),
            violations: Vec::new(),
            ticks: 0,
            samples_done: 0,
            progress_hook: None,
        };
        system.load_all();
        Ok(system)
    }
}

/// A point-in-time progress report handed to a [`System`] progress
/// hook at every daemon tick.
///
/// Everything here is read off state the tick already computed — taking
/// a report never touches the seeded RNG or modeled time, so a run
/// observed through a hook measures bit-identically to an unobserved
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Daemon ticks executed so far (load, settle and measure phases).
    pub ticks: u64,
    /// Measured accesses completed so far (0 until `measure` starts).
    pub samples_done: u64,
    /// Total accesses `measure` will perform.
    pub samples_total: u64,
    /// Current 1GB free-memory fragmentation index, in thousandths.
    pub fmfi_milli: u64,
}

/// A native machine: one physical pool, N tenant processes, one kernel
/// policy, and the (scaled) Skylake TLB. Boot one with
/// [`System::builder`].
pub struct System {
    /// The configuration this system was launched with.
    pub config: SimConfig,
    /// Memory-management state.
    pub ctx: MmContext,
    /// Process address spaces (one per tenant).
    pub spaces: SpaceSet,
    policy: Box<dyn PagePolicy>,
    engine: TranslationEngine,
    governor: DaemonGovernor,
    fragmenter: Option<Fragmenter>,
    tenants: Vec<Tenant>,
    touched: u64,
    /// (2MB-mappable bytes, 1GB-mappable bytes) of tenant 0's space,
    /// sampled after each of its allocation steps — Figure 3's timeline.
    pub mappable_timeline: Vec<(u64, u64)>,
    /// Invariant violations collected by the per-tick audit (empty unless
    /// `config.audit` is set — and expected to stay empty even under
    /// fault injection; anything here is a bug).
    violations: Vec<InvariantViolation>,
    ticks: u64,
    samples_done: u64,
    progress_hook: Option<Box<dyn FnMut(RunProgress) + Send>>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("policy", &self.policy.name())
            .field(
                "workloads",
                &self
                    .tenants
                    .iter()
                    .map(|t| t.workload.spec.name)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl System {
    /// Starts describing a machine; finish with
    /// [`SystemBuilder::build`].
    #[must_use]
    pub fn builder(config: SimConfig) -> SystemBuilder {
        SystemBuilder {
            config,
            kind: None,
            policy: None,
            recorder: None,
            tenants: Vec::new(),
        }
    }

    /// The policy's display name.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Tenant 0's workload.
    #[must_use]
    pub fn workload(&self) -> &WorkloadSpec {
        &self.tenants[0].workload.spec
    }

    /// Number of co-located tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The registered tenant ids, in order.
    #[must_use]
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|t| t.id).collect()
    }

    /// Executes every tenant's allocation plan with first-touch faults
    /// interleaved — both within a tenant (how real applications populate
    /// memory) and *across* tenants (how co-located processes interleave
    /// on the shared pool) — running daemon ticks along the way and
    /// recording the Figure 3 mappability timeline for tenant 0.
    fn load_all(&mut self) {
        let geo = self.config.geo;
        struct TenantLoad {
            plan: AllocPlan,
            next_step: usize,
            ranges: Vec<trident_workloads::ChunkRange>,
            pending: std::collections::VecDeque<trident_workloads::ChunkRange>,
        }
        // Plans are drawn per tenant from that tenant's own RNG stream,
        // in tenant order, so a tenant's plan never depends on who else
        // is on the machine.
        let mut loads: Vec<TenantLoad> = self
            .tenants
            .iter_mut()
            .map(|t| {
                let plan = t.workload.spec.plan(geo, self.config.scale, &mut t.rng);
                let steps = plan.steps.len();
                TenantLoad {
                    plan,
                    next_step: 0,
                    ranges: Vec::with_capacity(steps),
                    pending: std::collections::VecDeque::new(),
                }
            })
            .collect();
        // Round-robin one allocation step per tenant per round. Arena
        // allocators reserve virtual memory ahead of first touch:
        // touching trails allocation by `alloc_touch_lag` steps, which is
        // what lets the fault handler see 1GB-mappable ranges even for
        // incremental allocators (Table 4's fault-time attempts).
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (i, load) in loads.iter_mut().enumerate() {
                let Some(step) = load.plan.steps.get(load.next_step) else {
                    continue;
                };
                progressed = true;
                load.next_step += 1;
                self.ctx.set_tenant_scope(Some(self.tenants[i].id));
                let range = {
                    let space = self
                        .spaces
                        .get_mut(self.tenants[i].asid)
                        .expect("tenant space");
                    AllocPlan::execute_step(space, step)
                };
                load.ranges.push(range);
                load.pending.push_back(range);
                let lag = self.tenants[i].workload.spec.alloc_touch_lag as usize;
                if load.pending.len() > lag {
                    let due = load.pending.pop_front().expect("just checked");
                    self.touch_range(i, due);
                }
                if i == 0 {
                    let huge = geo
                        .size_for_order(geo.level_order(2))
                        .expect("every ladder has a natural level-2 rung");
                    let space = self.spaces.get(self.tenants[0].asid).expect("tenant space");
                    self.mappable_timeline.push((
                        mappable_bytes(space, huge),
                        mappable_bytes(space, geo.largest()),
                    ));
                }
            }
        }
        for (i, load) in loads.iter_mut().enumerate() {
            self.ctx.set_tenant_scope(Some(self.tenants[i].id));
            while let Some(due) = load.pending.pop_front() {
                self.touch_range(i, due);
            }
        }
        for (t, load) in self.tenants.iter_mut().zip(loads) {
            let layout = Layout::from_ranges(load.ranges);
            t.workload.sampler = AccessSampler::new(t.workload.spec, layout);
        }
        self.ctx.set_tenant_scope(Some(self.tenants[0].id));
    }

    /// Touches the portion of a chunk the application actually uses
    /// (`touch_fraction`); the rest stays unbacked — the raw material of
    /// §7's promotion bloat. Large ranges are prefix-touched; small
    /// allocation chunks are touched all-or-none (a slab either holds
    /// objects or sits empty), which is what lets 1GB promotion back
    /// memory THP never would.
    fn touch_range(&mut self, tenant_idx: usize, range: trident_workloads::ChunkRange) {
        use rand::Rng;
        let geo = self.config.geo;
        let tenant = &mut self.tenants[tenant_idx];
        let spec = tenant.workload.spec;
        let touched = if range.pages >= geo.base_pages(geo.largest()) {
            ((range.pages as f64) * spec.touch_fraction).ceil() as u64
        } else if spec.touch_fraction >= 1.0 || tenant.rng.gen_bool(spec.touch_fraction) {
            range.pages
        } else {
            0
        };
        for i in 0..touched.min(range.pages) {
            self.touch_populate(tenant_idx, range.start + i);
        }
    }

    /// First-touch of one page: fault it in if unmapped, reclaiming page
    /// cache under memory pressure (kswapd's job), and run a governed
    /// daemon tick every `tick_interval_pages` touches (machine-wide —
    /// the daemons do not know which tenant's touch tripped the
    /// interval).
    fn touch_populate(&mut self, tenant_idx: usize, vpn: Vpn) {
        // Keep a small free reserve like kswapd does, so allocations
        // don't hit hard OOM while the page cache holds reclaimable
        // memory.
        if self.ctx.mem.free_fraction() < 0.02 {
            if let Some(f) = &mut self.fragmenter {
                f.reclaim(&mut self.ctx.mem, 1 << 15);
            }
        }
        let asid = self.tenants[tenant_idx].asid;
        let space = self.spaces.get_mut(asid).expect("tenant space");
        if space.page_table().translate(vpn).is_none() {
            match self.policy.on_fault(&mut self.ctx, space, vpn) {
                Ok(_) => {}
                Err(PolicyError::OutOfContiguousMemory(_)) => {
                    let f = self
                        .fragmenter
                        .as_mut()
                        .expect("OOM can only happen with a resident page cache");
                    f.reclaim(&mut self.ctx.mem, 1 << 16);
                    let space = self.spaces.get_mut(asid).expect("tenant space");
                    self.policy
                        .on_fault(&mut self.ctx, space, vpn)
                        .expect("fault succeeds after reclaim");
                }
                Err(e) => panic!("populate fault failed: {e}"),
            }
        }
        self.tenants[tenant_idx].touched += 1;
        self.touched += 1;
        if self.touched.is_multiple_of(self.config.tick_interval_pages) {
            self.tick();
        }
    }

    /// One governed background-daemon tick. When a recorder is active,
    /// a fragmentation/contiguity gauge sample follows the tick so the
    /// time-series can chart FMFI and free large-block capacity.
    pub fn tick(&mut self) -> trident_core::TickOutcome {
        let out = self
            .governor
            .tick(self.policy.as_mut(), &mut self.ctx, &mut self.spaces);
        if self.ctx.recorder.enabled() {
            self.ctx.recorder.record(self.gauge_sample());
        }
        if self.config.audit {
            if let Err(v) = trident_core::check_mm_consistent(&self.ctx, &self.spaces) {
                self.violations.extend(v);
            }
        } else {
            #[cfg(debug_assertions)]
            trident_core::assert_mm_consistent(&self.ctx, &self.spaces);
        }
        self.ticks += 1;
        if self.progress_hook.is_some() {
            // The gauge is a pure read of buddy state; computed only when
            // someone is listening, and the hook itself never touches the
            // RNG or modeled time, so observed and unobserved runs stay
            // bit-identical.
            let top = self.config.geo.largest();
            let fmfi_milli = (self.ctx.mem.fmfi(top) * 1000.0).round() as u64;
            let progress = RunProgress {
                ticks: self.ticks,
                samples_done: self.samples_done,
                samples_total: self.config.measure_samples as u64,
                fmfi_milli,
            };
            if let Some(hook) = self.progress_hook.as_mut() {
                hook(progress);
            }
        }
        out
    }

    /// Installs a per-tick progress hook; fired after every daemon tick
    /// with a [`RunProgress`] report. The hook observes the run without
    /// perturbing it: installing one must not (and cannot, through this
    /// API) change what the system computes.
    pub fn set_progress_hook(&mut self, hook: Box<dyn FnMut(RunProgress) + Send>) {
        self.progress_hook = Some(hook);
    }

    /// Daemon ticks executed so far, across all phases.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Invariant violations collected by the per-tick audit; always empty
    /// unless the config enables `audit`. A graceful system keeps this
    /// empty even under fault injection — in a co-location cell, a
    /// violation here is an isolation violation.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Audit violations bucketed by the tenant whose space they landed
    /// in; machine-wide (buddy/region) violations land under `None`.
    #[must_use]
    pub fn violations_by_tenant(&self) -> Vec<(Option<TenantId>, u64)> {
        trident_core::violations_by_tenant(&self.ctx.tenants, &self.violations)
    }

    /// The current fragmentation/contiguity gauge: 1GB FMFI in
    /// thousandths plus free capacity at 2MB and 1GB granularity
    /// (higher-order free blocks count at their full capacity).
    fn gauge_sample(&self) -> Event {
        let geo = self.config.geo;
        let buddy = self.ctx.mem.buddy();
        let capacity_at = |order: u8| -> u64 {
            (order..=buddy.max_order())
                .map(|o| (buddy.free_blocks(o) as u64) << (o - order))
                .sum()
        };
        let huge = geo
            .size_for_order(geo.level_order(2))
            .expect("every ladder has a natural level-2 rung");
        Event::Gauge {
            fmfi_milli: (self.ctx.mem.fmfi(geo.largest()) * 1000.0).round() as u64,
            free_huge: capacity_at(geo.order(huge)),
            free_giant: capacity_at(geo.order(geo.largest())),
        }
    }

    /// Runs daemon ticks until promotions and compactions go quiet (or
    /// the configured budget runs out).
    pub fn settle(&mut self) {
        let mut quiet = 0;
        for _ in 0..self.config.settle_ticks {
            let out = self.tick();
            if out.promotions == 0 && out.compaction_runs == 0 && self.governor.debt_ns() == 0 {
                quiet += 1;
                if quiet >= 3 {
                    break;
                }
            } else {
                quiet = 0;
            }
        }
    }

    /// Samples accesses through the page tables and the TLB — round-robin
    /// over the tenants — with daemon ticks interleaved; returns the
    /// measurement. A warm-up of 10% of the samples primes the TLB before
    /// counting starts.
    pub fn measure(&mut self) -> Measurement {
        let n = self.tenants.len();
        let warmup = self.config.measure_samples / 10;
        for i in 0..warmup {
            self.measured_access(i % n, None);
        }
        self.engine.reset_stats();
        // Dense per-giant-chunk miss counters (chunk indexes are small and
        // contiguous); folded into sorted pairs once at the end.
        let mut miss_by_chunk: Vec<u64> = Vec::new();
        let mut per_samples = vec![0usize; n];
        let mut per_walks = vec![0u64; n];
        let mut per_cycles = vec![0u64; n];
        for i in 0..self.config.measure_samples {
            let idx = i % n;
            let result = self.measured_access(idx, Some(&mut miss_by_chunk));
            self.samples_done = (i + 1) as u64;
            per_samples[idx] += 1;
            per_cycles[idx] += result.cycles;
            if result.outcome == TlbOutcome::Miss {
                per_walks[idx] += 1;
            }
            if (i + 1) % self.config.measure_tick_every == 0 {
                let out = self.tick();
                if out.promotions > 0 {
                    // Remaps invalidate cached translations.
                    self.engine.flush();
                }
            }
        }
        let tlb = *self.engine.stats();
        let trace_dropped = self.ctx.recorder.tracer().map_or(0, RingTracer::dropped);
        let trace = self
            .ctx
            .recorder
            .tracer_mut()
            .map(RingTracer::drain)
            .unwrap_or_default();
        let profile = self
            .ctx
            .recorder
            .custom_mut::<Profiler>()
            .map(|p| Box::new(p.finish_profile()));
        let geo = self.config.geo;
        let top_rung = geo.largest().rung();
        let mut mapped_bytes = [0u64; MAX_RUNGS];
        let tenants: Vec<TenantMeasurement> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let space = self.spaces.get(t.asid).expect("tenant space");
                let mut mapped = [0u64; MAX_RUNGS];
                for size in geo.rungs() {
                    mapped[size.rung()] = space.page_table().mapped_bytes(size);
                }
                for (total, bytes) in mapped_bytes.iter_mut().zip(mapped) {
                    *total += bytes;
                }
                let resident: u64 = mapped.iter().sum();
                TenantMeasurement {
                    tenant: t.id,
                    workload: t.workload.spec.name,
                    samples: per_samples[i],
                    walks: per_walks[i],
                    walk_cycles: per_cycles[i],
                    snapshot: self.ctx.tenant_snapshot(t.id),
                    mapped_bytes: mapped,
                    fmfi_giant: if resident == 0 {
                        0.0
                    } else {
                        1.0 - (mapped[top_rung] as f64 / resident as f64)
                    },
                }
            })
            .collect();
        Measurement {
            samples: self.config.measure_samples,
            walks: tlb.total_walks(),
            walk_cycles: tlb.total_walk_cycles(),
            tlb,
            snapshot: self.ctx.snapshot(),
            trace,
            trace_dropped,
            profile,
            mapped_bytes,
            miss_by_chunk: miss_by_chunk
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(chunk, &n)| (chunk as u64, n))
                .collect(),
            tenants,
        }
    }

    fn measured_access(
        &mut self,
        tenant_idx: usize,
        miss_by_chunk: Option<&mut Vec<u64>>,
    ) -> trident_tlb::AccessResult {
        let tenant = &mut self.tenants[tenant_idx];
        let access = tenant.workload.sampler.sample(&mut tenant.rng);
        let (asid, salt, id) = (tenant.asid, tenant.vpn_salt, tenant.id);
        self.ctx.set_tenant_scope(Some(id));
        let space = self.spaces.get_mut(asid).expect("tenant space");
        let translation = match space.page_table_mut().access(access.vpn, access.write) {
            Some(t) => t,
            None => {
                // A demotion may have unmapped a cold page; fault it back.
                self.policy
                    .on_fault(&mut self.ctx, space, access.vpn)
                    .expect("measurement fault");
                let space = self.spaces.get_mut(asid).expect("tenant space");
                space
                    .page_table_mut()
                    .access(access.vpn, access.write)
                    .expect("fault installed a mapping")
            }
        };
        // The shared TLB keys on the salted VPN, standing in for ASID
        // tagging (tenant 0's salt is zero).
        let result = self.engine.translate_rec(
            Vpn::new(access.vpn.raw() + salt),
            translation.size,
            &mut self.ctx.recorder,
        );
        if result.outcome == TlbOutcome::Miss && tenant_idx == 0 {
            if let Some(counts) = miss_by_chunk {
                let chunk = self.config.geo.giant_region_of(access.vpn.raw()) as usize;
                if chunk >= counts.len() {
                    counts.resize(chunk + 1, 0);
                }
                counts[chunk] += 1;
            }
        }
        result
    }

    /// The (scaled) page geometry this machine runs.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.config.geo
    }

    /// Bytes currently mapped at `size` in tenant 0's address space.
    #[must_use]
    pub fn mapped_bytes(&self, size: PageSize) -> u64 {
        self.space().page_table().mapped_bytes(size)
    }

    /// Base pages the tenants have actually touched (first-touch count
    /// from the load phase, machine-wide). `resident - touched` is the §7
    /// memory bloat, and `touched` is the floor that HawkEye-style
    /// zero-page deduplication can recover to.
    #[must_use]
    pub fn touched_pages(&self) -> u64 {
        self.touched
    }

    /// Grabs kernel memory until the free fraction drops to `target` —
    /// the memory pressure that trips bloat-recovery watermarks.
    pub fn apply_memory_pressure(&mut self, target: f64) {
        while self.ctx.mem.free_fraction() > target {
            if self
                .ctx
                .mem
                .allocate_order(0, trident_phys::FrameUse::Kernel, None)
                .is_err()
            {
                break;
            }
        }
    }

    /// Tenant 0's address space — the legacy single-tenant view.
    #[must_use]
    pub fn space(&self) -> &AddressSpace {
        self.spaces.get(self.tenants[0].asid).expect("tenant space")
    }

    /// One tenant's address space, or `None` for an unknown tenant.
    #[must_use]
    pub fn tenant_space(&self, tenant: TenantId) -> Option<&AddressSpace> {
        let t = self.tenants.get(tenant.raw() as usize)?;
        self.spaces.get(t.asid)
    }

    /// Mutable access to tenant 0's RNG (experiments draw auxiliary
    /// randomness).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.tenants[0].rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimConfig {
        let mut c = SimConfig::at_scale(256);
        c.measure_samples = 5_000;
        c.measure_tick_every = 2_000;
        c.settle_ticks = 16;
        c
    }

    fn launch(config: SimConfig, kind: PolicyKind, spec: WorkloadSpec) -> System {
        System::builder(config)
            .policy(kind)
            .workload(spec)
            .build()
            .unwrap()
    }

    #[test]
    fn bulk_workload_under_trident_gets_giant_pages_at_fault() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let sys = launch(quick_config(), PolicyKind::Trident, spec);
        // 32GB/256 = 128MB heap: at least some giant mappings (scaled
        // giant pages are 1GB... at scale 256 the heap is 32768 pages,
        // which is smaller than a giant page) — so expect huge pages
        // instead. Verify *some* large mapping exists.
        let large = sys.mapped_bytes(PageSize::new(1)) + sys.mapped_bytes(PageSize::new(2));
        assert!(large > 0);
    }

    #[test]
    fn thp_never_produces_giant_mappings() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let mut sys = launch(quick_config(), PolicyKind::Thp, spec);
        sys.settle();
        assert_eq!(sys.mapped_bytes(PageSize::new(2)), 0);
        assert!(sys.mapped_bytes(PageSize::new(1)) > 0);
    }

    #[test]
    fn measure_accounts_every_sample() {
        let spec = WorkloadSpec::by_name("Btree").unwrap();
        let mut sys = launch(quick_config(), PolicyKind::Thp, spec);
        sys.settle();
        let m = sys.measure();
        assert_eq!(m.samples, 5_000);
        assert_eq!(m.tlb.total_accesses(), 5_000);
        assert!(m.walks <= 5_000);
        let chunk_misses: u64 = m.miss_by_chunk.iter().map(|(_, n)| n).sum();
        assert_eq!(chunk_misses, m.walks);
        // The per-tenant breakdown of a single-tenant run is the whole
        // run.
        assert_eq!(m.tenants.len(), 1);
        assert_eq!(m.tenants[0].tenant, TenantId::new(0));
        assert_eq!(m.tenants[0].samples, m.samples);
        assert_eq!(m.tenants[0].walks, m.walks);
        assert_eq!(m.tenants[0].walk_cycles, m.walk_cycles);
        assert_eq!(m.tenants[0].mapped_bytes, m.mapped_bytes);
        assert_eq!(
            m.tenants[0].snapshot.total_faults(),
            m.snapshot.total_faults()
        );
    }

    #[test]
    fn fragmented_launch_reclaims_instead_of_oom() {
        let spec = WorkloadSpec::by_name("Canneal").unwrap();
        let config = quick_config().fragmented();
        let sys = launch(config, PolicyKind::Trident, spec);
        // The workload fit despite the page cache having filled memory.
        assert!(
            sys.mapped_bytes(PageSize::BASE)
                + sys.mapped_bytes(PageSize::new(1))
                + sys.mapped_bytes(PageSize::new(2))
                > 0
        );
        sys.ctx.mem.assert_consistent();
    }

    #[test]
    fn hugetlbfs_reservation_fails_on_fragmented_memory() {
        let spec = WorkloadSpec::by_name("Canneal").unwrap();
        let config = quick_config().fragmented();
        let result = System::builder(config)
            .policy(PolicyKind::HugetlbfsGiant)
            .workload(spec)
            .build();
        assert!(result.is_err(), "1GB reservation must fail when fragmented");
    }

    #[test]
    fn builder_rejects_degenerate_descriptions() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        // No tenant.
        assert!(System::builder(quick_config())
            .policy(PolicyKind::Thp)
            .build()
            .is_err());
        // No policy.
        assert!(System::builder(quick_config())
            .workload(spec)
            .build()
            .is_err());
        // Kind and instance together.
        assert!(System::builder(quick_config())
            .policy(PolicyKind::Thp)
            .policy_instance(Box::new(trident_core::ThpPolicy::new()))
            .workload(spec)
            .build()
            .is_err());
        // Zero budget override.
        assert!(System::builder(quick_config())
            .policy(PolicyKind::Thp)
            .tenant(TenantSpec::new(spec).chunk_budget(0))
            .build()
            .is_err());
    }

    #[test]
    fn mappable_timeline_grows_monotonically_for_bulk() {
        let spec = WorkloadSpec::by_name("XSBench").unwrap();
        let sys = launch(quick_config(), PolicyKind::Thp, spec);
        assert!(!sys.mappable_timeline.is_empty());
        let (huge, giant) = *sys.mappable_timeline.last().unwrap();
        assert!(huge >= giant);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = WorkloadSpec::by_name("Redis").unwrap();
        let run = || {
            let mut sys = launch(quick_config(), PolicyKind::Trident, spec);
            sys.settle();
            let m = sys.measure();
            (m.walk_cycles, m.mapped_bytes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn colocated_tenants_share_the_pool_and_sum_to_the_machine() {
        let mut sys = System::builder(quick_config())
            .policy(PolicyKind::Trident)
            .tenant(TenantSpec::new(WorkloadSpec::by_name("Redis").unwrap()).weight(2))
            .tenant(TenantSpec::new(WorkloadSpec::by_name("GUPS").unwrap()))
            .tenant(TenantSpec::new(WorkloadSpec::by_name("XSBench").unwrap()))
            .build()
            .unwrap();
        assert_eq!(sys.tenant_count(), 3);
        sys.settle();
        let m = sys.measure();
        assert_eq!(m.tenants.len(), 3);
        // Every sample and walk cycle is attributed to exactly one
        // tenant.
        assert_eq!(
            m.tenants.iter().map(|t| t.samples).sum::<usize>(),
            m.samples
        );
        assert_eq!(m.tenants.iter().map(|t| t.walks).sum::<u64>(), m.walks);
        assert_eq!(
            m.tenants.iter().map(|t| t.walk_cycles).sum::<u64>(),
            m.walk_cycles
        );
        // Per-tenant fault counts sum to the pooled snapshot.
        assert_eq!(
            m.tenants
                .iter()
                .map(|t| t.snapshot.total_faults())
                .sum::<u64>(),
            m.snapshot.total_faults()
        );
        // Every tenant did real work on the one pool.
        for t in &m.tenants {
            assert!(t.samples > 0);
            assert!(t.mapped_bytes.iter().sum::<u64>() > 0);
            assert!((0.0..=1.0).contains(&t.fmfi_giant));
        }
        assert!(sys.tenant_space(TenantId::new(2)).is_some());
        assert!(sys.tenant_space(TenantId::new(9)).is_none());
    }

    #[test]
    fn colocated_runs_are_deterministic() {
        let run = || {
            let mut sys = System::builder(quick_config())
                .policy(PolicyKind::Trident)
                .tenant(TenantSpec::new(WorkloadSpec::by_name("Redis").unwrap()))
                .tenant(TenantSpec::new(WorkloadSpec::by_name("GUPS").unwrap()))
                .build()
                .unwrap();
            sys.settle();
            let m = sys.measure();
            (
                m.walk_cycles,
                m.mapped_bytes,
                m.tenants
                    .iter()
                    .map(|t| (t.walk_cycles, t.mapped_bytes))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_tenant_zeros_plan() {
        // Tenant RNG streams are independent: tenant 0 draws the same
        // allocation plan whether or not a neighbor is present. The
        // *outcomes* (placement, promotions) legitimately differ — the
        // pool is shared — but the sampler layout must match.
        let solo = launch(
            quick_config(),
            PolicyKind::Base,
            WorkloadSpec::by_name("Redis").unwrap(),
        );
        let duo = System::builder(quick_config())
            .policy(PolicyKind::Base)
            .tenant(TenantSpec::new(WorkloadSpec::by_name("Redis").unwrap()))
            .tenant(TenantSpec::new(WorkloadSpec::by_name("GUPS").unwrap()))
            .build()
            .unwrap();
        assert_eq!(
            solo.space().total_vma_pages(),
            duo.space().total_vma_pages()
        );
    }
}
