//! A native simulated machine running one workload under one policy.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use trident_core::{
    Event, FaultInjector, InvariantViolation, MmContext, ObsRecorder, PagePolicy, PolicyError,
    Recorder, RingTracer, SpaceSet, StatsSnapshot,
};
use trident_phys::{Fragmenter, PhysMemError, PhysicalMemory};
use trident_prof::{Profile, Profiler};
use trident_tlb::{TlbHierarchy, TlbOutcome, TranslationEngine, TranslationStats, WalkCostModel};
use trident_types::{AsId, PageSize, Vpn};
use trident_vm::{mappable_bytes, AddressSpace};
use trident_workloads::{AccessSampler, AllocPlan, Layout, WorkloadSpec};

use crate::{DaemonGovernor, PolicyKind, SimConfig};

/// What one measurement phase observed.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Sampled accesses.
    pub samples: usize,
    /// TLB-miss page walks among them.
    pub walks: u64,
    /// Cycles spent translating (walks + L2-hit latency).
    pub walk_cycles: u64,
    /// Full TLB statistics.
    pub tlb: TranslationStats,
    /// Snapshot of the MM statistics at measurement end (cumulative
    /// since boot).
    pub snapshot: StatsSnapshot,
    /// Events recorded since tracing started (empty unless the config
    /// enables a trace capacity); drained from the ring at measurement
    /// end.
    pub trace: Vec<Event>,
    /// Events the ring tracer evicted before measurement end (0 when the
    /// trace is complete, or when tracing was off).
    pub trace_dropped: u64,
    /// The live profile (spans + time-series + counters), present when
    /// the config enables profiling. Boxed: a profile is several KB and
    /// most measurements carry none.
    pub profile: Option<Box<Profile>>,
    /// Bytes mapped by each page size at measurement end.
    pub mapped_bytes: [u64; 3],
    /// Page-walk counts per giant-aligned virtual chunk (Figure 4).
    pub miss_by_chunk: Vec<(u64, u64)>,
}

struct LoadedWorkload {
    spec: WorkloadSpec,
    sampler: AccessSampler,
}

/// A native machine: physical memory, one workload process, one policy,
/// and the (scaled) Skylake TLB.
///
/// # Examples
///
/// ```no_run
/// use trident_sim::{PolicyKind, SimConfig, System};
/// use trident_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::by_name("GUPS").unwrap();
/// let mut system = System::launch(SimConfig::at_scale(64), PolicyKind::Trident, spec)?;
/// system.settle();
/// let m = system.measure();
/// println!("walk cycles: {}", m.walk_cycles);
/// # Ok::<(), trident_phys::PhysMemError>(())
/// ```
pub struct System {
    /// The configuration this system was launched with.
    pub config: SimConfig,
    /// Memory-management state.
    pub ctx: MmContext,
    /// Process address spaces (one workload process).
    pub spaces: SpaceSet,
    policy: Box<dyn PagePolicy>,
    engine: TranslationEngine,
    rng: SmallRng,
    governor: DaemonGovernor,
    fragmenter: Option<Fragmenter>,
    workload: LoadedWorkload,
    asid: AsId,
    touched: u64,
    /// (2MB-mappable bytes, 1GB-mappable bytes) sampled after each
    /// allocation step — Figure 3's timeline.
    pub mappable_timeline: Vec<(u64, u64)>,
    /// Invariant violations collected by the per-tick audit (empty unless
    /// `config.audit` is set — and expected to stay empty even under
    /// fault injection; anything here is a bug).
    violations: Vec<InvariantViolation>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("policy", &self.policy.name())
            .field("workload", &self.workload.spec.name)
            .finish()
    }
}

impl System {
    /// Boots a machine, optionally fragments it, builds the policy
    /// (hugetlbfs variants reserve their pool here — failing on
    /// fragmented memory exactly as the paper reports), loads the
    /// workload with faults interleaved with allocation, and returns the
    /// ready system.
    ///
    /// # Errors
    ///
    /// Returns the allocation error when a hugetlbfs reservation cannot
    /// be satisfied.
    pub fn launch(
        config: SimConfig,
        kind: PolicyKind,
        spec: WorkloadSpec,
    ) -> Result<System, PhysMemError> {
        let geo = config.geo;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, config.host_pages()));
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let fragmenter = config.fragment.map(|profile| {
            let mut f = Fragmenter::new(profile);
            f.run(&mut ctx.mem, &mut rng);
            f
        });
        let workload_pages = geo
            .pages_for_bytes(config.scale.apply(spec.footprint_bytes))
            .max(1);
        let policy = kind.build(&mut ctx, workload_pages)?;
        Self::finish_launch(config, ctx, rng, fragmenter, policy, spec, None)
    }

    /// Like [`System::launch`] but with a caller-supplied recorder
    /// installed *before* the load phase, so load-time events are
    /// captured too — the hook `--trace-out` uses to stream a run's
    /// full event stream to disk instead of buffering it in a ring.
    ///
    /// The supplied recorder overrides whatever `config.trace_capacity`
    /// and `config.profile` would have installed.
    ///
    /// # Errors
    ///
    /// Returns the allocation error when a hugetlbfs reservation cannot
    /// be satisfied.
    pub fn launch_recording(
        config: SimConfig,
        kind: PolicyKind,
        spec: WorkloadSpec,
        recorder: ObsRecorder,
    ) -> Result<System, PhysMemError> {
        let geo = config.geo;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, config.host_pages()));
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let fragmenter = config.fragment.map(|profile| {
            let mut f = Fragmenter::new(profile);
            f.run(&mut ctx.mem, &mut rng);
            f
        });
        let workload_pages = geo
            .pages_for_bytes(config.scale.apply(spec.footprint_bytes))
            .max(1);
        let policy = kind.build(&mut ctx, workload_pages)?;
        Self::finish_launch(config, ctx, rng, fragmenter, policy, spec, Some(recorder))
    }

    /// Like [`System::launch`] but with a caller-constructed policy —
    /// for configurations outside the standard [`PolicyKind`] set (e.g.
    /// Trident with bloat recovery enabled).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for symmetry.
    pub fn launch_with(
        config: SimConfig,
        policy: Box<dyn PagePolicy>,
        spec: WorkloadSpec,
    ) -> Result<System, PhysMemError> {
        let geo = config.geo;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, config.host_pages()));
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let fragmenter = config.fragment.map(|profile| {
            let mut f = Fragmenter::new(profile);
            f.run(&mut ctx.mem, &mut rng);
            f
        });
        Self::finish_launch(config, ctx, rng, fragmenter, policy, spec, None)
    }

    fn finish_launch(
        config: SimConfig,
        mut ctx: MmContext,
        rng: SmallRng,
        fragmenter: Option<Fragmenter>,
        policy: Box<dyn PagePolicy>,
        spec: WorkloadSpec,
        recorder_override: Option<ObsRecorder>,
    ) -> Result<System, PhysMemError> {
        let geo = config.geo;
        ctx.recorder = match recorder_override {
            Some(recorder) => recorder,
            None => {
                let inner = match config.trace_capacity {
                    Some(capacity) => ObsRecorder::ring(capacity),
                    None => ObsRecorder::default(),
                };
                if config.profile {
                    ObsRecorder::custom(Box::new(Profiler::new(1, inner)))
                } else {
                    inner
                }
            }
        };
        // The injector must be live before load so load-phase faults are
        // subject to the plan too.
        if let Some(plan) = config.fault {
            ctx.fault = FaultInjector::new(plan);
        }
        let engine =
            TranslationEngine::new(TlbHierarchy::with_geometry(geo), WalkCostModel::default());
        let asid = AsId::new(1);
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(asid, geo));
        let mut system = System {
            governor: DaemonGovernor::new(config.daemon_cap, config.tick_interval_app_ns),
            config,
            ctx,
            spaces,
            policy,
            engine,
            rng,
            fragmenter,
            workload: LoadedWorkload {
                spec,
                // Placeholder sampler; replaced after load.
                sampler: AccessSampler::new(
                    spec,
                    Layout::from_ranges(vec![trident_workloads::ChunkRange {
                        start: Vpn::new(0),
                        pages: 1,
                    }]),
                ),
            },
            asid,
            touched: 0,
            mappable_timeline: Vec::new(),
            violations: Vec::new(),
        };
        system.load(spec);
        Ok(system)
    }

    /// The policy's display name.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// The loaded workload.
    #[must_use]
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload.spec
    }

    /// Executes the allocation plan with first-touch faults interleaved —
    /// how real applications populate memory — running daemon ticks
    /// along the way and recording the Figure 3 mappability timeline.
    fn load(&mut self, spec: WorkloadSpec) {
        let geo = self.config.geo;
        let plan = spec.plan(geo, self.config.scale, &mut self.rng);
        let mut ranges = Vec::with_capacity(plan.steps.len());
        // Arena allocators reserve virtual memory ahead of first touch:
        // touching trails allocation by `alloc_touch_lag` steps, which is
        // what lets the fault handler see 1GB-mappable ranges even for
        // incremental allocators (Table 4's fault-time attempts).
        let lag = spec.alloc_touch_lag as usize;
        let mut pending = std::collections::VecDeque::new();
        for step in &plan.steps {
            let range = {
                let space = self.spaces.get_mut(self.asid).expect("workload space");
                AllocPlan::execute_step(space, step)
            };
            ranges.push(range);
            pending.push_back(range);
            if pending.len() > lag {
                let due: trident_workloads::ChunkRange = pending.pop_front().expect("just checked");
                self.touch_range(&spec, due);
            }
            let space = self.spaces.get(self.asid).expect("workload space");
            self.mappable_timeline.push((
                mappable_bytes(space, PageSize::Huge),
                mappable_bytes(space, PageSize::Giant),
            ));
        }
        while let Some(due) = pending.pop_front() {
            self.touch_range(&spec, due);
        }
        let layout = Layout::from_ranges(ranges);
        self.workload = LoadedWorkload {
            spec,
            sampler: AccessSampler::new(spec, layout),
        };
    }

    /// Touches the portion of a chunk the application actually uses
    /// (`touch_fraction`); the rest stays unbacked — the raw material of
    /// §7's promotion bloat. Large ranges are prefix-touched; small
    /// allocation chunks are touched all-or-none (a slab either holds
    /// objects or sits empty), which is what lets 1GB promotion back
    /// memory THP never would.
    fn touch_range(&mut self, spec: &WorkloadSpec, range: trident_workloads::ChunkRange) {
        use rand::Rng;
        let geo = self.config.geo;
        let touched = if range.pages >= geo.base_pages(PageSize::Giant) {
            ((range.pages as f64) * spec.touch_fraction).ceil() as u64
        } else if spec.touch_fraction >= 1.0 || self.rng.gen_bool(spec.touch_fraction) {
            range.pages
        } else {
            0
        };
        for i in 0..touched.min(range.pages) {
            self.touch_populate(range.start + i);
        }
    }

    /// First-touch of one page: fault it in if unmapped, reclaiming page
    /// cache under memory pressure (kswapd's job), and run a governed
    /// daemon tick every `tick_interval_pages` touches.
    fn touch_populate(&mut self, vpn: Vpn) {
        // Keep a small free reserve like kswapd does, so allocations
        // don't hit hard OOM while the page cache holds reclaimable
        // memory.
        if self.ctx.mem.free_fraction() < 0.02 {
            if let Some(f) = &mut self.fragmenter {
                f.reclaim(&mut self.ctx.mem, 1 << 15);
            }
        }
        let space = self.spaces.get_mut(self.asid).expect("workload space");
        if space.page_table().translate(vpn).is_none() {
            match self.policy.on_fault(&mut self.ctx, space, vpn) {
                Ok(_) => {}
                Err(PolicyError::OutOfContiguousMemory(_)) => {
                    let f = self
                        .fragmenter
                        .as_mut()
                        .expect("OOM can only happen with a resident page cache");
                    f.reclaim(&mut self.ctx.mem, 1 << 16);
                    let space = self.spaces.get_mut(self.asid).expect("workload space");
                    self.policy
                        .on_fault(&mut self.ctx, space, vpn)
                        .expect("fault succeeds after reclaim");
                }
                Err(e) => panic!("populate fault failed: {e}"),
            }
        }
        self.touched += 1;
        if self.touched.is_multiple_of(self.config.tick_interval_pages) {
            self.tick();
        }
    }

    /// One governed background-daemon tick. When a recorder is active,
    /// a fragmentation/contiguity gauge sample follows the tick so the
    /// time-series can chart FMFI and free large-block capacity.
    pub fn tick(&mut self) -> trident_core::TickOutcome {
        let out = self
            .governor
            .tick(self.policy.as_mut(), &mut self.ctx, &mut self.spaces);
        if self.ctx.recorder.enabled() {
            self.ctx.recorder.record(self.gauge_sample());
        }
        if self.config.audit {
            if let Err(v) = trident_core::check_mm_consistent(&self.ctx, &self.spaces) {
                self.violations.extend(v);
            }
        } else {
            #[cfg(debug_assertions)]
            trident_core::assert_mm_consistent(&self.ctx, &self.spaces);
        }
        out
    }

    /// Invariant violations collected by the per-tick audit; always empty
    /// unless the config enables `audit`. A graceful system keeps this
    /// empty even under fault injection.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// The current fragmentation/contiguity gauge: 1GB FMFI in
    /// thousandths plus free capacity at 2MB and 1GB granularity
    /// (higher-order free blocks count at their full capacity).
    fn gauge_sample(&self) -> Event {
        let geo = self.config.geo;
        let buddy = self.ctx.mem.buddy();
        let capacity_at = |order: u8| -> u64 {
            (order..=buddy.max_order())
                .map(|o| (buddy.free_blocks(o) as u64) << (o - order))
                .sum()
        };
        Event::Gauge {
            fmfi_milli: (self.ctx.mem.fmfi(PageSize::Giant) * 1000.0).round() as u64,
            free_huge: capacity_at(geo.order(PageSize::Huge)),
            free_giant: capacity_at(geo.order(PageSize::Giant)),
        }
    }

    /// Runs daemon ticks until promotions and compactions go quiet (or
    /// the configured budget runs out).
    pub fn settle(&mut self) {
        let mut quiet = 0;
        for _ in 0..self.config.settle_ticks {
            let out = self.tick();
            if out.promotions == 0 && out.compaction_runs == 0 && self.governor.debt_ns() == 0 {
                quiet += 1;
                if quiet >= 3 {
                    break;
                }
            } else {
                quiet = 0;
            }
        }
    }

    /// Samples accesses through the page tables and the TLB, with daemon
    /// ticks interleaved; returns the measurement. A warm-up of 10% of
    /// the samples primes the TLB before counting starts.
    pub fn measure(&mut self) -> Measurement {
        let warmup = self.config.measure_samples / 10;
        for _ in 0..warmup {
            self.measured_access(None);
        }
        self.engine.reset_stats();
        // Dense per-giant-chunk miss counters (chunk indexes are small and
        // contiguous); folded into sorted pairs once at the end.
        let mut miss_by_chunk: Vec<u64> = Vec::new();
        for i in 0..self.config.measure_samples {
            self.measured_access(Some(&mut miss_by_chunk));
            if (i + 1) % self.config.measure_tick_every == 0 {
                let out = self.tick();
                if out.promotions > 0 {
                    // Remaps invalidate cached translations.
                    self.engine.flush();
                }
            }
        }
        let tlb = *self.engine.stats();
        let trace_dropped = self.ctx.recorder.tracer().map_or(0, RingTracer::dropped);
        let trace = self
            .ctx
            .recorder
            .tracer_mut()
            .map(RingTracer::drain)
            .unwrap_or_default();
        let profile = self
            .ctx
            .recorder
            .custom_mut::<Profiler>()
            .map(|p| Box::new(p.finish_profile()));
        let space = self.spaces.get(self.asid).expect("workload space");
        Measurement {
            samples: self.config.measure_samples,
            walks: tlb.total_walks(),
            walk_cycles: tlb.total_walk_cycles(),
            tlb,
            snapshot: self.ctx.snapshot(),
            trace,
            trace_dropped,
            profile,
            mapped_bytes: [
                space.page_table().mapped_bytes(PageSize::Base),
                space.page_table().mapped_bytes(PageSize::Huge),
                space.page_table().mapped_bytes(PageSize::Giant),
            ],
            miss_by_chunk: miss_by_chunk
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(chunk, &n)| (chunk as u64, n))
                .collect(),
        }
    }

    fn measured_access(&mut self, miss_by_chunk: Option<&mut Vec<u64>>) {
        let access = self.workload.sampler.sample(&mut self.rng);
        let space = self.spaces.get_mut(self.asid).expect("workload space");
        let translation = match space.page_table_mut().access(access.vpn, access.write) {
            Some(t) => t,
            None => {
                // A demotion may have unmapped a cold page; fault it back.
                self.policy
                    .on_fault(&mut self.ctx, space, access.vpn)
                    .expect("measurement fault");
                let space = self.spaces.get_mut(self.asid).expect("workload space");
                space
                    .page_table_mut()
                    .access(access.vpn, access.write)
                    .expect("fault installed a mapping")
            }
        };
        let result =
            self.engine
                .translate_rec(access.vpn, translation.size, &mut self.ctx.recorder);
        if result.outcome == TlbOutcome::Miss {
            if let Some(counts) = miss_by_chunk {
                let chunk = self.config.geo.giant_region_of(access.vpn.raw()) as usize;
                if chunk >= counts.len() {
                    counts.resize(chunk + 1, 0);
                }
                counts[chunk] += 1;
            }
        }
    }

    /// Bytes currently mapped at `size` in the workload's address space.
    #[must_use]
    pub fn mapped_bytes(&self, size: PageSize) -> u64 {
        self.spaces
            .get(self.asid)
            .expect("workload space")
            .page_table()
            .mapped_bytes(size)
    }

    /// Base pages the workload has actually touched (first-touch count
    /// from the load phase). `resident - touched` is the §7 memory bloat,
    /// and `touched` is the floor that HawkEye-style zero-page
    /// deduplication can recover to.
    #[must_use]
    pub fn touched_pages(&self) -> u64 {
        self.touched
    }

    /// Grabs kernel memory until the free fraction drops to `target` —
    /// the memory pressure that trips bloat-recovery watermarks.
    pub fn apply_memory_pressure(&mut self, target: f64) {
        while self.ctx.mem.free_fraction() > target {
            if self
                .ctx
                .mem
                .allocate_order(0, trident_phys::FrameUse::Kernel, None)
                .is_err()
            {
                break;
            }
        }
    }

    /// The workload's address space.
    #[must_use]
    pub fn space(&self) -> &AddressSpace {
        self.spaces.get(self.asid).expect("workload space")
    }

    /// Mutable access to the RNG (experiments draw auxiliary randomness).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimConfig {
        let mut c = SimConfig::at_scale(256);
        c.measure_samples = 5_000;
        c.measure_tick_every = 2_000;
        c.settle_ticks = 16;
        c
    }

    #[test]
    fn bulk_workload_under_trident_gets_giant_pages_at_fault() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let sys = System::launch(quick_config(), PolicyKind::Trident, spec).unwrap();
        // 32GB/256 = 128MB heap: at least some giant mappings (scaled
        // giant pages are 1GB... at scale 256 the heap is 32768 pages,
        // which is smaller than a giant page) — so expect huge pages
        // instead. Verify *some* large mapping exists.
        let large = sys.mapped_bytes(PageSize::Huge) + sys.mapped_bytes(PageSize::Giant);
        assert!(large > 0);
    }

    #[test]
    fn thp_never_produces_giant_mappings() {
        let spec = WorkloadSpec::by_name("GUPS").unwrap();
        let mut sys = System::launch(quick_config(), PolicyKind::Thp, spec).unwrap();
        sys.settle();
        assert_eq!(sys.mapped_bytes(PageSize::Giant), 0);
        assert!(sys.mapped_bytes(PageSize::Huge) > 0);
    }

    #[test]
    fn measure_accounts_every_sample() {
        let spec = WorkloadSpec::by_name("Btree").unwrap();
        let mut sys = System::launch(quick_config(), PolicyKind::Thp, spec).unwrap();
        sys.settle();
        let m = sys.measure();
        assert_eq!(m.samples, 5_000);
        assert_eq!(m.tlb.total_accesses(), 5_000);
        assert!(m.walks <= 5_000);
        let chunk_misses: u64 = m.miss_by_chunk.iter().map(|(_, n)| n).sum();
        assert_eq!(chunk_misses, m.walks);
    }

    #[test]
    fn fragmented_launch_reclaims_instead_of_oom() {
        let spec = WorkloadSpec::by_name("Canneal").unwrap();
        let config = quick_config().fragmented();
        let sys = System::launch(config, PolicyKind::Trident, spec).unwrap();
        // The workload fit despite the page cache having filled memory.
        assert!(
            sys.mapped_bytes(PageSize::Base)
                + sys.mapped_bytes(PageSize::Huge)
                + sys.mapped_bytes(PageSize::Giant)
                > 0
        );
        sys.ctx.mem.assert_consistent();
    }

    #[test]
    fn hugetlbfs_reservation_fails_on_fragmented_memory() {
        let spec = WorkloadSpec::by_name("Canneal").unwrap();
        let config = quick_config().fragmented();
        let result = System::launch(config, PolicyKind::HugetlbfsGiant, spec);
        assert!(result.is_err(), "1GB reservation must fail when fragmented");
    }

    #[test]
    fn mappable_timeline_grows_monotonically_for_bulk() {
        let spec = WorkloadSpec::by_name("XSBench").unwrap();
        let sys = System::launch(quick_config(), PolicyKind::Thp, spec).unwrap();
        assert!(!sys.mappable_timeline.is_empty());
        let (huge, giant) = *sys.mappable_timeline.last().unwrap();
        assert!(huge >= giant);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = WorkloadSpec::by_name("Redis").unwrap();
        let run = || {
            let mut sys = System::launch(quick_config(), PolicyKind::Trident, spec).unwrap();
            sys.settle();
            let m = sys.measure();
            (m.walk_cycles, m.mapped_bytes)
        };
        assert_eq!(run(), run());
    }
}
