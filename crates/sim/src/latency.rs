//! Tail-latency model for the interactive stores (Table 5).
//!
//! Table 5 reports p99 request latency for Redis and Memcached under 4KB,
//! THP and Trident, fragmented and not. The paper's point is negative:
//! Trident does *not* hurt tails, because compaction, promotion and 1GB
//! zeroing all run in the background. We model a request as a batch of
//! memory accesses on top of a fixed service time; translation stalls from
//! the measured walk-cycle distribution are the only per-request variable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trident_core::CostModel;

use crate::Measurement;

/// Per-application request parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed service time per request (network, protocol, CPU), ns.
    pub base_service_ns: f64,
    /// Memory accesses per request.
    pub accesses_per_request: f64,
    /// Requests to simulate.
    pub requests: usize,
}

impl LatencyModel {
    /// Redis with the paper's pipelined bulk requests (p99 ≈ 47–53ms).
    #[must_use]
    pub fn redis() -> LatencyModel {
        LatencyModel {
            base_service_ns: 42.0e6,
            accesses_per_request: 3.0e4,
            requests: 4_000,
        }
    }

    /// Memcached (p99 ≈ 1.5ms).
    #[must_use]
    pub fn memcached() -> LatencyModel {
        LatencyModel {
            base_service_ns: 1.30e6,
            accesses_per_request: 8.0e2,
            requests: 4_000,
        }
    }
}

/// Computes the modeled p99 request latency in milliseconds from a
/// measurement: each request draws its translation overhead from the
/// measured per-access walk-cycle average with multiplicative jitter.
#[must_use]
pub fn request_p99_ms(model: &LatencyModel, m: &Measurement, seed: u64) -> f64 {
    let cost = CostModel::default();
    let walk_cycles_per_access = m.walk_cycles as f64 / m.samples as f64;
    let walk_ns_per_access = walk_cycles_per_access / cost.cycles_per_ns;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut latencies: Vec<f64> = (0..model.requests)
        .map(|_| {
            // Requests differ in locality: jitter both the base service
            // time and the translation component.
            let base_jitter = 1.0 + rng.gen_range(-0.05..0.12);
            let walk_jitter = rng.gen_range(0.6..1.8);
            model.base_service_ns * base_jitter
                + model.accesses_per_request * walk_ns_per_access * walk_jitter
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let index = ((model.requests as f64) * 0.99) as usize;
    latencies[index.min(model.requests - 1)] / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_core::StatsSnapshot;
    use trident_tlb::TranslationStats;

    fn measurement(walk_cycles: u64) -> Measurement {
        Measurement {
            samples: 10_000,
            walks: walk_cycles / 200,
            walk_cycles,
            tlb: TranslationStats::default(),
            snapshot: StatsSnapshot::default(),
            trace: Vec::new(),
            trace_dropped: 0,
            profile: None,
            mapped_bytes: [0; trident_types::MAX_RUNGS],
            miss_by_chunk: Vec::new(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn redis_p99_lands_in_the_paper_ballpark() {
        // ~50 walk cycles per access, similar to a THP run.
        let p99 = request_p99_ms(&LatencyModel::redis(), &measurement(500_000), 1);
        assert!((40.0..70.0).contains(&p99), "{p99}");
    }

    #[test]
    fn memcached_p99_is_millisecond_scale() {
        let p99 = request_p99_ms(&LatencyModel::memcached(), &measurement(500_000), 1);
        assert!((1.0..2.5).contains(&p99), "{p99}");
    }

    #[test]
    fn fewer_walks_lower_the_tail() {
        let worse = request_p99_ms(&LatencyModel::redis(), &measurement(2_000_000), 1);
        let better = request_p99_ms(&LatencyModel::redis(), &measurement(100_000), 1);
        assert!(better < worse);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = request_p99_ms(&LatencyModel::redis(), &measurement(500_000), 9);
        let b = request_p99_ms(&LatencyModel::redis(), &measurement(500_000), 9);
        assert_eq!(a, b);
    }
}
