//! Daemon CPU-time governor.
//!
//! Figure 13's setup caps the guest's `khugepaged` at 10% of a vCPU —
//! Netflix-style production hygiene. The governor charges each tick's
//! daemon CPU time against a budget that refills with simulated
//! application time; while in debt, ticks are skipped. Under the cap a
//! copy-based 1GB promotion (≈600ms) starves the daemon for many
//! intervals, while Trident_pv's ≈500µs promotions run freely — the
//! mechanism behind Figure 13.

use trident_core::{MmContext, PagePolicy, SpaceSet, SpanKind, TickOutcome};

/// Rations daemon CPU time to a fraction of one CPU.
#[derive(Debug, Clone, Copy)]
pub struct DaemonGovernor {
    cap: Option<f64>,
    interval_app_ns: u64,
    debt_ns: u64,
}

impl DaemonGovernor {
    /// Creates a governor. `cap` is the allowed fraction of one CPU
    /// (`None` = unlimited); `interval_app_ns` is the application time one
    /// tick interval represents.
    #[must_use]
    pub fn new(cap: Option<f64>, interval_app_ns: u64) -> DaemonGovernor {
        DaemonGovernor {
            cap,
            interval_app_ns,
            debt_ns: 0,
        }
    }

    /// Outstanding daemon CPU debt in nanoseconds.
    #[must_use]
    pub fn debt_ns(&self) -> u64 {
        self.debt_ns
    }

    /// Runs one governed tick: refills the budget, skips the tick if the
    /// daemon is still paying off past work, otherwise runs it and
    /// records its cost.
    pub fn tick(
        &mut self,
        policy: &mut dyn PagePolicy,
        ctx: &mut MmContext,
        spaces: &mut SpaceSet,
    ) -> TickOutcome {
        if let Some(cap) = self.cap {
            let budget = (self.interval_app_ns as f64 * cap) as u64;
            self.debt_ns = self.debt_ns.saturating_sub(budget);
            if self.debt_ns > 0 {
                return TickOutcome::default();
            }
        }
        // Debt-skipped ticks (the early return above) get no span: the
        // daemon did no work.
        ctx.span_begin(SpanKind::DaemonTick);
        let out = policy.on_tick(ctx, spaces);
        ctx.span_end(SpanKind::DaemonTick, out.daemon_ns);
        if self.cap.is_some() {
            self.debt_ns += out.daemon_ns;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_core::{FaultOutcome, PagePolicy, PolicyError};
    use trident_phys::PhysicalMemory;
    use trident_types::{PageGeometry, PageSize, Vpn};
    use trident_vm::AddressSpace;

    /// A policy whose ticks cost a fixed amount and count invocations.
    struct FixedCost {
        cost: u64,
        ticks: u64,
    }

    impl PagePolicy for FixedCost {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn on_fault(
            &mut self,
            _: &mut MmContext,
            _: &mut AddressSpace,
            vpn: Vpn,
        ) -> Result<FaultOutcome, PolicyError> {
            Err(PolicyError::BadAddress(vpn))
        }
        fn on_tick(&mut self, _: &mut MmContext, _: &mut SpaceSet) -> TickOutcome {
            self.ticks += 1;
            TickOutcome {
                daemon_ns: self.cost,
                promotions: 0,
                compaction_runs: 0,
            }
        }
    }

    fn ctx() -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        (
            MmContext::new(PhysicalMemory::new(geo, geo.base_pages(PageSize::new(2)))),
            SpaceSet::new(),
        )
    }

    #[test]
    fn uncapped_governor_always_ticks() {
        let (mut c, mut s) = ctx();
        let mut p = FixedCost {
            cost: 1_000_000,
            ticks: 0,
        };
        let mut g = DaemonGovernor::new(None, 100);
        for _ in 0..10 {
            g.tick(&mut p, &mut c, &mut s);
        }
        assert_eq!(p.ticks, 10);
        assert_eq!(g.debt_ns(), 0);
    }

    #[test]
    fn expensive_ticks_starve_under_the_cap() {
        let (mut c, mut s) = ctx();
        // Each tick costs 10ms; budget is 10% of 1ms = 100µs per interval.
        let mut p = FixedCost {
            cost: 10_000_000,
            ticks: 0,
        };
        let mut g = DaemonGovernor::new(Some(0.1), 1_000_000);
        for _ in 0..100 {
            g.tick(&mut p, &mut c, &mut s);
        }
        // One tick incurs 10ms debt = 100 intervals of budget.
        assert_eq!(p.ticks, 1);
    }

    #[test]
    fn cheap_ticks_run_freely_under_the_same_cap() {
        let (mut c, mut s) = ctx();
        // Each tick costs 50µs; budget 100µs per interval.
        let mut p = FixedCost {
            cost: 50_000,
            ticks: 0,
        };
        let mut g = DaemonGovernor::new(Some(0.1), 1_000_000);
        for _ in 0..100 {
            g.tick(&mut p, &mut c, &mut s);
        }
        assert_eq!(p.ticks, 100);
    }
}
