//! Human-readable run reports (a `perf stat`-style summary).

use core::fmt;

use trident_types::PageGeometry;

use crate::{Measurement, System};

/// A formatted summary of one system run: page-size mix, TLB behaviour,
/// and memory-management activity.
///
/// # Examples
///
/// ```no_run
/// use trident_sim::{PolicyKind, RunReport, SimConfig, System};
/// use trident_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::by_name("GUPS").unwrap();
/// let mut system = System::builder(SimConfig::at_scale(64))
///     .policy(PolicyKind::Trident)
///     .workload(spec)
///     .build()?;
/// system.settle();
/// let measurement = system.measure();
/// println!("{}", RunReport::new(&system, &measurement));
/// # Ok::<(), trident_phys::PhysMemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RunReport {
    workload: String,
    policy: String,
    scale: u64,
    geo: PageGeometry,
    measurement: Measurement,
    fmfi_giant: f64,
    free_fraction: f64,
}

impl RunReport {
    /// Builds a report from a system and its measurement.
    #[must_use]
    pub fn new(system: &System, measurement: &Measurement) -> RunReport {
        let geo = system.geometry();
        RunReport {
            workload: system.workload().name.to_owned(),
            policy: system.policy_name(),
            scale: system.config.scale.divisor(),
            geo,
            measurement: measurement.clone(),
            fmfi_giant: system.ctx.mem.fmfi(geo.largest()),
            free_fraction: system.ctx.mem.free_fraction(),
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.measurement;
        writeln!(
            f,
            "── {} under {} (scale 1/{}) ──",
            self.workload, self.policy, self.scale
        )?;
        writeln!(f, "memory mix ({} ladder):", self.geo.name())?;
        for size in self.geo.rungs() {
            writeln!(
                f,
                "  {:>10}: {:>8} MB mapped",
                self.geo.label(size),
                m.mapped_bytes[size.rung()] >> 20
            )?;
        }
        writeln!(
            f,
            "tlb: {} accesses, {} walks ({:.2}% miss), {} walk cycles",
            m.tlb.total_accesses(),
            m.walks,
            100.0 * m.tlb.miss_ratio(),
            m.walk_cycles
        )?;
        let top = self.geo.largest();
        let top_label = self.geo.label(top);
        writeln!(
            f,
            "faults: {} total ({} at {top_label}, mean {top_label} fault {})",
            m.snapshot.total_faults(),
            m.snapshot.faults[top.rung()],
            m.snapshot
                .mean_fault_ns(top)
                .map(|ns| format!("{:.2} ms", ns as f64 / 1e6))
                .unwrap_or_else(|| "n/a".into()),
        )?;
        let promoted: Vec<String> = self
            .geo
            .rungs()
            .filter(|s| !s.is_base())
            .map(|s| {
                format!(
                    "{} to {}",
                    m.snapshot.promotions[s.rung()],
                    self.geo.label(s)
                )
            })
            .collect();
        writeln!(
            f,
            "promotion: {}; {} MB copied; {} MB exchanged (pv)",
            promoted.join(", "),
            m.snapshot.promotion_bytes_copied >> 20,
            m.snapshot.pv_bytes_exchanged >> 20,
        )?;
        writeln!(
            f,
            "compaction: {}/{} successful runs, {} MB migrated",
            m.snapshot.compaction_successes,
            m.snapshot.compaction_attempts,
            m.snapshot.compaction_bytes_copied >> 20,
        )?;
        writeln!(
            f,
            "bloat: {} pages added, {} recovered",
            m.snapshot.bloat_pages, m.snapshot.bloat_recovered_pages
        )?;
        // Per-tenant attribution is only worth a section when there is
        // more than one tenant; single-tenant reports keep their
        // historical shape.
        if m.tenants.len() > 1 {
            writeln!(f, "tenants:")?;
            for t in &m.tenants {
                writeln!(
                    f,
                    "  {} {:<10} {:>7} samples, {:>6} walks, {:>9} walk cycles, \
                     FMFI(top) {:.3}, {} faults",
                    t.tenant,
                    t.workload,
                    t.samples,
                    t.walks,
                    t.walk_cycles,
                    t.fmfi_giant,
                    t.snapshot.total_faults(),
                )?;
            }
        }
        write!(
            f,
            "machine: {:.1}% free, FMFI(top) = {:.3}, daemon CPU {:.1} ms",
            self.free_fraction * 100.0,
            self.fmfi_giant,
            m.snapshot.daemon_ns as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PolicyKind, SimConfig};
    use trident_workloads::WorkloadSpec;

    #[test]
    fn report_renders_every_section() {
        let mut config = SimConfig::at_scale(256);
        config.measure_samples = 2_000;
        config.measure_tick_every = 1_000;
        let spec = WorkloadSpec::by_name("Btree").unwrap();
        let mut system = System::builder(config)
            .policy(PolicyKind::Trident)
            .workload(spec)
            .build()
            .unwrap();
        system.settle();
        let m = system.measure();
        let text = RunReport::new(&system, &m).to_string();
        for needle in [
            "Btree",
            "Trident",
            "memory mix",
            "tlb:",
            "promotion:",
            "compaction:",
            "FMFI",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
