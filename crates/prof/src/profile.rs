//! The combined profile: spans + time-series + aggregate snapshot.

use trident_obs::{Event, StatsSnapshot};

use crate::{SpanStats, TimeSeries};

/// Everything the profiling layer derives from one event stream.
///
/// A profile is a pure fold over events: feeding the same stream — live
/// through a [`Profiler`](crate::Profiler), or replayed from a JSONL
/// trace through a [`TraceReader`](crate::TraceReader) — produces equal
/// profiles. That is the subsystem's central invariant and what
/// `trace_analyze --check` asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Per-kind span duration statistics.
    pub spans: SpanStats,
    /// Windowed time-series.
    pub series: TimeSeries,
    /// Aggregate counters replayed from the same events.
    pub snapshot: StatsSnapshot,
    /// Total events folded, of any kind.
    pub events_seen: u64,
    /// Events known lost before or between the folded ones (sum of
    /// [`TraceGap`](Event::TraceGap) annotations).
    pub events_lost: u64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile::new(1)
    }
}

impl Profile {
    /// An empty profile whose series uses `window_ticks`-wide windows.
    #[must_use]
    pub fn new(window_ticks: u64) -> Profile {
        Profile {
            spans: SpanStats::new(),
            series: TimeSeries::new(window_ticks),
            snapshot: StatsSnapshot::default(),
            events_seen: 0,
            events_lost: 0,
        }
    }

    /// Folds one event into all three views.
    pub fn fold(&mut self, event: &Event) {
        self.events_seen += 1;
        if let Event::TraceGap { dropped } = *event {
            self.events_lost += dropped;
        }
        self.spans.observe(event);
        self.series.fold(event);
        self.snapshot.apply(event);
    }

    /// Flushes the trailing time-series window. Call once at end of
    /// stream; [`from_events`](Profile::from_events) does it for you.
    pub fn finish(&mut self) {
        self.series.finish();
    }

    /// Builds a finished profile by replaying a complete event stream.
    #[must_use]
    pub fn from_events<'a, I: IntoIterator<Item = &'a Event>>(
        window_ticks: u64,
        events: I,
    ) -> Profile {
        let mut p = Profile::new(window_ticks);
        for ev in events {
            p.fold(ev);
        }
        p.finish();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_obs::{AllocSite, SpanKind};
    use trident_types::PageSize;

    #[test]
    fn replay_equals_live() {
        let events = [
            Event::SpanBegin {
                kind: SpanKind::Fault,
            },
            Event::Fault {
                size: PageSize::BASE,
                site: AllocSite::PageFault,
                ns: 40,
            },
            Event::SpanEnd {
                kind: SpanKind::Fault,
                ns: 40,
            },
            Event::DaemonTick { ns: 9 },
        ];
        let mut live = Profile::new(1);
        for ev in &events {
            live.fold(ev);
        }
        live.finish();
        let replayed = Profile::from_events(1, events.iter());
        assert_eq!(live, replayed);
        assert_eq!(live.events_seen, 4);
        assert_eq!(live.snapshot.total_faults(), 1);
        assert_eq!(live.spans.completed(SpanKind::Fault), 1);
        assert_eq!(live.series.windows().len(), 1);
    }

    #[test]
    fn trace_gap_counts_lost_events() {
        let mut p = Profile::new(1);
        p.fold(&Event::TraceGap { dropped: 123 });
        p.finish();
        assert_eq!(p.events_lost, 123);
        assert_eq!(p.events_seen, 1);
    }
}
