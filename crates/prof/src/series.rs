//! Windowed time-series aggregation over the event stream.
//!
//! The simulator has no wall clock inside a run; the natural time step is
//! the governed daemon tick, whose [`DaemonTick`](Event::DaemonTick)
//! event every policy emits at a fixed cadence. A [`TimeSeries`] folds
//! events into windows of `window_ticks` consecutive ticks, so a live
//! series and one rebuilt from a replayed trace are identical whenever
//! the trace is complete.

use trident_obs::Event;
use trident_types::{PageSize, MAX_RUNGS};

/// Aggregates for one window of consecutive daemon ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Window {
    /// Daemon ticks folded into this window (equals the configured width
    /// except for a trailing partial window).
    pub ticks: u64,
    /// Faults served, by ladder rung.
    pub faults: [u64; MAX_RUNGS],
    /// Fault-handling nanoseconds, by ladder rung.
    pub fault_ns: [u64; MAX_RUNGS],
    /// Promotions performed, by target rung.
    pub promotions: [u64; MAX_RUNGS],
    /// Demotions performed, by source rung.
    pub demotions: [u64; MAX_RUNGS],
    /// Compaction passes attempted.
    pub compaction_runs: u64,
    /// Bytes migrated by compaction.
    pub compaction_bytes: u64,
    /// Trident_pv mappings exchanged.
    pub pv_pairs: u64,
    /// Giant blocks zero-filled in the background.
    pub zero_blocks: u64,
    /// Daemon CPU nanoseconds.
    pub daemon_ns: u64,
    /// TLB misses observed, any page size.
    pub tlb_misses: u64,
    /// Page-walk cycles spent on those misses.
    pub walk_cycles: u64,
    /// Last 1GB free-memory fragmentation index seen, in thousandths
    /// (`u64::MAX` when no gauge sample landed in the window).
    pub fmfi_milli: u64,
    /// Last free 2MB-capacity gauge seen, in 2MB units.
    pub free_huge: u64,
    /// Last free 1GB-capacity gauge seen, in 1GB units.
    pub free_giant: u64,
    /// Faults injected by a deterministic fault plan (any site).
    pub injected_faults: u64,
    /// Promotions deferred by backoff or injection.
    pub promotions_deferred: u64,
    /// Bytes copied by Trident_pv exchange fallbacks.
    pub pv_fallback_bytes: u64,
}

impl Window {
    fn empty() -> Window {
        Window {
            fmfi_milli: u64::MAX,
            ..Window::default()
        }
    }

    /// Whether any event contributed to the window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Window::empty()
    }

    /// The last fragmentation gauge of the window, if one was sampled.
    #[must_use]
    pub fn fmfi(&self) -> Option<f64> {
        (self.fmfi_milli != u64::MAX).then(|| self.fmfi_milli as f64 / 1000.0)
    }
}

/// Folds events into fixed-width windows of daemon ticks.
///
/// Feed every event through [`fold`](TimeSeries::fold) and call
/// [`finish`](TimeSeries::finish) once at the end of the stream so a
/// trailing partial window is flushed; two series fed the same events
/// compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    window_ticks: u64,
    windows: Vec<Window>,
    current: Window,
    finished: bool,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(1)
    }
}

impl TimeSeries {
    /// A series whose windows span `window_ticks` daemon ticks (at least 1).
    #[must_use]
    pub fn new(window_ticks: u64) -> TimeSeries {
        TimeSeries {
            window_ticks: window_ticks.max(1),
            windows: Vec::new(),
            current: Window::empty(),
            finished: false,
        }
    }

    /// The configured window width in ticks.
    #[must_use]
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// Folds one event into the current window; a completed window is
    /// appended when the tick count reaches the configured width.
    pub fn fold(&mut self, event: &Event) {
        let w = &mut self.current;
        match *event {
            Event::Fault { size, ns, .. } => {
                w.faults[size.rung()] += 1;
                w.fault_ns[size.rung()] += ns;
            }
            Event::Promote { size, .. } => w.promotions[size.rung()] += 1,
            Event::Demote { size, .. } => w.demotions[size.rung()] += 1,
            Event::CompactionRun { .. } => w.compaction_runs += 1,
            Event::CompactionMove { bytes } => w.compaction_bytes += bytes,
            Event::PvExchange { pairs, .. } => w.pv_pairs += pairs,
            Event::ZeroFill { blocks } => w.zero_blocks += blocks,
            Event::TlbMiss { walk_cycles, .. } => {
                w.tlb_misses += 1;
                w.walk_cycles += walk_cycles;
            }
            Event::Gauge {
                fmfi_milli,
                free_huge,
                free_giant,
            } => {
                w.fmfi_milli = fmfi_milli;
                w.free_huge = free_huge;
                w.free_giant = free_giant;
            }
            Event::DaemonTick { ns } => {
                w.daemon_ns += ns;
                w.ticks += 1;
                if w.ticks >= self.window_ticks {
                    self.windows.push(self.current);
                    self.current = Window::empty();
                }
            }
            Event::FaultInjected { .. } => w.injected_faults += 1,
            Event::PromotionDeferred { .. } => w.promotions_deferred += 1,
            Event::PvFallback { bytes } => w.pv_fallback_bytes += bytes,
            Event::GiantAttempt { .. }
            | Event::BuddySplit { .. }
            | Event::BuddyCoalesce { .. }
            | Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::TraceGap { .. }
            | Event::TenantScope { .. } => {}
        }
    }

    /// Flushes a trailing non-empty partial window. Call exactly once at
    /// end of stream; further folds would start a new window.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if !self.current.is_empty() {
            self.windows.push(self.current);
            self.current = Window::empty();
        }
    }

    /// The completed windows, oldest first.
    #[must_use]
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Page-size label for window columns, matching the wire names.
    #[must_use]
    pub fn size_label(size: PageSize) -> &'static str {
        crate::prom::size_label(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_obs::AllocSite;

    fn fault(ns: u64) -> Event {
        Event::Fault {
            size: PageSize::new(1),
            site: AllocSite::PageFault,
            ns,
        }
    }

    #[test]
    fn windows_close_on_tick_boundaries() {
        let mut s = TimeSeries::new(2);
        s.fold(&fault(10));
        s.fold(&Event::DaemonTick { ns: 1 });
        s.fold(&fault(20));
        s.fold(&Event::DaemonTick { ns: 2 });
        s.fold(&fault(30));
        s.finish();
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[0].faults[1], 2);
        assert_eq!(s.windows()[0].ticks, 2);
        assert_eq!(s.windows()[0].daemon_ns, 3);
        assert_eq!(s.windows()[1].faults[1], 1);
        assert_eq!(s.windows()[1].ticks, 0, "trailing partial window");
    }

    #[test]
    fn gauge_keeps_last_sample_per_window() {
        let mut s = TimeSeries::new(1);
        s.fold(&Event::Gauge {
            fmfi_milli: 100,
            free_huge: 5,
            free_giant: 1,
        });
        s.fold(&Event::Gauge {
            fmfi_milli: 250,
            free_huge: 4,
            free_giant: 1,
        });
        s.fold(&Event::DaemonTick { ns: 1 });
        s.fold(&Event::DaemonTick { ns: 1 });
        s.finish();
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[0].fmfi(), Some(0.25));
        assert_eq!(s.windows()[0].free_huge, 4);
        assert_eq!(s.windows()[1].fmfi(), None, "no gauge in second window");
    }

    #[test]
    fn replayed_series_equals_live_series() {
        let events = [
            fault(5),
            Event::Gauge {
                fmfi_milli: 10,
                free_huge: 2,
                free_giant: 0,
            },
            Event::DaemonTick { ns: 3 },
            Event::PvExchange {
                pairs: 8,
                bytes: 1 << 21,
                batched: true,
            },
        ];
        let mut live = TimeSeries::new(1);
        let mut replay = TimeSeries::new(1);
        for ev in &events {
            live.fold(ev);
        }
        for ev in &events {
            replay.fold(ev);
        }
        live.finish();
        replay.finish();
        assert_eq!(live, replay);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut s = TimeSeries::new(1);
        s.fold(&fault(1));
        s.finish();
        let snapshot = s.clone();
        s.finish();
        assert_eq!(s, snapshot);
    }
}
