//! A mergeable HDR-style latency histogram with log-bucketed resolution.

use core::fmt;

/// Sub-bucket precision: each power-of-two range splits into `2^PRECISION`
/// linear sub-buckets, bounding quantile error at ~`2^-PRECISION` (≈6%).
const PRECISION: u32 = 4;
const SUB_BUCKETS: usize = 1 << PRECISION;
/// Values below `SUB_BUCKETS` are stored exactly; above, each of the
/// remaining 60 exponents contributes `SUB_BUCKETS` sub-buckets.
const BUCKETS: usize = (64 - PRECISION as usize + 1) * SUB_BUCKETS;

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let sub = ((v >> (e - PRECISION)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (e - PRECISION + 1) as usize * SUB_BUCKETS + sub
}

/// Largest value that lands in `bucket` (the reported quantile value).
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < SUB_BUCKETS {
        return bucket as u64;
    }
    let e = (bucket / SUB_BUCKETS) as u32 + PRECISION - 1;
    let sub = (bucket % SUB_BUCKETS) as u64;
    let base = 1u64 << e;
    let width = 1u64 << (e - PRECISION);
    // `base - 1 +` rather than `- 1` last: the top bucket's upper bound is
    // u64::MAX and the naive order overflows.
    base - 1 + (sub + 1) * width
}

/// A latency histogram with logarithmic buckets and linear sub-buckets
/// (the HdrHistogram layout).
///
/// Values below 16 are exact; larger values are bucketed with at most
/// ~6% relative error, over the full `u64` range, in a fixed ~8KB of
/// storage. Histograms [`merge`](LatencyHistogram::merge) exactly: the
/// merged histogram equals one fed both sample streams, in any order —
/// which makes per-shard recording plus a final merge deterministic.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. The sum saturates instead of wrapping, which
    /// keeps [`merge`](LatencyHistogram::merge) order-independent even
    /// at the `u64` boundary.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, if any were recorded.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample, if any were recorded.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// smallest bucket whose cumulative count reaches `⌈q·count⌉`.
    ///
    /// Deterministic, monotone in `q`, and never above
    /// [`max`](LatencyHistogram::max) nor below
    /// [`min`](LatencyHistogram::min). `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (the 50th percentile).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Folds another histogram's samples into this one. Associative and
    /// commutative: any merge order yields the identical histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(bucket_upper_bound_inclusive, count)` for every non-empty bucket,
    /// in increasing value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_upper(i), *c))
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 16);
        for (i, (upper, count)) in buckets.iter().enumerate() {
            assert_eq!(*upper, i as u64);
            assert_eq!(*count, 1);
        }
    }

    #[test]
    fn bucket_upper_bounds_its_range() {
        for v in [0, 1, 15, 16, 17, 255, 256, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            // Relative error of the bucket upper bound is < 2^-PRECISION.
            if v >= SUB_BUCKETS as u64 {
                assert!(bucket_upper(i) - v <= v / 8, "bucket too wide at {v}");
            }
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 7);
        }
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max().unwrap());
        assert!(h.quantile(0.0).unwrap() >= h.min().unwrap());
        assert_eq!(h.quantile(1.0).unwrap(), h.max().unwrap());
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3, 900, 1 << 33] {
            a.record(v);
            both.record(v);
        }
        for v in [0, 17, 17, 255] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }
}
