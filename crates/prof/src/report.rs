//! Deterministic report rendering: markdown, JSON and Prometheus text.
//!
//! Every renderer is a pure function of the [`Profile`] with fixed field
//! order and fixed-precision number formatting, so equal profiles render
//! to byte-identical reports — the property `trace_analyze --check`
//! leans on.

use std::fmt::Write as _;

use trident_obs::SpanKind;

use crate::{prom, LatencyHistogram, Profile};

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

/// Renders the profile as a markdown report.
#[must_use]
pub fn render_markdown(profile: &Profile) -> String {
    let mut out = String::new();
    let snap = &profile.snapshot;
    let _ = writeln!(out, "# Trident profile");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "- events: {} folded, {} lost to ring eviction",
        profile.events_seen, profile.events_lost
    );
    let _ = writeln!(
        out,
        "- faults: {} ({} ns total)",
        snap.total_faults(),
        snap.total_fault_ns()
    );
    let _ = writeln!(out, "- daemon CPU: {} ns", snap.daemon_ns);
    let _ = writeln!(
        out,
        "- compaction: {} attempts, {} succeeded, {} bytes moved",
        snap.compaction_attempts, snap.compaction_successes, snap.compaction_bytes_copied
    );
    let _ = writeln!(out, "- pv bytes exchanged: {}", snap.pv_bytes_exchanged);
    let _ = writeln!(out);
    let _ = writeln!(out, "## Spans");
    let _ = writeln!(out);
    let _ = writeln!(out, "| span | count | p50 ns | p90 ns | p99 ns | max ns |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for kind in SpanKind::ALL {
        let h = profile.spans.histogram(kind);
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            kind.as_str(),
            h.count(),
            opt(h.p50()),
            opt(h.p90()),
            opt(h.p99()),
            opt(h.max()),
        );
    }
    if profile.spans.abandoned() > 0 || profile.spans.unmatched_ends() > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} spans abandoned at trace gaps, {} ends without a begin.",
            profile.spans.abandoned(),
            profile.spans.unmatched_ends()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "## Time series ({} windows of {} ticks)",
        profile.series.windows().len(),
        profile.series.window_ticks()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| window | faults b/h/g | promos b/h/g | compact runs | compact bytes | pv pairs | zero blocks | tlb misses | fmfi | free 2M | free 1G | injected | deferred | pv fb bytes |"
    );
    let _ = writeln!(
        out,
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
    );
    for (i, w) in profile.series.windows().iter().enumerate() {
        let fmfi = w
            .fmfi()
            .map_or_else(|| "-".to_owned(), |f| format!("{f:.3}"));
        let _ = writeln!(
            out,
            "| {} | {}/{}/{} | {}/{}/{} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            i,
            w.faults[0],
            w.faults[1],
            w.faults[2],
            w.promotions[0],
            w.promotions[1],
            w.promotions[2],
            w.compaction_runs,
            w.compaction_bytes,
            w.pv_pairs,
            w.zero_blocks,
            w.tlb_misses,
            fmfi,
            w.free_huge,
            w.free_giant,
            w.injected_faults,
            w.promotions_deferred,
            w.pv_fallback_bytes,
        );
    }
    out
}

fn json_hist(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count(),
        h.sum(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.p50().unwrap_or(0),
        h.p90().unwrap_or(0),
        h.p99().unwrap_or(0),
    )
}

/// Renders the profile as one deterministic JSON document.
#[must_use]
pub fn render_json(profile: &Profile) -> String {
    let mut out = String::new();
    let snap = &profile.snapshot;
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {},", snap.version);
    let _ = writeln!(out, "  \"events_seen\": {},", profile.events_seen);
    let _ = writeln!(out, "  \"events_lost\": {},", profile.events_lost);
    let _ = writeln!(
        out,
        "  \"faults\": {{\"base\":{},\"huge\":{},\"giant\":{}}},",
        snap.faults[0], snap.faults[1], snap.faults[2]
    );
    let _ = writeln!(
        out,
        "  \"fault_ns\": {{\"base\":{},\"huge\":{},\"giant\":{}}},",
        snap.fault_ns[0], snap.fault_ns[1], snap.fault_ns[2]
    );
    let _ = writeln!(out, "  \"daemon_ns\": {},", snap.daemon_ns);
    let _ = writeln!(
        out,
        "  \"compaction\": {{\"attempts\":{},\"successes\":{},\"bytes\":{}}},",
        snap.compaction_attempts, snap.compaction_successes, snap.compaction_bytes_copied
    );
    let _ = writeln!(
        out,
        "  \"pv_bytes_exchanged\": {},",
        snap.pv_bytes_exchanged
    );
    let _ = writeln!(
        out,
        "  \"pv_fallbacks\": {{\"count\":{},\"bytes\":{}}},",
        snap.pv_fallbacks, snap.pv_fallback_bytes
    );
    let _ = writeln!(
        out,
        "  \"promotions_deferred\": {},",
        snap.promotions_deferred
    );
    let _ = writeln!(
        out,
        "  \"injected_faults\": {},",
        snap.total_injected_faults()
    );
    out.push_str("  \"spans\": {\n");
    for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
        let comma = if i + 1 < SpanKind::ALL.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {}{comma}",
            kind.as_str(),
            json_hist(profile.spans.histogram(kind))
        );
    }
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"window_ticks\": {},",
        profile.series.window_ticks()
    );
    out.push_str("  \"windows\": [\n");
    let windows = profile.series.windows();
    for (i, w) in windows.iter().enumerate() {
        let comma = if i + 1 < windows.len() { "," } else { "" };
        let fmfi = w
            .fmfi()
            .map_or_else(|| "null".to_owned(), |f| format!("{f:.3}"));
        let _ = writeln!(
            out,
            "    {{\"ticks\":{},\"faults\":[{},{},{}],\"fault_ns\":[{},{},{}],\"promotions\":[{},{},{}],\"demotions\":[{},{},{}],\"compaction_runs\":{},\"compaction_bytes\":{},\"pv_pairs\":{},\"zero_blocks\":{},\"daemon_ns\":{},\"tlb_misses\":{},\"walk_cycles\":{},\"fmfi\":{fmfi},\"free_huge\":{},\"free_giant\":{},\"injected_faults\":{},\"promotions_deferred\":{},\"pv_fallback_bytes\":{}}}{comma}",
            w.ticks,
            w.faults[0], w.faults[1], w.faults[2],
            w.fault_ns[0], w.fault_ns[1], w.fault_ns[2],
            w.promotions[0], w.promotions[1], w.promotions[2],
            w.demotions[0], w.demotions[1], w.demotions[2],
            w.compaction_runs,
            w.compaction_bytes,
            w.pv_pairs,
            w.zero_blocks,
            w.daemon_ns,
            w.tlb_misses,
            w.walk_cycles,
            w.free_huge,
            w.free_giant,
            w.injected_faults,
            w.promotions_deferred,
            w.pv_fallback_bytes,
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Renders the profile in the Prometheus text exposition format.
///
/// Built on the shared [`crate::prom`] encoder, so the snapshot counter
/// block here is byte-identical to the one a live `tridentd /metrics`
/// scrape embeds for the same counters.
#[must_use]
pub fn render_prometheus(profile: &Profile) -> String {
    let mut enc = prom::TextEncoder::new();
    prom::snapshot_counters(&mut enc, &profile.snapshot);
    enc.summary("trident_span_ns", "Span duration quantiles in nanoseconds.");
    for kind in SpanKind::ALL {
        prom::summary_samples(
            &mut enc,
            "trident_span_ns",
            &[("span", kind.as_str())],
            profile.spans.histogram(kind),
        );
    }
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_obs::{AllocSite, Event};
    use trident_types::PageSize;

    fn sample_profile() -> Profile {
        Profile::from_events(
            1,
            [
                Event::SpanBegin {
                    kind: SpanKind::Fault,
                },
                Event::Fault {
                    size: PageSize::new(1),
                    site: AllocSite::PageFault,
                    ns: 1800,
                },
                Event::SpanEnd {
                    kind: SpanKind::Fault,
                    ns: 1800,
                },
                Event::Gauge {
                    fmfi_milli: 42,
                    free_huge: 10,
                    free_giant: 1,
                },
                Event::DaemonTick { ns: 12 },
            ]
            .iter(),
        )
    }

    #[test]
    fn renderers_are_deterministic() {
        let p = sample_profile();
        assert_eq!(render_markdown(&p), render_markdown(&p.clone()));
        assert_eq!(render_json(&p), render_json(&p.clone()));
        assert_eq!(render_prometheus(&p), render_prometheus(&p.clone()));
    }

    #[test]
    fn markdown_mentions_spans_and_windows() {
        let md = render_markdown(&sample_profile());
        assert!(md.contains("| fault | 1 |"));
        assert!(md.contains("0.042"));
    }

    #[test]
    fn json_windows_round_numbers() {
        let js = render_json(&sample_profile());
        assert!(js.contains("\"faults\": {\"base\":0,\"huge\":1,\"giant\":0}"));
        assert!(js.contains("\"fmfi\":0.042"));
    }

    #[test]
    fn prometheus_has_summary_lines() {
        let prom = render_prometheus(&sample_profile());
        assert!(prom.contains("trident_faults_total{size=\"huge\"} 1"));
        assert!(prom.contains("trident_span_ns{span=\"fault\",quantile=\"0.5\"} "));
        assert!(prom.contains("trident_span_ns_count{span=\"fault\"} 1"));
    }

    #[test]
    fn prometheus_rendering_is_lint_clean() {
        crate::prom::lint(&render_prometheus(&sample_profile())).unwrap();
    }
}
