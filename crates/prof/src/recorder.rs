//! Live recorders: an in-run profiler and a streaming JSONL file writer.
//!
//! Both implement [`DynRecorder`] so they can sit behind
//! [`ObsRecorder::Custom`] inside a cloneable simulation context.

use core::fmt;
use std::any::Any;
use std::io::Write;
use std::sync::{Arc, Mutex};

use trident_obs::{DynRecorder, Event, ObsRecorder, Recorder, RingTracer};

use crate::Profile;

/// A recorder that folds every event into a live [`Profile`] and then
/// forwards it to an inner [`ObsRecorder`] (usually a ring tracer, so
/// the raw trace is still available alongside the profile).
#[derive(Debug, Clone)]
pub struct Profiler {
    profile: Profile,
    inner: ObsRecorder,
}

impl Profiler {
    /// Profiles on top of `inner`, using `window_ticks`-wide windows.
    #[must_use]
    pub fn new(window_ticks: u64, inner: ObsRecorder) -> Profiler {
        Profiler {
            profile: Profile::new(window_ticks),
            inner,
        }
    }

    /// The profile gathered so far (trailing window not yet flushed).
    #[must_use]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Flushes the trailing window and returns the finished profile.
    pub fn finish_profile(&mut self) -> Profile {
        self.profile.finish();
        self.profile.clone()
    }
}

impl Recorder for Profiler {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        self.profile.fold(&event);
        self.inner.record(event);
    }
}

impl DynRecorder for Profiler {
    fn clone_box(&self) -> Box<dyn DynRecorder> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn ring(&self) -> Option<&RingTracer> {
        self.inner.tracer()
    }

    fn ring_mut(&mut self) -> Option<&mut RingTracer> {
        self.inner.tracer_mut()
    }
}

struct WriterState {
    sink: Box<dyn Write + Send>,
    written: u64,
    errored: bool,
}

/// A recorder that streams every event to a byte sink as JSONL, one
/// event per line, without retaining anything in memory.
///
/// Clones share the sink (the context is cloned during setup in some
/// policies), so the written-line count is global across clones. Write
/// errors are sticky and surfaced by [`finish`](JsonlWriter::finish)
/// rather than panicking mid-run.
#[derive(Clone)]
pub struct JsonlWriter {
    state: Arc<Mutex<WriterState>>,
}

impl JsonlWriter {
    /// Streams to `sink`.
    #[must_use]
    pub fn new(sink: Box<dyn Write + Send>) -> JsonlWriter {
        JsonlWriter {
            state: Arc::new(Mutex::new(WriterState {
                sink,
                written: 0,
                errored: false,
            })),
        }
    }

    /// Lines written so far, across all clones.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.state.lock().map(|s| s.written).unwrap_or(0)
    }

    /// Flushes the sink and reports the line count, or the first write
    /// error if any occurred during the run.
    pub fn finish(&self) -> std::io::Result<u64> {
        let mut s = self
            .state
            .lock()
            .map_err(|_| std::io::Error::other("trace writer poisoned"))?;
        if s.errored {
            return Err(std::io::Error::other("trace write failed mid-run"));
        }
        s.sink.flush()?;
        Ok(s.written)
    }
}

impl fmt::Debug for JsonlWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("written", &self.written())
            .finish_non_exhaustive()
    }
}

impl Recorder for JsonlWriter {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if let Ok(mut s) = self.state.lock() {
            if s.errored {
                return;
            }
            let line = event.to_jsonl();
            if writeln!(s.sink, "{line}").is_err() {
                s.errored = true;
            } else {
                s.written += 1;
            }
        }
    }
}

impl DynRecorder for JsonlWriter {
    fn clone_box(&self) -> Box<dyn DynRecorder> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    #[test]
    fn profiler_forwards_to_inner_ring() {
        let mut p = Profiler::new(1, ObsRecorder::ring(8));
        p.record(Event::ZeroFill { blocks: 1 });
        p.record(Event::DaemonTick { ns: 4 });
        assert_eq!(p.ring().unwrap().len(), 2);
        let profile = p.finish_profile();
        assert_eq!(profile.events_seen, 2);
        assert_eq!(profile.snapshot.daemon_ns, 4);
        assert_eq!(profile.series.windows().len(), 1);
    }

    #[test]
    fn profiler_behind_obs_recorder_downcasts_back() {
        let mut rec = ObsRecorder::custom(Box::new(Profiler::new(1, ObsRecorder::default())));
        rec.record(Event::DaemonTick { ns: 7 });
        let profiler: &mut Profiler = rec.custom_mut().expect("downcast");
        assert_eq!(profiler.finish_profile().snapshot.daemon_ns, 7);
    }

    /// A sink whose buffer outlives the writer, for asserting bytes.
    #[derive(Clone)]
    struct SharedBuf(StdArc<StdMutex<Cursor<Vec<u8>>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let buf = SharedBuf(StdArc::new(StdMutex::new(Cursor::new(Vec::new()))));
        let mut w = JsonlWriter::new(Box::new(buf.clone()));
        let ev = Event::ZeroFill { blocks: 9 };
        w.record(ev);
        let mut w2 = w.clone();
        w2.record(ev);
        assert_eq!(w.finish().unwrap(), 2, "clones share the line count");
        let bytes = buf.0.lock().unwrap().get_ref().clone();
        let text = String::from_utf8(bytes).unwrap();
        for line in text.lines() {
            assert_eq!(Event::parse_jsonl(line), Ok(ev));
        }
        assert_eq!(text.lines().count(), 2);
    }
}
