//! Span pairing: folds `SpanBegin`/`SpanEnd` events into per-kind
//! duration statistics.

use trident_obs::{Event, Recorder, SpanKind};

use crate::LatencyHistogram;

const KINDS: usize = SpanKind::ALL.len();

/// Per-kind span duration statistics, built by pairing begin/end events.
///
/// Spans of the same kind never nest in the instrumented code, but the
/// pairing is depth-tolerant anyway: a `SpanEnd` closes the innermost
/// open span of its kind. Ends without a matching begin (the begin fell
/// off the ring, signalled by a [`TraceGap`](Event::TraceGap)) still
/// record their duration — the duration rides on the end event — but are
/// counted in [`unmatched_ends`](SpanStats::unmatched_ends); begins left
/// open at a gap are counted in [`abandoned`](SpanStats::abandoned).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    histograms: [LatencyHistogram; KINDS],
    begins: [u64; KINDS],
    ends: [u64; KINDS],
    open: [u64; KINDS],
    abandoned: u64,
    unmatched_ends: u64,
    gaps: u64,
}

impl SpanStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> SpanStats {
        SpanStats::default()
    }

    /// Folds one event; non-span events are ignored except
    /// [`TraceGap`](Event::TraceGap), which abandons all open spans.
    pub fn observe(&mut self, event: &Event) {
        match *event {
            Event::SpanBegin { kind } => {
                self.begins[kind as usize] += 1;
                self.open[kind as usize] += 1;
            }
            Event::SpanEnd { kind, ns } => {
                let k = kind as usize;
                self.ends[k] += 1;
                if self.open[k] > 0 {
                    self.open[k] -= 1;
                } else {
                    self.unmatched_ends += 1;
                }
                self.histograms[k].record(ns);
            }
            Event::TraceGap { .. } => {
                self.gaps += 1;
                self.abandoned += self.open.iter().sum::<u64>();
                self.open = [0; KINDS];
            }
            _ => {}
        }
    }

    /// The duration histogram for one span kind.
    #[must_use]
    pub fn histogram(&self, kind: SpanKind) -> &LatencyHistogram {
        &self.histograms[kind as usize]
    }

    /// Completed spans of one kind.
    #[must_use]
    pub fn completed(&self, kind: SpanKind) -> u64 {
        self.histograms[kind as usize].count()
    }

    /// Begins seen for one kind.
    #[must_use]
    pub fn begins(&self, kind: SpanKind) -> u64 {
        self.begins[kind as usize]
    }

    /// Spans still open (begun, not yet ended).
    #[must_use]
    pub fn open(&self, kind: SpanKind) -> u64 {
        self.open[kind as usize]
    }

    /// Spans whose end was lost to a trace gap.
    #[must_use]
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Ends whose begin was never seen (lost before the ring window).
    #[must_use]
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// Trace gaps encountered.
    #[must_use]
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Folds another span-stats value into this one. Pairing state
    /// (`open`) sums, which is only meaningful when the two inputs cover
    /// disjoint shards, not an interleaved stream.
    pub fn merge(&mut self, other: &SpanStats) {
        for k in 0..KINDS {
            self.histograms[k].merge(&other.histograms[k]);
            self.begins[k] += other.begins[k];
            self.ends[k] += other.ends[k];
            self.open[k] += other.open[k];
        }
        self.abandoned += other.abandoned;
        self.unmatched_ends += other.unmatched_ends;
        self.gaps += other.gaps;
    }
}

/// A [`Recorder`] adapter that aggregates span statistics, then forwards
/// every event unchanged to the wrapped recorder.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder<R: Recorder> {
    stats: SpanStats,
    inner: R,
}

impl<R: Recorder> SpanRecorder<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> SpanRecorder<R> {
        SpanRecorder {
            stats: SpanStats::new(),
            inner,
        }
    }

    /// The statistics gathered so far.
    #[must_use]
    pub fn stats(&self) -> &SpanStats {
        &self.stats
    }

    /// The wrapped recorder.
    #[must_use]
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Unwraps into `(stats, inner)`.
    pub fn into_parts(self) -> (SpanStats, R) {
        (self.stats, self.inner)
    }
}

impl<R: Recorder> Recorder for SpanRecorder<R> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        self.stats.observe(&event);
        self.inner.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_obs::NoopRecorder;

    #[test]
    fn pairs_begin_end_into_histogram() {
        let mut s = SpanStats::new();
        s.observe(&Event::SpanBegin {
            kind: SpanKind::Fault,
        });
        s.observe(&Event::SpanEnd {
            kind: SpanKind::Fault,
            ns: 100,
        });
        s.observe(&Event::SpanBegin {
            kind: SpanKind::Fault,
        });
        s.observe(&Event::SpanEnd {
            kind: SpanKind::Fault,
            ns: 300,
        });
        assert_eq!(s.completed(SpanKind::Fault), 2);
        assert_eq!(s.open(SpanKind::Fault), 0);
        assert_eq!(s.histogram(SpanKind::Fault).sum(), 400);
        assert_eq!(s.completed(SpanKind::Compaction), 0);
    }

    #[test]
    fn gap_abandons_open_spans_and_tolerates_orphan_ends() {
        let mut s = SpanStats::new();
        s.observe(&Event::SpanBegin {
            kind: SpanKind::PromoScan,
        });
        s.observe(&Event::TraceGap { dropped: 9 });
        assert_eq!(s.abandoned(), 1);
        assert_eq!(s.open(SpanKind::PromoScan), 0);
        s.observe(&Event::SpanEnd {
            kind: SpanKind::PromoScan,
            ns: 50,
        });
        assert_eq!(s.unmatched_ends(), 1);
        assert_eq!(s.completed(SpanKind::PromoScan), 1, "duration still kept");
        assert_eq!(s.gaps(), 1);
    }

    #[test]
    fn span_recorder_forwards_to_inner() {
        let mut r = SpanRecorder::new(NoopRecorder);
        r.record(Event::SpanBegin {
            kind: SpanKind::ZeroFill,
        });
        r.record(Event::SpanEnd {
            kind: SpanKind::ZeroFill,
            ns: 7,
        });
        assert_eq!(r.stats().completed(SpanKind::ZeroFill), 1);
        let (stats, _inner) = r.into_parts();
        assert_eq!(stats.histogram(SpanKind::ZeroFill).max(), Some(7));
    }
}
