//! Streaming JSONL trace reader.

use core::fmt;
use std::error::Error;
use std::io::BufRead;

use trident_obs::{jsonl_schema_version, Event, ParseError, SNAPSHOT_VERSION};

/// Why a trace line could not be turned into an [`Event`].
#[derive(Debug)]
pub enum TraceReadErrorKind {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The line carries a schema version this build does not understand.
    UnsupportedVersion {
        /// The version found on the line (`None` when the `"v"` field is
        /// missing or non-numeric).
        found: Option<u64>,
    },
    /// The line is same-version but malformed.
    Parse(ParseError),
}

/// An error at a specific line of a JSONL trace.
#[derive(Debug)]
pub struct TraceReadError {
    /// 1-based line number within the stream.
    pub line_no: u64,
    /// What went wrong.
    pub kind: TraceReadErrorKind,
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceReadErrorKind::Io(e) => write!(f, "trace line {}: {e}", self.line_no),
            TraceReadErrorKind::UnsupportedVersion { found: Some(v) } => write!(
                f,
                "trace line {}: schema version {v} (this build reads v{})",
                self.line_no, SNAPSHOT_VERSION
            ),
            TraceReadErrorKind::UnsupportedVersion { found: None } => write!(
                f,
                "trace line {}: missing schema version (this build reads v{})",
                self.line_no, SNAPSHOT_VERSION
            ),
            TraceReadErrorKind::Parse(e) => write!(f, "trace line {}: {e}", self.line_no),
        }
    }
}

impl Error for TraceReadError {}

/// Streams [`Event`]s out of JSONL trace output (e.g. from `dump_trace`)
/// one line at a time, without loading the trace into memory.
///
/// Blank lines and `#`-prefixed comment lines are skipped, so dumps with
/// human-readable banners parse unmodified. Schema-version skew is
/// reported as [`TraceReadErrorKind::UnsupportedVersion`] so callers can
/// distinguish "old trace" from "corrupt trace".
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    source: R,
    line_no: u64,
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered byte source.
    pub fn new(source: R) -> TraceReader<R> {
        TraceReader {
            source,
            line_no: 0,
            line: String::new(),
        }
    }

    /// 1-based number of the last line read.
    #[must_use]
    pub fn line_no(&self) -> u64 {
        self.line_no
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<Event, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            self.line_no += 1;
            match self.source.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(TraceReadError {
                        line_no: self.line_no,
                        kind: TraceReadErrorKind::Io(e),
                    }))
                }
            }
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let version = jsonl_schema_version(line);
            if version != Some(u64::from(SNAPSHOT_VERSION)) && line.starts_with('{') {
                return Some(Err(TraceReadError {
                    line_no: self.line_no,
                    kind: TraceReadErrorKind::UnsupportedVersion { found: version },
                }));
            }
            return Some(match Event::parse_jsonl(line) {
                Ok(ev) => Ok(ev),
                Err(e) => Err(TraceReadError {
                    line_no: self.line_no,
                    kind: TraceReadErrorKind::Parse(e),
                }),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn streams_events_skipping_blanks_and_comments() {
        let ev = Event::ZeroFill { blocks: 2 };
        let text = format!("# banner\n\n{}\n{}\n", ev.to_jsonl(), ev.to_jsonl());
        let events: Result<Vec<Event>, _> = TraceReader::new(Cursor::new(text)).collect();
        assert_eq!(events.unwrap(), vec![ev, ev]);
    }

    #[test]
    fn reports_version_skew_with_line_number() {
        let text = "{\"v\":1,\"ev\":\"zero_fill\",\"blocks\":1}\n";
        let mut reader = TraceReader::new(Cursor::new(text));
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line_no, 1);
        assert!(matches!(
            err.kind,
            TraceReadErrorKind::UnsupportedVersion { found: Some(1) }
        ));
    }

    #[test]
    fn reports_garbage_as_parse_error() {
        let good = Event::DaemonTick { ns: 1 }.to_jsonl();
        let text = format!("{good}\nnot json at all\n");
        let results: Vec<_> = TraceReader::new(Cursor::new(text)).collect();
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.line_no, 2);
        assert!(matches!(err.kind, TraceReadErrorKind::Parse(_)));
    }
}
