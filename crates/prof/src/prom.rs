//! The Prometheus text-exposition encoder shared by every renderer.
//!
//! Two things in the repository speak Prometheus text: the offline
//! `trace_analyze --prom` report over a finished trace, and the live
//! `tridentd /metrics` scrape endpoint over the daemon's registry. Both
//! build their output through the one [`TextEncoder`] here — same
//! header layout, same label formatting, same summary shape — so
//! identical counters render byte-identical metric lines no matter
//! which path produced them (a property the serve crate's golden test
//! pins down). [`snapshot_counters`] renders the
//! [`StatsSnapshot`]-derived block both paths share, and [`lint`]
//! checks any exposition body for the format invariants CI enforces:
//! every sample preceded by its `# TYPE`, no duplicate metric
//! families.

use std::fmt::Write as _;

use trident_obs::{InjectSite, StatsSnapshot};
use trident_types::{PageSize, MAX_RUNGS};

use crate::LatencyHistogram;

/// Stable wire labels for ladder rungs. The first three match the
/// historical x86-64 names; higher rungs (NAPOT / contiguous-span
/// classes on wider ladders) are numbered.
pub const RUNG_LABELS: [&str; MAX_RUNGS] = ["base", "huge", "giant", "rung3", "rung4", "rung5"];

/// The wire label for one rung of the ladder.
#[must_use]
pub fn size_label(size: PageSize) -> &'static str {
    RUNG_LABELS[size.rung()]
}

/// An append-only Prometheus text-exposition builder.
///
/// Declare each metric family with [`counter`](TextEncoder::counter),
/// [`gauge`](TextEncoder::gauge) or [`summary`](TextEncoder::summary)
/// (which emit the `# HELP`/`# TYPE` header), then emit its samples
/// with [`sample`](TextEncoder::sample); [`finish`](TextEncoder::finish)
/// returns the body. Purely deterministic: output bytes are a function
/// of the call sequence alone.
///
/// # Examples
///
/// ```
/// use trident_prof::prom::TextEncoder;
///
/// let mut enc = TextEncoder::new();
/// enc.counter("demo_total", "A demo counter.");
/// enc.sample("demo_total", &[("kind", "a")], 3);
/// let text = enc.finish();
/// assert!(text.contains("# TYPE demo_total counter\n"));
/// assert!(text.contains("demo_total{kind=\"a\"} 3\n"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct TextEncoder {
    out: String,
}

impl TextEncoder {
    /// An empty exposition body.
    #[must_use]
    pub fn new() -> TextEncoder {
        TextEncoder { out: String::new() }
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Declares a counter family (emits its `# HELP`/`# TYPE` header).
    pub fn counter(&mut self, name: &str, help: &str) {
        self.header(name, "counter", help);
    }

    /// Declares a gauge family (emits its `# HELP`/`# TYPE` header).
    pub fn gauge(&mut self, name: &str, help: &str) {
        self.header(name, "gauge", help);
    }

    /// Declares a summary family (emits its `# HELP`/`# TYPE` header).
    /// Quantile samples plus the `_sum`/`_count` series all belong to
    /// this one declaration.
    pub fn summary(&mut self, name: &str, help: &str) {
        self.header(name, "summary", help);
    }

    /// Emits one sample line: `name{k="v",...} value` (no braces when
    /// `labels` is empty). Label order is the slice order.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{v}\"");
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// The finished exposition body.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Emits one summary's samples from a [`LatencyHistogram`]: the
/// 0.5/0.9/0.99/1 quantile series (empty histograms report 0) followed
/// by `_sum` and `_count`, all carrying `labels`. The caller declares
/// the family once with [`TextEncoder::summary`]; several label sets
/// may then share it.
pub fn summary_samples(
    enc: &mut TextEncoder,
    name: &str,
    labels: &[(&str, &str)],
    h: &LatencyHistogram,
) {
    for (q, v) in [
        ("0.5", h.p50()),
        ("0.9", h.p90()),
        ("0.99", h.p99()),
        ("1", h.max()),
    ] {
        let mut with_q: Vec<(&str, &str)> = labels.to_vec();
        with_q.push(("quantile", q));
        enc.sample(name, &with_q, v.unwrap_or(0));
    }
    enc.sample(&format!("{name}_sum"), labels, h.sum());
    enc.sample(&format!("{name}_count"), labels, h.count());
}

/// Renders the `trident_*` counter block derived from a
/// [`StatsSnapshot`] — the block the offline profile report and the
/// live daemon registry both embed, byte-identically.
pub fn snapshot_counters(enc: &mut TextEncoder, snap: &StatsSnapshot) {
    enc.counter("trident_faults_total", "Page faults served, by page size.");
    for (label, value) in RUNG_LABELS.into_iter().zip(snap.faults) {
        enc.sample("trident_faults_total", &[("size", label)], value);
    }
    enc.counter(
        "trident_fault_ns_total",
        "Modeled fault-handling nanoseconds.",
    );
    for (label, value) in RUNG_LABELS.into_iter().zip(snap.fault_ns) {
        enc.sample("trident_fault_ns_total", &[("size", label)], value);
    }
    enc.counter(
        "trident_promotions_total",
        "Promotions, by target page size.",
    );
    for (label, value) in RUNG_LABELS.into_iter().zip(snap.promotions) {
        enc.sample("trident_promotions_total", &[("size", label)], value);
    }
    enc.counter(
        "trident_daemon_ns_total",
        "Background-daemon CPU nanoseconds.",
    );
    enc.sample("trident_daemon_ns_total", &[], snap.daemon_ns);
    enc.counter(
        "trident_compaction_bytes_total",
        "Bytes migrated by compaction.",
    );
    enc.sample(
        "trident_compaction_bytes_total",
        &[],
        snap.compaction_bytes_copied,
    );
    enc.counter(
        "trident_pv_bytes_exchanged_total",
        "Bytes whose copy Trident_pv elided.",
    );
    enc.sample(
        "trident_pv_bytes_exchanged_total",
        &[],
        snap.pv_bytes_exchanged,
    );
    enc.counter(
        "trident_injected_faults_total",
        "Faults injected by a fault plan, by site.",
    );
    for site in InjectSite::ALL {
        enc.sample(
            "trident_injected_faults_total",
            &[("site", site.as_str())],
            snap.injected_at(site),
        );
    }
    enc.counter(
        "trident_promotions_deferred_total",
        "Promotions deferred by backoff or injection.",
    );
    enc.sample(
        "trident_promotions_deferred_total",
        &[],
        snap.promotions_deferred,
    );
    enc.counter(
        "trident_pv_fallback_bytes_total",
        "Bytes copied by Trident_pv exchange fallbacks.",
    );
    enc.sample(
        "trident_pv_fallback_bytes_total",
        &[],
        snap.pv_fallback_bytes,
    );
}

/// Checks a Prometheus text body for the invariants the repository's
/// expositions guarantee: every sample line belongs to a family
/// declared by a preceding `# TYPE` (summaries cover their `_sum` and
/// `_count` series), no metric family is declared twice, and every
/// line parses as a header, a sample, or blank.
///
/// # Errors
///
/// One human-readable message per violation, each prefixed with the
/// 1-based line number.
pub fn lint(text: &str) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    // (family name, is_summary) in declaration order.
    let mut families: Vec<(String, bool)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() || line.starts_with("# HELP ") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                errors.push(format!("line {n}: malformed TYPE header: {line:?}"));
                continue;
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                errors.push(format!("line {n}: unknown metric type {kind:?}"));
            }
            if families.iter().any(|(f, _)| f == name) {
                errors.push(format!("line {n}: duplicate family {name:?}"));
            }
            families.push((name.to_owned(), kind == "summary"));
            continue;
        }
        if line.starts_with('#') {
            errors.push(format!("line {n}: unknown comment form: {line:?}"));
            continue;
        }
        // A sample: metric name runs to the first '{' or space.
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty() {
            errors.push(format!("line {n}: sample with no metric name: {line:?}"));
            continue;
        }
        let declared = families.iter().any(|(f, is_summary)| {
            name == f
                || (*is_summary
                    && (name.strip_suffix("_sum") == Some(f)
                        || name.strip_suffix("_count") == Some(f)))
        });
        if !declared {
            errors.push(format!(
                "line {n}: sample {name:?} has no preceding # TYPE declaration"
            ));
        }
        if !line[name_end..].contains(' ') {
            errors.push(format!("line {n}: sample {name:?} carries no value"));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_formats_headers_and_labels() {
        let mut enc = TextEncoder::new();
        enc.gauge("g", "A gauge.");
        enc.sample("g", &[], 7);
        enc.counter("c_total", "A counter.");
        enc.sample("c_total", &[("a", "x"), ("b", "y")], 1);
        assert_eq!(
            enc.finish(),
            "# HELP g A gauge.\n# TYPE g gauge\ng 7\n\
             # HELP c_total A counter.\n# TYPE c_total counter\nc_total{a=\"x\",b=\"y\"} 1\n"
        );
    }

    #[test]
    fn summary_samples_cover_quantiles_sum_and_count() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3] {
            h.record(v);
        }
        let mut enc = TextEncoder::new();
        enc.summary("s_ns", "A summary.");
        summary_samples(&mut enc, "s_ns", &[("span", "x")], &h);
        let text = enc.finish();
        assert!(text.contains("s_ns{span=\"x\",quantile=\"0.5\"} 2\n"));
        assert!(text.contains("s_ns_sum{span=\"x\"} 6\n"));
        assert!(text.contains("s_ns_count{span=\"x\"} 3\n"));
        lint(&text).unwrap();
    }

    #[test]
    fn snapshot_counters_pass_the_lint() {
        let snap = StatsSnapshot {
            faults: [3, 2, 1, 0, 0, 0],
            daemon_ns: 99,
            ..StatsSnapshot::default()
        };
        let mut enc = TextEncoder::new();
        snapshot_counters(&mut enc, &snap);
        let text = enc.finish();
        assert!(text.contains("trident_faults_total{size=\"base\"} 3\n"));
        assert!(text.contains("trident_daemon_ns_total 99\n"));
        lint(&text).unwrap();
    }

    #[test]
    fn lint_rejects_undeclared_and_duplicate_families() {
        let undeclared = "orphan_total 3\n";
        let errs = lint(undeclared).unwrap_err();
        assert!(errs[0].contains("no preceding # TYPE"), "{errs:?}");

        let duplicate = "# TYPE a counter\na 1\n# TYPE a counter\na 2\n";
        let errs = lint(duplicate).unwrap_err();
        assert!(errs[0].contains("duplicate family"), "{errs:?}");

        let summary_children = "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 1\ns_count 1\n";
        lint(summary_children).unwrap();
    }
}
