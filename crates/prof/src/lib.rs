//! Trace analysis and profiling for the Trident simulator.
//!
//! `trident-obs` (the write side) turns every memory-management action
//! into a typed event; this crate is the read side. It derives three
//! views from the same stream, live or replayed:
//!
//! - **Spans** — [`SpanStats`] pairs `SpanBegin`/`SpanEnd` events into
//!   per-operation duration records aggregated in a mergeable,
//!   log-bucketed [`LatencyHistogram`] (p50/p90/p99/max).
//! - **Time series** — [`TimeSeries`] folds events into fixed windows of
//!   daemon ticks: faults by page size, promotions, compaction work,
//!   fragmentation gauges, TLB misses.
//! - **Aggregates** — the same [`StatsSnapshot`](trident_obs::StatsSnapshot)
//!   counters the experiments consume.
//!
//! All three live in a [`Profile`], a pure fold over events: profiling a
//! run live (via [`Profiler`]) and replaying its trace (via
//! [`TraceReader`]) produce *equal* profiles, and the renderers in
//! [`report`] turn equal profiles into byte-identical reports. The
//! `trace_analyze` binary in `trident-bench` is the CLI over this crate.
//!
//! # Examples
//!
//! ```
//! use trident_obs::{Event, SpanKind};
//! use trident_prof::Profile;
//!
//! let events = [
//!     Event::SpanBegin { kind: SpanKind::Compaction },
//!     Event::CompactionMove { bytes: 4096 },
//!     Event::SpanEnd { kind: SpanKind::Compaction, ns: 2500 },
//!     Event::DaemonTick { ns: 2500 },
//! ];
//! let profile = Profile::from_events(1, events.iter());
//! assert_eq!(profile.spans.histogram(SpanKind::Compaction).p50(), Some(2500));
//! assert_eq!(profile.series.windows().len(), 1);
//! assert_eq!(profile.snapshot.compaction_bytes_copied, 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod hist;
mod profile;
pub mod prom;
mod reader;
mod recorder;
pub mod report;
mod series;
mod span;

pub use hist::LatencyHistogram;
pub use profile::Profile;
pub use reader::{TraceReadError, TraceReadErrorKind, TraceReader};
pub use recorder::{JsonlWriter, Profiler};
pub use series::{TimeSeries, Window};
pub use span::{SpanRecorder, SpanStats};
