//! Property tests for the profiling layer's contracts (DESIGN.md §9):
//! histogram merge is a commutative, associative fold that matches the
//! combined stream; quantiles are monotone in `q`; and a [`Profile`] is
//! a pure fold — profiling a run live and replaying its trace produce
//! equal profiles, through the JSONL wire format included.

use proptest::prelude::*;
use trident_obs::{AllocSite, Event, Recorder, SpanKind};
use trident_prof::{LatencyHistogram, Profile, Profiler};
use trident_types::PageSize;

fn sizes() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        Just(PageSize::BASE),
        Just(PageSize::new(1)),
        Just(PageSize::new(2))
    ]
}

fn span_kinds() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Fault),
        Just(SpanKind::PromoScan),
        Just(SpanKind::Compaction),
        Just(SpanKind::PvExchange),
        Just(SpanKind::DaemonTick),
        Just(SpanKind::ZeroFill),
    ]
}

/// Every event the profiler folds, including unpaired span edges and
/// trace gaps — the profile must be a pure fold of whatever arrives.
fn events() -> impl Strategy<Value = Event> {
    prop_oneof![
        (sizes(), 0u64..10_000_000).prop_map(|(size, ns)| Event::Fault {
            size,
            site: AllocSite::PageFault,
            ns
        }),
        (sizes(), 0u64..(1 << 31), 0u64..100_000).prop_map(|(size, bytes_copied, bloat_pages)| {
            Event::Promote {
                size,
                bytes_copied,
                bloat_pages,
            }
        }),
        (0u64..10_000, 0u64..(1 << 31)).prop_map(|(pairs, bytes)| Event::PvExchange {
            pairs,
            bytes,
            batched: true,
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(smart, succeeded)| Event::CompactionRun { smart, succeeded }),
        (0u64..(1 << 31)).prop_map(|bytes| Event::CompactionMove { bytes }),
        (0u64..1_000).prop_map(|blocks| Event::ZeroFill { blocks }),
        (0u64..10_000_000).prop_map(|ns| Event::DaemonTick { ns }),
        (sizes(), 0u64..100_000)
            .prop_map(|(size, walk_cycles)| Event::TlbMiss { size, walk_cycles }),
        span_kinds().prop_map(|kind| Event::SpanBegin { kind }),
        (span_kinds(), 0u64..10_000_000).prop_map(|(kind, ns)| Event::SpanEnd { kind, ns }),
        (1u64..1_000).prop_map(|dropped| Event::TraceGap { dropped }),
        (0u64..=1_000, 0u64..1_000_000, 0u64..10_000).prop_map(
            |(fmfi_milli, free_huge, free_giant)| Event::Gauge {
                fmfi_milli,
                free_huge,
                free_giant,
            }
        ),
    ]
}

fn event_seq() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(events(), 0..300)
}

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merging histograms equals recording the concatenated stream, in
    /// either merge order: the fold is commutative.
    #[test]
    fn histogram_merge_is_commutative(a in prop::collection::vec(any::<u64>(), 0..200),
                                      b in prop::collection::vec(any::<u64>(), 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&ab, &hist_of(&combined));
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(a in prop::collection::vec(any::<u64>(), 0..100),
                                      b in prop::collection::vec(any::<u64>(), 0..100),
                                      c in prop::collection::vec(any::<u64>(), 0..100)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Quantiles are monotone in `q` and bounded by the recorded
    /// extremes.
    #[test]
    fn histogram_quantiles_are_monotone(values in prop::collection::vec(any::<u64>(), 1..300)) {
        let h = hist_of(&values);
        let qs = [0.01, 0.25, 0.5, 0.9, 0.99, 1.0];
        let mut prev = h.min().expect("non-empty");
        for q in qs {
            let v = h.quantile(q).expect("non-empty");
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
        prop_assert!(h.quantile(0.0).unwrap() >= h.min().unwrap());
    }

    /// Live profiling and trace replay are the same fold: a [`Profiler`]
    /// fed an arbitrary event sequence equals
    /// [`Profile::from_events`] over that sequence — and over its JSONL
    /// round-trip — for any window width.
    #[test]
    fn profile_replay_equals_live(seq in event_seq(), window in 1u64..5) {
        let mut live = Profiler::new(window, trident_obs::ObsRecorder::default());
        for ev in &seq {
            live.record(*ev);
        }
        let live = live.finish_profile();

        let replayed = Profile::from_events(window, seq.iter());
        prop_assert_eq!(&replayed, &live);

        let parsed: Vec<Event> = seq
            .iter()
            .map(|ev| Event::parse_jsonl(&ev.to_jsonl()).expect("own output must parse"))
            .collect();
        prop_assert_eq!(&Profile::from_events(window, parsed.iter()), &live);
    }

    /// Equal profiles render byte-identical reports in every format.
    #[test]
    fn equal_profiles_render_identical_reports(seq in event_seq()) {
        let a = Profile::from_events(2, seq.iter());
        let b = Profile::from_events(2, seq.iter());
        prop_assert_eq!(trident_prof::report::render_markdown(&a),
                        trident_prof::report::render_markdown(&b));
        prop_assert_eq!(trident_prof::report::render_json(&a),
                        trident_prof::report::render_json(&b));
        prop_assert_eq!(trident_prof::report::render_prometheus(&a),
                        trident_prof::report::render_prometheus(&b));
    }
}
