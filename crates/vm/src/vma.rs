//! Virtual memory areas.

use core::fmt;

use trident_types::{PageGeometry, PageSize, Vpn};

/// The kind of a virtual memory area.
///
/// The distinction matters to the baselines: `libHugetlbfs` can only back
/// heap/file segments with large pages, never the stack — which is why the
/// paper observes THP (and Trident) beating static hugetlbfs on
/// stack-sensitive applications like Redis and GUPS (§4.1, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Anonymous memory (heap, mmap'd arenas).
    Anon,
    /// The process stack.
    Stack,
    /// File-backed memory.
    File,
}

impl fmt::Display for VmaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmaKind::Anon => "anon",
            VmaKind::Stack => "stack",
            VmaKind::File => "file",
        };
        f.write_str(s)
    }
}

/// A contiguous allocated range of virtual pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First page of the area.
    pub start: Vpn,
    /// Length in base pages.
    pub pages: u64,
    /// What the area backs.
    pub kind: VmaKind,
}

impl Vma {
    /// One past the last page of the area.
    #[must_use]
    pub fn end(&self) -> Vpn {
        self.start + self.pages
    }

    /// Whether `vpn` lies inside the area.
    #[must_use]
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start && vpn < self.end()
    }

    /// Whether `other` overlaps this area.
    #[must_use]
    pub fn overlaps(&self, other: &Vma) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Bytes of this area mappable with pages of `size`: the largest
    /// `size`-aligned sub-range, as defined in §4.3 — the range must be at
    /// least as long as the page and start at a page-size boundary.
    #[must_use]
    pub fn mappable_bytes(&self, geo: &PageGeometry, size: PageSize) -> u64 {
        let span = geo.base_pages(size);
        let first = self.start.raw().next_multiple_of(span);
        let last = (self.end().raw() / span) * span;
        if last > first {
            (last - first) * geo.base_bytes()
        } else {
            0
        }
    }

    /// Iterates the start pages of the `size`-aligned chunks fully inside
    /// the area.
    pub fn aligned_chunks(
        &self,
        geo: &PageGeometry,
        size: PageSize,
    ) -> impl Iterator<Item = Vpn> + use<> {
        let span = geo.base_pages(size);
        let first = self.start.raw().next_multiple_of(span);
        let last = (self.end().raw() / span) * span;
        (first..last).step_by(span as usize).map(Vpn::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, pages: u64) -> Vma {
        Vma {
            start: Vpn::new(start),
            pages,
            kind: VmaKind::Anon,
        }
    }

    #[test]
    fn contains_and_overlaps() {
        let a = vma(10, 10);
        assert!(a.contains(Vpn::new(10)));
        assert!(a.contains(Vpn::new(19)));
        assert!(!a.contains(Vpn::new(20)));
        assert!(a.overlaps(&vma(19, 5)));
        assert!(!a.overlaps(&vma(20, 5)));
    }

    #[test]
    fn mappable_bytes_requires_alignment_and_length() {
        let geo = PageGeometry::TINY; // huge = 8 pages, giant = 64 pages
                                      // Unaligned 70-page vma starting at page 3: huge-aligned sub-range
                                      // is [8, 72) = 64 pages; giant-aligned is [64, 72) -> too short.
        let v = vma(3, 70);
        assert_eq!(v.mappable_bytes(&geo, PageSize::new(1)), 64 * 4096);
        assert_eq!(v.mappable_bytes(&geo, PageSize::new(2)), 0);
        // A giant-aligned, giant-long vma is giant mappable.
        let w = vma(64, 64);
        assert_eq!(w.mappable_bytes(&geo, PageSize::new(2)), 64 * 4096);
    }

    #[test]
    fn every_giant_mappable_range_is_huge_mappable() {
        let geo = PageGeometry::TINY;
        for (start, pages) in [(0, 64), (64, 128), (5, 200), (8, 63)] {
            let v = vma(start, pages);
            assert!(
                v.mappable_bytes(&geo, PageSize::new(1))
                    >= v.mappable_bytes(&geo, PageSize::new(2))
            );
        }
    }

    #[test]
    fn aligned_chunks_enumerates_heads() {
        let geo = PageGeometry::TINY;
        let v = vma(4, 28); // pages 4..32; huge chunks at 8, 16, 24
        let chunks: Vec<u64> = v
            .aligned_chunks(&geo, PageSize::new(1))
            .map(|v| v.raw())
            .collect();
        assert_eq!(chunks, vec![8, 16, 24]);
        assert_eq!(v.aligned_chunks(&geo, PageSize::new(2)).count(), 0);
    }
}
