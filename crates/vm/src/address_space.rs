//! Per-process address spaces: VMAs plus a page table.

use std::cell::Cell;

use trident_types::{AsId, PageGeometry, PageSize, Vpn, MAX_RUNGS};

use crate::{MapError, MappingRecord, PageTable, Vma, VmaKind};

/// A simulated process address space.
///
/// Tracks the allocated virtual ranges (VMAs) and owns the process page
/// table. Virtual allocation follows a bump cursor like `mmap` under
/// `MAP_32BIT`-free Linux: requests are placed at the cursor, optionally
/// aligned and with a gap, and adjacent same-kind areas merge — which is
/// what determines how much of the space stays 1GB-mappable as workloads
/// allocate incrementally (§4.3).
///
/// # Examples
///
/// ```
/// use trident_types::{AsId, PageGeometry, PageSize};
/// use trident_vm::{AddressSpace, VmaKind};
///
/// let geo = PageGeometry::TINY;
/// let mut space = AddressSpace::new(AsId::new(1), geo);
/// let a = space.mmap(64, VmaKind::Anon, PageSize::new(2), 0)?;
/// let b = space.mmap(64, VmaKind::Anon, PageSize::new(2), 0)?;
/// assert_eq!(b - a, 64);
/// assert_eq!(space.vmas().count(), 1); // merged
/// # Ok::<(), trident_vm::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    id: AsId,
    geo: PageGeometry,
    /// VMAs sorted by start page. A flat sorted vector: containment
    /// lookups binary-search contiguous memory instead of chasing tree
    /// nodes, and the fault path's sequential locality is captured by
    /// `last_vma` below.
    vmas: Vec<Vma>,
    /// Index of the VMA the last containment lookup hit. Purely an
    /// accelerator: a stale index is re-validated before use, so mutation
    /// never has to reset it.
    last_vma: Cell<usize>,
    page_table: PageTable,
    cursor: u64,
    /// Bytes mappable at each ladder rung (indexed by [`PageSize::rung`]),
    /// maintained incrementally as VMAs come and go. Each VMA's
    /// contribution is O(1) to compute, so keeping the running sums makes
    /// [`AddressSpace::mappable_bytes`] O(1) instead of a full-space scan —
    /// the Figure 3 timeline samples this after every allocation step.
    mappable: [u64; MAX_RUNGS],
}

impl AddressSpace {
    /// Creates an empty address space.
    #[must_use]
    pub fn new(id: AsId, geo: PageGeometry) -> AddressSpace {
        AddressSpace {
            id,
            geo,
            vmas: Vec::new(),
            last_vma: Cell::new(0),
            page_table: PageTable::new(geo),
            cursor: 0,
            mappable: [0; MAX_RUNGS],
        }
    }

    /// Bytes of this space mappable with pages of `size` — an O(1) read of
    /// the incrementally maintained counters.
    #[must_use]
    pub fn mappable_bytes(&self, size: PageSize) -> u64 {
        self.mappable[size.rung()]
    }

    /// The address-space identifier.
    #[must_use]
    pub fn id(&self) -> AsId {
        self.id
    }

    /// The geometry.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    /// The page table.
    #[must_use]
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable access to the page table (fault handlers and promoters).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Allocates `pages` virtual pages at the bump cursor, aligned to
    /// `align` and preceded by `gap` unallocated pages. Adjacent same-kind
    /// areas merge (as Linux merges VMAs), so fully contiguous allocation
    /// yields a single large — and therefore highly giant-mappable — VMA,
    /// while gaps fragment the space.
    ///
    /// Returns the first page of the new range.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NoVirtualSpace`] if the request is empty.
    pub fn mmap(
        &mut self,
        pages: u64,
        kind: VmaKind,
        align: PageSize,
        gap: u64,
    ) -> Result<Vpn, MapError> {
        if pages == 0 {
            return Err(MapError::NoVirtualSpace { bytes: 0 });
        }
        let span = self.geo.base_pages(align);
        let start = (self.cursor + gap).next_multiple_of(span);
        self.insert_vma(Vma {
            start: Vpn::new(start),
            pages,
            kind,
        });
        self.cursor = start + pages;
        Ok(Vpn::new(start))
    }

    /// Allocates `pages` at an explicit position.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Overlap`] if the range intersects an existing
    /// VMA.
    pub fn mmap_at(&mut self, start: Vpn, pages: u64, kind: VmaKind) -> Result<Vpn, MapError> {
        let new = Vma { start, pages, kind };
        if self.vmas_overlapping(&new).next().is_some() {
            return Err(MapError::Overlap { vpn: start });
        }
        self.insert_vma(new);
        self.cursor = self.cursor.max(start.raw() + pages);
        Ok(start)
    }

    fn vmas_overlapping<'a>(&'a self, new: &'a Vma) -> impl Iterator<Item = &'a Vma> + 'a {
        self.vmas
            .iter()
            .filter(move |existing| existing.overlaps(new))
    }

    /// Index of the first VMA starting at or after `start`.
    fn position_of(&self, start: u64) -> usize {
        self.vmas.partition_point(|v| v.start.raw() < start)
    }

    /// Adds `vma` to the set, maintaining the mappability counters and
    /// marking its span dirty for the promotion daemon (a VMA change can
    /// alter chunk candidacy without touching a PTE).
    fn attach(&mut self, vma: Vma) {
        for size in self.geo.rungs() {
            self.mappable[size.rung()] += vma.mappable_bytes(&self.geo, size);
        }
        self.page_table.mark_span_dirty(vma.start, vma.pages);
        let pos = self.position_of(vma.start.raw());
        self.vmas.insert(pos, vma);
    }

    /// Removes the VMA starting at `start`, maintaining the counters.
    fn detach(&mut self, start: u64) -> Option<Vma> {
        let pos = self.position_of(start);
        if self.vmas.get(pos).is_none_or(|v| v.start.raw() != start) {
            return None;
        }
        let vma = self.vmas.remove(pos);
        for size in self.geo.rungs() {
            self.mappable[size.rung()] -= vma.mappable_bytes(&self.geo, size);
        }
        self.page_table.mark_span_dirty(vma.start, vma.pages);
        Some(vma)
    }

    fn insert_vma(&mut self, mut new: Vma) {
        // Merge with an adjacent predecessor of the same kind.
        let pos = self.position_of(new.start.raw());
        if pos > 0 {
            let prev = self.vmas[pos - 1];
            if prev.kind == new.kind && prev.end() == new.start {
                new = Vma {
                    start: prev.start,
                    pages: prev.pages + new.pages,
                    kind: new.kind,
                };
                self.detach(prev.start.raw());
            }
        }
        // Merge with an adjacent successor of the same kind.
        let pos = self.position_of(new.start.raw());
        if let Some(&next) = self.vmas.get(pos) {
            if next.kind == new.kind && new.end() == next.start {
                new.pages += next.pages;
                self.detach(next.start.raw());
            }
        }
        self.attach(new);
    }

    /// Releases `[start, start + pages)`, unmapping any leaves headed
    /// inside and splitting VMAs as needed. Returns the removed mappings so
    /// the caller can free the backing frames.
    ///
    /// # Panics
    ///
    /// Panics if a leaf mapping straddles the range boundary — release
    /// ranges must be aligned to the largest page size mapped within.
    pub fn munmap(&mut self, start: Vpn, pages: u64) -> Vec<MappingRecord> {
        let removed = self.page_table.mappings_in(start, pages);
        let removed_pages: u64 = removed.iter().map(|m| self.geo.base_pages(m.size)).sum();
        let profile_mapped: u64 = {
            // Count all mapped base pages in the span, including straddlers.
            let mut mapped = 0;
            let mut vpn = start.raw();
            while vpn < start.raw() + pages {
                if let Some(t) = self.page_table.translate(Vpn::new(vpn)) {
                    let leaf_end = t.head_vpn.raw() + self.geo.base_pages(t.size);
                    let here = leaf_end.min(start.raw() + pages) - vpn;
                    mapped += here;
                    vpn += here;
                } else {
                    vpn += 1;
                }
            }
            mapped
        };
        assert_eq!(
            removed_pages, profile_mapped,
            "munmap range splits a large-page mapping"
        );
        for m in &removed {
            self.page_table.unmap(m.vpn).expect("enumerated mapping");
        }
        self.remove_vma_range(start, pages);
        removed
    }

    fn remove_vma_range(&mut self, start: Vpn, pages: u64) {
        let end = start + pages;
        let affected: Vec<Vma> = self
            .vmas
            .iter()
            .filter(|v| v.start < end && start < v.end())
            .copied()
            .collect();
        for vma in affected {
            self.detach(vma.start.raw());
            if vma.start < start {
                self.attach(Vma {
                    start: vma.start,
                    pages: start - vma.start,
                    kind: vma.kind,
                });
            }
            if vma.end() > end {
                self.attach(Vma {
                    start: end,
                    pages: vma.end() - end,
                    kind: vma.kind,
                });
            }
        }
    }

    /// Iterates the VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.iter()
    }

    /// The VMA containing `vpn`, if any.
    ///
    /// Fault streams touch pages in runs within one area, so the last hit
    /// is checked before falling back to binary search.
    #[must_use]
    pub fn vma_containing(&self, vpn: Vpn) -> Option<&Vma> {
        if let Some(v) = self.vmas.get(self.last_vma.get()) {
            if v.contains(vpn) {
                return Some(v);
            }
        }
        let pos = self.position_of(vpn.raw() + 1);
        let v = self.vmas.get(pos.checked_sub(1)?)?;
        if v.contains(vpn) {
            self.last_vma.set(pos - 1);
            Some(v)
        } else {
            None
        }
    }

    /// Total allocated virtual pages.
    #[must_use]
    pub fn total_vma_pages(&self) -> u64 {
        self.vmas.iter().map(|v| v.pages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::Pfn;

    fn space() -> AddressSpace {
        AddressSpace::new(AsId::new(1), PageGeometry::TINY)
    }

    #[test]
    fn contiguous_mmaps_merge() {
        let mut s = space();
        s.mmap(10, VmaKind::Anon, PageSize::BASE, 0).unwrap();
        s.mmap(10, VmaKind::Anon, PageSize::BASE, 0).unwrap();
        assert_eq!(s.vmas().count(), 1);
        assert_eq!(s.total_vma_pages(), 20);
    }

    #[test]
    fn gaps_and_kind_changes_prevent_merging() {
        let mut s = space();
        s.mmap(10, VmaKind::Anon, PageSize::BASE, 0).unwrap();
        s.mmap(10, VmaKind::Anon, PageSize::BASE, 2).unwrap();
        s.mmap(10, VmaKind::Stack, PageSize::BASE, 0).unwrap();
        assert_eq!(s.vmas().count(), 3);
    }

    #[test]
    fn mmap_at_rejects_overlap() {
        let mut s = space();
        s.mmap_at(Vpn::new(100), 50, VmaKind::Anon).unwrap();
        assert!(s.mmap_at(Vpn::new(120), 10, VmaKind::Anon).is_err());
        assert!(s.mmap_at(Vpn::new(150), 10, VmaKind::Anon).is_ok());
        // Backward merge happened for the adjacent same-kind area.
        assert_eq!(s.vmas().count(), 1);
    }

    #[test]
    fn vma_containing_finds_the_right_area() {
        let mut s = space();
        let a = s.mmap(10, VmaKind::Anon, PageSize::BASE, 0).unwrap();
        let b = s.mmap(10, VmaKind::Stack, PageSize::BASE, 5).unwrap();
        assert_eq!(s.vma_containing(a + 9).unwrap().kind, VmaKind::Anon);
        assert_eq!(s.vma_containing(b).unwrap().kind, VmaKind::Stack);
        assert!(s.vma_containing(a + 12).is_none());
    }

    #[test]
    fn munmap_middle_splits_vma_and_returns_mappings() {
        let mut s = space();
        let start = s.mmap(64, VmaKind::Anon, PageSize::new(2), 0).unwrap();
        for i in 0..64 {
            s.page_table_mut()
                .map(start + i, Pfn::new(i), PageSize::BASE)
                .unwrap();
        }
        let removed = s.munmap(start + 16, 16);
        assert_eq!(removed.len(), 16);
        assert_eq!(s.vmas().count(), 2);
        assert_eq!(s.total_vma_pages(), 48);
        assert!(s.page_table().translate(start + 20).is_none());
        assert!(s.page_table().translate(start + 40).is_some());
    }

    #[test]
    #[should_panic(expected = "splits a large-page mapping")]
    fn munmap_through_a_huge_leaf_panics() {
        let mut s = space();
        let start = s.mmap(64, VmaKind::Anon, PageSize::new(2), 0).unwrap();
        s.page_table_mut()
            .map(start, Pfn::new(8), PageSize::new(1))
            .unwrap();
        let _ = s.munmap(start + 4, 8);
    }

    #[test]
    fn alignment_request_is_honored() {
        let mut s = space();
        s.mmap(3, VmaKind::Anon, PageSize::BASE, 0).unwrap();
        let aligned = s.mmap(64, VmaKind::Anon, PageSize::new(2), 0).unwrap();
        assert_eq!(aligned.raw() % 64, 0);
    }
}
