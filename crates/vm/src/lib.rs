//! Virtual memory model for the Trident simulator.
//!
//! This crate models the guest-visible half of the paper's system: virtual
//! memory areas ([`Vma`]), multi-level page tables with leaves at every
//! rung of the geometry's page-size ladder ([`PageTable`]) — including
//! multi-entry *group* leaves for RISC-V SVNAPOT and ARM contiguous-bit
//! rungs — and the analyses the paper performs on them: which parts of an
//! address space are large-page-*mappable* (Figure 3) and where TLB misses
//! concentrate, measured through PTE accessed bits (Figure 4).
//!
//! # Examples
//!
//! ```
//! use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
//! use trident_vm::PageTable;
//!
//! let geo = PageGeometry::TINY;
//! let mut pt = PageTable::new(geo);
//! pt.map(Vpn::new(0), Pfn::new(64), geo.largest())?;
//! let t = pt.translate(Vpn::new(5)).expect("mapped by the giant leaf");
//! assert_eq!(t.size, geo.largest());
//! assert_eq!(t.pfn, Pfn::new(64 + 5));
//! # Ok::<(), trident_vm::MapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod access_bits;
mod address_space;
mod error;
mod mappable;
mod page_table;
mod pte;
mod vma;

pub use access_bits::{chunk_of, AccessBitSampler};
pub use address_space::AddressSpace;
pub use error::MapError;
pub use mappable::{mappable_bytes, mappable_bytes_scan, mappable_ranges, promotion_candidates};
pub use page_table::{ChunkProfile, MappingRecord, PageTable, Translation};
pub use pte::RawPte;
pub use vma::{Vma, VmaKind};
