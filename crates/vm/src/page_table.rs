//! Multi-level page tables with leaves at all three page sizes.
//!
//! The structure mirrors the x86-64 radix tree: a top level whose entries
//! either map an entire giant (1GB) page — a PUD leaf — or point to a
//! mid-level table whose entries either map a huge (2MB) page — a PMD leaf
//! — or point to a leaf table of base (4KB) PTEs. All entry words are
//! packed [`RawPte`]s, with hardware-set accessed/dirty bits.
//!
//! # Packed layout
//!
//! The levels are stored the way a kernel would lay them out in physical
//! memory, not as a pointer-chasing tree of heap enums:
//!
//! * The PUD level is a dense directory (`Vec<RawPte>`) indexed directly by
//!   giant-chunk index. A non-leaf entry carries a software `TABLE` tag in
//!   an x86 available bit and stores the mid-level table's arena index in
//!   its frame field, so a walk is two array indexings instead of a
//!   `BTreeMap` descent.
//! * PMD and PTE tables live in per-level arenas (`Vec<Box<[RawPte]>>`)
//!   with free lists. Tearing down a table returns its slot (and its entry
//!   storage) to the arena, so steady-state map/unmap churn allocates
//!   nothing.
//! * Each table's occupancy count is packed into the entries themselves:
//!   one bit per entry in the x86 software-available bit (bit 9) of the
//!   table's first few entries — the `set_count`/`read_count` idiom. The
//!   promotion scanner reads a table's population without sweeping it.
//! * Per-giant-chunk base/huge occupancy totals are kept in a side array,
//!   making a giant [`PageTable::chunk_profile`] O(1) — it was a full
//!   mid-level sweep per fault in the promotion-eligibility hot path.
//! * The dirty-chunk feed is a packed bitmap ([`DenseBitSet`]) drained in
//!   place, not a `BTreeSet` that is rebuilt every promotion tick.

use std::cell::Cell;

use trident_types::{DenseBitSet, PageGeometry, PageSize, Pfn, Vpn};

use crate::{MapError, RawPte};

/// The result of walking the page table for one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The frame that backs the *queried* base page.
    pub pfn: Pfn,
    /// The size of the leaf that produced the translation.
    pub size: PageSize,
    /// First virtual page of the leaf mapping.
    pub head_vpn: Vpn,
    /// First frame of the leaf mapping.
    pub head_pfn: Pfn,
}

/// A leaf mapping as enumerated by scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRecord {
    /// First virtual page of the mapping.
    pub vpn: Vpn,
    /// First frame of the mapping.
    pub pfn: Pfn,
    /// Leaf size.
    pub size: PageSize,
    /// Accessed bit at scan time.
    pub accessed: bool,
    /// Dirty bit at scan time.
    pub dirty: bool,
}

/// Summary of how an aligned virtual chunk is currently mapped, used by the
/// promotion scanner (Figure 5) to decide whether a chunk is worth
/// promoting. All counts are in base pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkProfile {
    /// Base pages mapped by 4KB leaves.
    pub base_mapped: u64,
    /// Base pages mapped by 2MB leaves.
    pub huge_mapped: u64,
    /// Base pages mapped by 1GB leaves.
    pub giant_mapped: u64,
    /// Base pages with no mapping.
    pub unmapped: u64,
}

impl ChunkProfile {
    /// Total base pages mapped by any leaf size.
    #[must_use]
    pub fn mapped(&self) -> u64 {
        self.base_mapped + self.huge_mapped + self.giant_mapped
    }
}

/// Per-giant-chunk base-page totals, maintained on map/unmap so the
/// promotion scanner's giant-chunk profile never sweeps the mid level.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkCounts {
    /// Base pages mapped by 4KB leaves in this chunk.
    base: u32,
    /// Base pages mapped by 2MB leaves in this chunk.
    huge: u32,
}

/// An arena of equal-length entry tables packed into one contiguous
/// store, addressed by table index. Growing appends one table's worth of
/// zeroed entries to the store (amortized — no per-table heap
/// allocation), and freed tables are zeroed eagerly and recycled through
/// the free list, so steady-state churn allocates nothing.
#[derive(Debug, Clone, Default)]
struct TableArena {
    store: Vec<RawPte>,
    /// Entries per table; every table in one arena has the same length.
    len: usize,
    free: Vec<u32>,
}

impl TableArena {
    fn alloc(&mut self, len: usize) -> u32 {
        if let Some(idx) = self.free.pop() {
            return idx;
        }
        debug_assert!(self.store.is_empty() || self.len == len);
        self.len = len;
        let idx = self.store.len() / len;
        self.store
            .resize(self.store.len() + len, RawPte::NOT_PRESENT);
        u32::try_from(idx).expect("table arena index fits u32")
    }

    fn free(&mut self, idx: u32) {
        self.get_mut(idx).fill(RawPte::NOT_PRESENT);
        self.free.push(idx);
    }

    #[cfg(test)]
    fn num_tables(&self) -> usize {
        self.store.len().checked_div(self.len).unwrap_or(0)
    }

    fn get(&self, idx: u32) -> &[RawPte] {
        let base = idx as usize * self.len;
        &self.store[base..base + self.len]
    }

    fn get_mut(&mut self, idx: u32) -> &mut [RawPte] {
        let base = idx as usize * self.len;
        &mut self.store[base..base + self.len]
    }
}

/// A per-address-space page table.
///
/// # Examples
///
/// ```
/// use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
/// use trident_vm::PageTable;
///
/// let geo = PageGeometry::TINY;
/// let mut pt = PageTable::new(geo);
/// pt.map(Vpn::new(8), Pfn::new(16), PageSize::Huge)?;
/// assert_eq!(pt.mapped_pages(PageSize::Huge), 1);
/// let old = pt.remap(Vpn::new(8), Pfn::new(32))?;
/// assert_eq!(old, Pfn::new(16));
/// # Ok::<(), trident_vm::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    geo: PageGeometry,
    /// Dense PUD directory indexed by giant-chunk index. `NOT_PRESENT`
    /// means nothing mapped in the chunk; a leaf entry maps the whole
    /// chunk; a `TABLE`-tagged entry holds a `pmds` arena index.
    puds: Vec<RawPte>,
    /// Parallel to `puds`: per-chunk base/huge occupancy totals.
    chunk_counts: Vec<ChunkCounts>,
    /// Mid-level (PMD) table arena.
    pmds: TableArena,
    /// Leaf-level (PTE) table arena.
    ptes: TableArena,
    /// Number of leaves of each size (index by `PageSize as usize`).
    leaves: [u64; 3],
    /// Giant-chunk indices whose mappings (or covering VMAs) changed since
    /// the last [`PageTable::take_dirty_chunks`] drain — the promotion
    /// daemon's incremental work list.
    dirty_chunks: DenseBitSet,
    /// Bumped on every mutation that could stale [`PageTable::last_walk`]:
    /// unmap, remap, and accessed-bit clearing. (`map` never alters an
    /// existing leaf — it errors on overlap — so it leaves the stamp
    /// alone.)
    walk_stamp: u64,
    /// Software walker cache: the last leaf a walk resolved, so the hot
    /// sampling loop skips the radix descent for repeated hits. Interior
    /// mutability keeps `translate` a `&self` walk.
    last_walk: Cell<Option<WalkerHit>>,
}

/// The walker-cache entry: one leaf plus the flag state already written to
/// it, validated against [`PageTable::walk_stamp`].
#[derive(Debug, Clone, Copy)]
struct WalkerHit {
    head_vpn: Vpn,
    head_pfn: Pfn,
    pages: u64,
    size: PageSize,
    stamp: u64,
    accessed: bool,
    dirty: bool,
}

impl WalkerHit {
    fn covers(&self, vpn: Vpn, stamp: u64) -> bool {
        self.stamp == stamp && vpn >= self.head_vpn && vpn.raw() - self.head_vpn.raw() < self.pages
    }

    fn translation(&self, vpn: Vpn) -> Translation {
        Translation {
            pfn: self.head_pfn + (vpn - self.head_vpn),
            size: self.size,
            head_vpn: self.head_vpn,
            head_pfn: self.head_pfn,
        }
    }
}

/// How many leading entries of a `len`-entry table carry occupancy-count
/// bits: enough bits for counts `0..=len`, never more than the table has.
fn count_bits(len: usize) -> usize {
    (len.trailing_zeros() as usize + 1).min(len)
}

/// Reads a table's occupancy count out of the available bits of its first
/// few entries (twizzler-style `read_count`).
fn read_count(entries: &[RawPte]) -> u32 {
    let mut count = 0u32;
    for (bit, entry) in entries.iter().take(count_bits(entries.len())).enumerate() {
        count |= u32::from(entry.avail_bit()) << bit;
    }
    count
}

/// Writes a table's occupancy count into the available bits of its first
/// few entries (twizzler-style `set_count`). Must run after any structural
/// entry overwrite, which may have clobbered a count bit.
fn write_count(entries: &mut [RawPte], count: u32) {
    let bits = count_bits(entries.len());
    for (bit, entry) in entries.iter_mut().take(bits).enumerate() {
        entry.set_avail_bit(count & (1 << bit) != 0);
    }
}

impl PageTable {
    /// Creates an empty page table for the given geometry.
    #[must_use]
    pub fn new(geo: PageGeometry) -> PageTable {
        PageTable {
            geo,
            puds: Vec::new(),
            chunk_counts: Vec::new(),
            pmds: TableArena::default(),
            ptes: TableArena::default(),
            leaves: [0; 3],
            dirty_chunks: DenseBitSet::new(),
            walk_stamp: 0,
            last_walk: Cell::new(None),
        }
    }

    /// The geometry this table was created with.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    fn pmd_len(&self) -> usize {
        1 << (self.geo.order(PageSize::Giant) - self.geo.order(PageSize::Huge))
    }

    fn pte_len(&self) -> usize {
        1 << self.geo.order(PageSize::Huge)
    }

    fn giant_index(&self, vpn: Vpn) -> u64 {
        vpn.raw() >> self.geo.order(PageSize::Giant)
    }

    fn pmd_index(&self, vpn: Vpn) -> usize {
        ((vpn.raw() >> self.geo.order(PageSize::Huge)) & (self.pmd_len() as u64 - 1)) as usize
    }

    fn pte_index(&self, vpn: Vpn) -> usize {
        (vpn.raw() & (self.pte_len() as u64 - 1)) as usize
    }

    /// Grows the dense PUD directory to cover `gi`, returning it as an
    /// index.
    fn ensure_gi(&mut self, gi: u64) -> usize {
        let gi = usize::try_from(gi).expect("giant index fits usize");
        if gi >= self.puds.len() {
            self.puds.resize(gi + 1, RawPte::NOT_PRESENT);
            self.chunk_counts.resize(gi + 1, ChunkCounts::default());
        }
        gi
    }

    /// Marks every giant chunk overlapping `[start, start + pages)` dirty —
    /// called on mapping changes here and by the address space when a VMA
    /// appears, grows, or shrinks (which changes chunk mappability without
    /// touching any PTE).
    pub fn mark_span_dirty(&mut self, start: Vpn, pages: u64) {
        if pages == 0 {
            return;
        }
        let first = self.giant_index(start);
        let last = self.giant_index(start + (pages - 1));
        for gi in first..=last {
            self.dirty_chunks.insert(gi);
        }
    }

    /// Drains the set of giant-chunk indices touched since the last drain,
    /// in address order. The promotion daemon uses this to re-examine only
    /// chunks whose candidacy could have changed.
    ///
    /// Allocates a fresh `Vec` per call; steady-state callers should prefer
    /// [`PageTable::drain_dirty_chunks_into`].
    pub fn take_dirty_chunks(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        self.dirty_chunks.drain_into(&mut out);
        out
    }

    /// Drains the dirty-chunk set into `out` (cleared first) in address
    /// order, keeping both the bitmap's and the buffer's storage — the
    /// zero-alloc form of [`PageTable::take_dirty_chunks`].
    pub fn drain_dirty_chunks_into(&mut self, out: &mut Vec<u64>) {
        self.dirty_chunks.drain_into(out);
    }

    fn invalidate_walks(&mut self) {
        self.walk_stamp = self.walk_stamp.wrapping_add(1);
    }

    /// Number of leaves of the given size currently installed.
    #[must_use]
    pub fn mapped_pages(&self, size: PageSize) -> u64 {
        self.leaves[size as usize]
    }

    /// Total mapped memory in base pages.
    #[must_use]
    pub fn mapped_base_pages(&self) -> u64 {
        PageSize::ALL
            .into_iter()
            .map(|s| self.leaves[s as usize] * self.geo.base_pages(s))
            .sum()
    }

    /// Total mapped memory in bytes attributable to leaves of `size`.
    #[must_use]
    pub fn mapped_bytes(&self, size: PageSize) -> u64 {
        self.leaves[size as usize] * self.geo.bytes(size)
    }

    /// Installs a leaf of `size` mapping `vpn.. → pfn..`.
    ///
    /// # Errors
    ///
    /// * [`MapError::Unaligned`] — `vpn` or `pfn` is not `size`-aligned.
    /// * [`MapError::Overlap`] — any base page of the span is already
    ///   mapped.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize) -> Result<(), MapError> {
        if !self.geo.is_page_aligned(vpn.raw(), size) || !self.geo.is_page_aligned(pfn.raw(), size)
        {
            return Err(MapError::Unaligned { vpn, size });
        }
        let gi = self.giant_index(vpn);
        let gix = self.ensure_gi(gi);
        match size {
            PageSize::Giant => {
                let slot = self.puds[gix];
                if slot.is_present() {
                    if !slot.is_table() || read_count(self.pmds.get(slot.table_index())) > 0 {
                        return Err(MapError::Overlap { vpn });
                    }
                    // An empty mid-level table can be replaced outright.
                    self.pmds.free(slot.table_index());
                }
                self.puds[gix] = RawPte::new_leaf(pfn);
            }
            PageSize::Huge => {
                let pi = self.pmd_index(vpn);
                let pmd_idx = self.pud_table_index(gix, vpn)?;
                let entry = self.pmds.get(pmd_idx)[pi];
                if entry.is_present() {
                    if !entry.is_table() || read_count(self.ptes.get(entry.table_index())) > 0 {
                        return Err(MapError::Overlap { vpn });
                    }
                    // Replace an empty leaf table; the PMD slot stays
                    // occupied, so its count is unchanged.
                    self.ptes.free(entry.table_index());
                    let table = self.pmds.get_mut(pmd_idx);
                    let live = read_count(table);
                    table[pi] = RawPte::new_leaf(pfn);
                    write_count(table, live);
                } else {
                    let table = self.pmds.get_mut(pmd_idx);
                    let live = read_count(table);
                    table[pi] = RawPte::new_leaf(pfn);
                    write_count(table, live + 1);
                }
                self.chunk_counts[gix].huge += self.pte_len() as u32;
            }
            PageSize::Base => {
                let pi = self.pmd_index(vpn);
                let ti = self.pte_index(vpn);
                let pmd_idx = self.pud_table_index(gix, vpn)?;
                let entry = self.pmds.get(pmd_idx)[pi];
                let pte_idx = if entry.is_present() {
                    if !entry.is_table() {
                        return Err(MapError::Overlap { vpn });
                    }
                    entry.table_index()
                } else {
                    let pte_len = self.pte_len();
                    let idx = self.ptes.alloc(pte_len);
                    let table = self.pmds.get_mut(pmd_idx);
                    let live = read_count(table);
                    table[pi] = RawPte::table_ptr(idx);
                    write_count(table, live + 1);
                    idx
                };
                let table = self.ptes.get_mut(pte_idx);
                if table[ti].is_present() {
                    return Err(MapError::Overlap { vpn });
                }
                let live = read_count(table);
                table[ti] = RawPte::new_leaf(pfn);
                write_count(table, live + 1);
                self.chunk_counts[gix].base += 1;
            }
        }
        self.leaves[size as usize] += 1;
        self.dirty_chunks.insert(gi);
        Ok(())
    }

    /// Resolves (materializing if absent) the mid-level table for PUD slot
    /// `gix`, erroring when the slot holds a giant leaf.
    fn pud_table_index(&mut self, gix: usize, vpn: Vpn) -> Result<u32, MapError> {
        let slot = self.puds[gix];
        if !slot.is_present() {
            let pmd_len = self.pmd_len();
            let idx = self.pmds.alloc(pmd_len);
            self.puds[gix] = RawPte::table_ptr(idx);
            return Ok(idx);
        }
        if slot.is_table() {
            Ok(slot.table_index())
        } else {
            Err(MapError::Overlap { vpn })
        }
    }

    /// Walks the table for `vpn` without touching accessed/dirty bits.
    #[must_use]
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        if let Some(hit) = self.last_walk.get() {
            if hit.covers(vpn, self.walk_stamp) {
                return Some(hit.translation(vpn));
            }
        }
        let t = self.translate_slow(vpn)?;
        let pte = self.leaf_ref(t.head_vpn).expect("translation implies leaf");
        self.last_walk.set(Some(WalkerHit {
            head_vpn: t.head_vpn,
            head_pfn: t.head_pfn,
            pages: self.geo.base_pages(t.size),
            size: t.size,
            stamp: self.walk_stamp,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        }));
        Some(t)
    }

    fn translate_slow(&self, vpn: Vpn) -> Option<Translation> {
        let gi = usize::try_from(self.giant_index(vpn)).expect("giant index fits usize");
        let slot = *self.puds.get(gi)?;
        if !slot.is_present() {
            return None;
        }
        if !slot.is_table() {
            let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), PageSize::Giant));
            return Some(self.leaf_translation(vpn, head_vpn, slot, PageSize::Giant));
        }
        let entry = self.pmds.get(slot.table_index())[self.pmd_index(vpn)];
        if !entry.is_present() {
            return None;
        }
        if !entry.is_table() {
            let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), PageSize::Huge));
            return Some(self.leaf_translation(vpn, head_vpn, entry, PageSize::Huge));
        }
        let pte = self.ptes.get(entry.table_index())[self.pte_index(vpn)];
        pte.is_present()
            .then(|| self.leaf_translation(vpn, vpn, pte, PageSize::Base))
    }

    fn leaf_translation(
        &self,
        vpn: Vpn,
        head_vpn: Vpn,
        pte: RawPte,
        size: PageSize,
    ) -> Translation {
        let offset = vpn - head_vpn;
        Translation {
            pfn: pte.pfn() + offset,
            size,
            head_vpn,
            head_pfn: pte.pfn(),
        }
    }

    /// Walks the table for `vpn` like the hardware does on a TLB miss,
    /// setting the accessed bit (and the dirty bit for writes).
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        // Walker-cache fast path: when the covering leaf already carries
        // the flags this access would set, no table walk is needed at all.
        if let Some(hit) = self.last_walk.get() {
            if hit.covers(vpn, self.walk_stamp) && hit.accessed && (!write || hit.dirty) {
                return Some(hit.translation(vpn));
            }
        }
        let translation = self.translate(vpn)?;
        let pte = self
            .leaf_mut(translation.head_vpn)
            .expect("translation implies leaf");
        pte.set_accessed();
        if write {
            pte.set_dirty();
        }
        if let Some(mut hit) = self.last_walk.get() {
            if hit.stamp == self.walk_stamp && hit.head_vpn == translation.head_vpn {
                hit.accessed = true;
                hit.dirty |= write;
                self.last_walk.set(Some(hit));
            }
        }
        Some(translation)
    }

    /// Mutable access to the leaf entry headed exactly at `head_vpn`.
    fn leaf_mut(&mut self, head_vpn: Vpn) -> Option<&mut RawPte> {
        let gi = usize::try_from(self.giant_index(head_vpn)).expect("giant index fits usize");
        let pmd_index = self.pmd_index(head_vpn);
        let pte_index = self.pte_index(head_vpn);
        let slot = *self.puds.get(gi)?;
        if !slot.is_present() {
            return None;
        }
        if !slot.is_table() {
            return Some(&mut self.puds[gi]);
        }
        let entry = self.pmds.get(slot.table_index())[pmd_index];
        if !entry.is_present() {
            return None;
        }
        if !entry.is_table() {
            return Some(&mut self.pmds.get_mut(slot.table_index())[pmd_index]);
        }
        let pte = &mut self.ptes.get_mut(entry.table_index())[pte_index];
        pte.is_present().then_some(pte)
    }

    /// Shared access to the leaf entry headed exactly at `head_vpn`.
    fn leaf_ref(&self, head_vpn: Vpn) -> Option<&RawPte> {
        let gi = usize::try_from(self.giant_index(head_vpn)).expect("giant index fits usize");
        let slot = self.puds.get(gi)?;
        if !slot.is_present() {
            return None;
        }
        if !slot.is_table() {
            return Some(slot);
        }
        let entry = &self.pmds.get(slot.table_index())[self.pmd_index(head_vpn)];
        if !entry.is_present() {
            return None;
        }
        if !entry.is_table() {
            return Some(entry);
        }
        let pte = &self.ptes.get(entry.table_index())[self.pte_index(head_vpn)];
        pte.is_present().then_some(pte)
    }

    /// Removes the leaf headed exactly at `head_vpn`, returning its record.
    ///
    /// # Errors
    ///
    /// * [`MapError::NotMapped`] — nothing is mapped at `head_vpn`.
    /// * [`MapError::NotAMappingHead`] — `head_vpn` lies inside a larger
    ///   leaf.
    pub fn unmap(&mut self, head_vpn: Vpn) -> Result<MappingRecord, MapError> {
        let translation = self
            .translate(head_vpn)
            .ok_or(MapError::NotMapped { vpn: head_vpn })?;
        if translation.head_vpn != head_vpn {
            return Err(MapError::NotAMappingHead { vpn: head_vpn });
        }
        let gi = self.giant_index(head_vpn);
        let gix = usize::try_from(gi).expect("giant index fits usize");
        let pmd_index = self.pmd_index(head_vpn);
        let pte_index = self.pte_index(head_vpn);
        let record;
        match translation.size {
            PageSize::Giant => {
                let pte = self.puds[gix];
                debug_assert!(pte.is_present() && !pte.is_table());
                self.puds[gix] = RawPte::NOT_PRESENT;
                record = Self::record(head_vpn, pte, PageSize::Giant);
            }
            PageSize::Huge => {
                let pmd_idx = self.puds[gix].table_index();
                let table = self.pmds.get_mut(pmd_idx);
                let pte = table[pmd_index];
                let live = read_count(table);
                table[pmd_index] = RawPte::NOT_PRESENT;
                if live == 1 {
                    self.pmds.free(pmd_idx);
                    self.puds[gix] = RawPte::NOT_PRESENT;
                } else {
                    write_count(table, live - 1);
                }
                self.chunk_counts[gix].huge -= self.pte_len() as u32;
                record = Self::record(head_vpn, pte, PageSize::Huge);
            }
            PageSize::Base => {
                let pmd_idx = self.puds[gix].table_index();
                let pte_idx = self.pmds.get(pmd_idx)[pmd_index].table_index();
                let table = self.ptes.get_mut(pte_idx);
                let pte = table[pte_index];
                let live = read_count(table);
                table[pte_index] = RawPte::NOT_PRESENT;
                if live == 1 {
                    self.ptes.free(pte_idx);
                    let pmd = self.pmds.get_mut(pmd_idx);
                    let pmd_live = read_count(pmd);
                    pmd[pmd_index] = RawPte::NOT_PRESENT;
                    if pmd_live == 1 {
                        self.pmds.free(pmd_idx);
                        self.puds[gix] = RawPte::NOT_PRESENT;
                    } else {
                        write_count(pmd, pmd_live - 1);
                    }
                } else {
                    write_count(table, live - 1);
                }
                self.chunk_counts[gix].base -= 1;
                record = Self::record(head_vpn, pte, PageSize::Base);
            }
        }
        self.leaves[translation.size as usize] -= 1;
        self.dirty_chunks.insert(gi);
        self.invalidate_walks();
        Ok(record)
    }

    fn record(vpn: Vpn, pte: RawPte, size: PageSize) -> MappingRecord {
        MappingRecord {
            vpn,
            pfn: pte.pfn(),
            size,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        }
    }

    /// Repoints the leaf headed at `head_vpn` to `new_head_pfn`, preserving
    /// flags, and returns the old head frame. Used by migration and by
    /// Trident_pv's copy-less exchange.
    ///
    /// # Errors
    ///
    /// * [`MapError::NotMapped`] / [`MapError::NotAMappingHead`] — as for
    ///   [`PageTable::unmap`].
    /// * [`MapError::Unaligned`] — `new_head_pfn` is not aligned for the
    ///   leaf's size.
    pub fn remap(&mut self, head_vpn: Vpn, new_head_pfn: Pfn) -> Result<Pfn, MapError> {
        let translation = self
            .translate(head_vpn)
            .ok_or(MapError::NotMapped { vpn: head_vpn })?;
        if translation.head_vpn != head_vpn {
            return Err(MapError::NotAMappingHead { vpn: head_vpn });
        }
        if !self
            .geo
            .is_page_aligned(new_head_pfn.raw(), translation.size)
        {
            return Err(MapError::Unaligned {
                vpn: head_vpn,
                size: translation.size,
            });
        }
        let pte = self.leaf_mut(head_vpn).expect("translation implies leaf");
        let old = pte.pfn();
        pte.set_pfn(new_head_pfn);
        self.invalidate_walks();
        Ok(old)
    }

    /// Enumerates all leaves whose head lies in `[start, start + pages)`.
    ///
    /// Leaves that straddle the window boundary (a giant leaf around a
    /// smaller window) are *not* reported; scan windows should be aligned
    /// to the largest page size of interest.
    ///
    /// Allocates a fresh `Vec` per call; steady-state callers should prefer
    /// [`PageTable::mappings_into`].
    #[must_use]
    pub fn mappings_in(&self, start: Vpn, pages: u64) -> Vec<MappingRecord> {
        let mut out = Vec::new();
        self.mappings_into(start, pages, &mut out);
        out
    }

    /// Enumerates all leaves whose head lies in `[start, start + pages)`
    /// into `out` (cleared first), reusing the buffer's storage — the
    /// zero-alloc form of [`PageTable::mappings_in`].
    pub fn mappings_into(&self, start: Vpn, pages: u64, out: &mut Vec<MappingRecord>) {
        out.clear();
        self.for_each_leaf_in(start, pages, |vpn, pte, size| {
            out.push(Self::record(vpn, pte, size));
        });
    }

    /// Visits every leaf headed in `[start, start + pages)` in address
    /// order by walking the packed radix directly — no per-page translate,
    /// no allocation.
    fn for_each_leaf_in(
        &self,
        start: Vpn,
        pages: u64,
        mut visit: impl FnMut(Vpn, RawPte, PageSize),
    ) {
        if pages == 0 {
            return;
        }
        let start = start.raw();
        let end = start + pages;
        let giant_span = self.geo.base_pages(PageSize::Giant);
        let huge_span = self.geo.base_pages(PageSize::Huge);
        let first_gi = start / giant_span;
        let last_gi = (end - 1) / giant_span;
        for gi in first_gi..=last_gi {
            let Some(&slot) = self
                .puds
                .get(usize::try_from(gi).expect("giant index fits usize"))
            else {
                // The dense directory covers every mapped chunk; past its
                // end there is nothing left to visit.
                return;
            };
            if !slot.is_present() {
                continue;
            }
            let chunk_base = gi * giant_span;
            if !slot.is_table() {
                if chunk_base >= start {
                    visit(Vpn::new(chunk_base), slot, PageSize::Giant);
                }
                continue;
            }
            let pmd = self.pmds.get(slot.table_index());
            let chunk_end = chunk_base + giant_span;
            let pi_lo = (start.max(chunk_base) - chunk_base) / huge_span;
            let pi_hi = (end.min(chunk_end) - 1 - chunk_base) / huge_span;
            for pi in pi_lo..=pi_hi {
                let entry = pmd[pi as usize];
                if !entry.is_present() {
                    continue;
                }
                let head = chunk_base + pi * huge_span;
                if !entry.is_table() {
                    if head >= start {
                        visit(Vpn::new(head), entry, PageSize::Huge);
                    }
                    continue;
                }
                let table = self.ptes.get(entry.table_index());
                let ti_lo = start.max(head) - head;
                let ti_hi = end.min(head + huge_span) - head;
                for ti in ti_lo..ti_hi {
                    let pte = table[ti as usize];
                    if pte.is_present() {
                        visit(Vpn::new(head + ti), pte, PageSize::Base);
                    }
                }
            }
        }
    }

    /// Summarizes how the aligned chunk of `size` starting at `start` is
    /// mapped. `start` must be `size`-aligned.
    ///
    /// A giant-chunk profile reads the per-chunk occupancy totals — O(1),
    /// cheap enough for the fault path's promotion-eligibility check — and
    /// a huge-chunk profile reads one packed table count.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not aligned to `size`.
    #[must_use]
    pub fn chunk_profile(&self, start: Vpn, size: PageSize) -> ChunkProfile {
        assert!(
            self.geo.is_page_aligned(start.raw(), size),
            "chunk_profile start must be size-aligned"
        );
        let span = self.geo.base_pages(size);
        let mut profile = ChunkProfile::default();
        let gi = usize::try_from(self.giant_index(start)).expect("giant index fits usize");
        let Some(&slot) = self.puds.get(gi) else {
            profile.unmapped = span;
            return profile;
        };
        if !slot.is_present() {
            profile.unmapped = span;
            return profile;
        }
        if !slot.is_table() {
            profile.giant_mapped = span;
            return profile;
        }
        match size {
            PageSize::Giant => {
                let counts = self.chunk_counts[gi];
                profile.base_mapped = u64::from(counts.base);
                profile.huge_mapped = u64::from(counts.huge);
                profile.unmapped = span - profile.base_mapped - profile.huge_mapped;
            }
            PageSize::Huge => {
                let entry = self.pmds.get(slot.table_index())[self.pmd_index(start)];
                if !entry.is_present() {
                    profile.unmapped = span;
                } else if !entry.is_table() {
                    profile.huge_mapped = span;
                } else {
                    profile.base_mapped = u64::from(read_count(self.ptes.get(entry.table_index())));
                    profile.unmapped = span - profile.base_mapped;
                }
            }
            PageSize::Base => {
                let entry = self.pmds.get(slot.table_index())[self.pmd_index(start)];
                if !entry.is_present() {
                    profile.unmapped = 1;
                } else if !entry.is_table() {
                    profile.huge_mapped = 1;
                } else if self.ptes.get(entry.table_index())[self.pte_index(start)].is_present() {
                    profile.base_mapped = 1;
                } else {
                    profile.unmapped = 1;
                }
            }
        }
        profile
    }

    /// Clears accessed bits on every leaf in the window — the sampling-
    /// interval reset of the paper's Figure 4 methodology. Walks the packed
    /// radix in place; no enumeration buffer.
    pub fn clear_accessed_in(&mut self, start: Vpn, pages: u64) {
        if pages == 0 {
            self.invalidate_walks();
            return;
        }
        let start = start.raw();
        let end = start + pages;
        let giant_span = self.geo.base_pages(PageSize::Giant);
        let huge_span = self.geo.base_pages(PageSize::Huge);
        let first_gi = start / giant_span;
        let last_gi = ((end - 1) / giant_span).min(self.puds.len().saturating_sub(1) as u64);
        for gi in first_gi..=last_gi {
            let gix = usize::try_from(gi).expect("giant index fits usize");
            if gix >= self.puds.len() {
                break;
            }
            let slot = self.puds[gix];
            if !slot.is_present() {
                continue;
            }
            let chunk_base = gi * giant_span;
            if !slot.is_table() {
                if chunk_base >= start {
                    self.puds[gix].clear_accessed();
                }
                continue;
            }
            let pmd_idx = slot.table_index();
            let chunk_end = chunk_base + giant_span;
            let pi_lo = (start.max(chunk_base) - chunk_base) / huge_span;
            let pi_hi = (end.min(chunk_end) - 1 - chunk_base) / huge_span;
            for pi in pi_lo..=pi_hi {
                let entry = self.pmds.get(pmd_idx)[pi as usize];
                if !entry.is_present() {
                    continue;
                }
                let head = chunk_base + pi * huge_span;
                if !entry.is_table() {
                    if head >= start {
                        self.pmds.get_mut(pmd_idx)[pi as usize].clear_accessed();
                    }
                    continue;
                }
                let table = self.ptes.get_mut(entry.table_index());
                let ti_lo = start.max(head) - head;
                let ti_hi = end.min(head + huge_span) - head;
                for pte in &mut table[ti_lo as usize..ti_hi as usize] {
                    if pte.is_present() {
                        pte.clear_accessed();
                    }
                }
            }
        }
        self.invalidate_walks();
    }

    /// Counts leaves in the window whose accessed bit is set.
    #[must_use]
    pub fn accessed_leaves_in(&self, start: Vpn, pages: u64) -> u64 {
        let mut count = 0;
        self.for_each_leaf_in(start, pages, |_, pte, _| {
            count += u64::from(pte.accessed());
        });
        count
    }
}

/// Extension: align a page number down to a page-size boundary.
trait AlignPage {
    fn align_down_page(&self, page: u64, size: PageSize) -> u64;
}

impl AlignPage for PageGeometry {
    fn align_down_page(&self, page: u64, size: PageSize) -> u64 {
        page & !(self.base_pages(size) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(PageGeometry::TINY) // huge = 8 pages, giant = 64
    }

    #[test]
    fn map_translate_all_sizes() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
        t.map(Vpn::new(64), Pfn::new(8), PageSize::Huge).unwrap();
        t.map(Vpn::new(72), Pfn::new(3), PageSize::Base).unwrap();
        assert_eq!(
            t.translate(Vpn::new(10)).unwrap(),
            Translation {
                pfn: Pfn::new(74),
                size: PageSize::Giant,
                head_vpn: Vpn::new(0),
                head_pfn: Pfn::new(64),
            }
        );
        assert_eq!(t.translate(Vpn::new(65)).unwrap().pfn, Pfn::new(9));
        assert_eq!(t.translate(Vpn::new(72)).unwrap().size, PageSize::Base);
        assert_eq!(t.translate(Vpn::new(73)), None);
        assert_eq!(t.mapped_base_pages(), 64 + 8 + 1);
    }

    #[test]
    fn misaligned_maps_are_rejected() {
        let mut t = pt();
        assert_eq!(
            t.map(Vpn::new(1), Pfn::new(0), PageSize::Huge),
            Err(MapError::Unaligned {
                vpn: Vpn::new(1),
                size: PageSize::Huge
            })
        );
        // Physical misalignment too.
        assert_eq!(
            t.map(Vpn::new(8), Pfn::new(3), PageSize::Huge),
            Err(MapError::Unaligned {
                vpn: Vpn::new(8),
                size: PageSize::Huge
            })
        );
    }

    #[test]
    fn overlaps_are_rejected_in_both_directions() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(0), PageSize::Base).unwrap();
        // A giant over a base-mapped region.
        assert_eq!(
            t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant),
            Err(MapError::Overlap { vpn: Vpn::new(0) })
        );
        // A huge over the base page.
        assert_eq!(
            t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge),
            Err(MapError::Overlap { vpn: Vpn::new(0) })
        );
        let mut t2 = pt();
        t2.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
        assert_eq!(
            t2.map(Vpn::new(8), Pfn::new(8), PageSize::Huge),
            Err(MapError::Overlap { vpn: Vpn::new(8) })
        );
        assert_eq!(
            t2.map(Vpn::new(5), Pfn::new(5), PageSize::Base),
            Err(MapError::Overlap { vpn: Vpn::new(5) })
        );
    }

    #[test]
    fn unmap_requires_head_and_cleans_tables() {
        let mut t = pt();
        t.map(Vpn::new(64), Pfn::new(8), PageSize::Huge).unwrap();
        assert_eq!(
            t.unmap(Vpn::new(65)),
            Err(MapError::NotAMappingHead { vpn: Vpn::new(65) })
        );
        let rec = t.unmap(Vpn::new(64)).unwrap();
        assert_eq!(rec.pfn, Pfn::new(8));
        assert_eq!(rec.size, PageSize::Huge);
        assert_eq!(t.mapped_base_pages(), 0);
        // Table was cleaned: remapping a giant over the same index works.
        t.map(Vpn::new(64), Pfn::new(64), PageSize::Giant).unwrap();
    }

    #[test]
    fn unmap_base_page_frees_empty_pte_table() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(0), PageSize::Base).unwrap();
        t.unmap(Vpn::new(0)).unwrap();
        // Whole giant index is clean again.
        t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
    }

    #[test]
    fn access_sets_bits_translate_does_not() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap();
        let _ = t.translate(Vpn::new(3));
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 0);
        t.access(Vpn::new(3), false).unwrap();
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 1);
        t.access(Vpn::new(4), true).unwrap();
        let rec = t.mappings_in(Vpn::new(0), 8)[0];
        assert!(rec.dirty);
        t.clear_accessed_in(Vpn::new(0), 8);
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 0);
        // Dirty survives an accessed clear.
        assert!(t.mappings_in(Vpn::new(0), 8)[0].dirty);
    }

    #[test]
    fn remap_preserves_flags_and_returns_old() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap();
        t.access(Vpn::new(0), true).unwrap();
        let old = t.remap(Vpn::new(0), Pfn::new(16)).unwrap();
        assert_eq!(old, Pfn::new(8));
        let rec = t.mappings_in(Vpn::new(0), 8)[0];
        assert_eq!(rec.pfn, Pfn::new(16));
        assert!(rec.accessed && rec.dirty);
        // Misaligned target rejected.
        assert!(matches!(
            t.remap(Vpn::new(0), Pfn::new(3)),
            Err(MapError::Unaligned { .. })
        ));
    }

    #[test]
    fn chunk_profile_accounts_every_base_page() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap(); // 8 pages
        t.map(Vpn::new(8), Pfn::new(1), PageSize::Base).unwrap();
        let p = t.chunk_profile(Vpn::new(0), PageSize::Giant);
        assert_eq!(p.huge_mapped, 8);
        assert_eq!(p.base_mapped, 1);
        assert_eq!(p.giant_mapped, 0);
        assert_eq!(p.unmapped, 64 - 9);
        assert_eq!(p.mapped() + p.unmapped, 64);
    }

    #[test]
    fn mappings_in_skips_straddling_leaves() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
        // Window starts inside the giant leaf: the leaf head is outside.
        assert!(t.mappings_in(Vpn::new(8), 8).is_empty());
        assert_eq!(t.mappings_in(Vpn::new(0), 64).len(), 1);
    }

    #[test]
    fn leaf_counters_track_mapping_churn() {
        let mut t = pt();
        for i in 0..4 {
            t.map(Vpn::new(i), Pfn::new(i), PageSize::Base).unwrap();
        }
        t.map(Vpn::new(64), Pfn::new(8), PageSize::Huge).unwrap();
        assert_eq!(t.mapped_pages(PageSize::Base), 4);
        assert_eq!(t.mapped_pages(PageSize::Huge), 1);
        assert_eq!(t.mapped_bytes(PageSize::Huge), 8 * 4096);
        t.unmap(Vpn::new(2)).unwrap();
        assert_eq!(t.mapped_pages(PageSize::Base), 3);
    }

    #[test]
    fn packed_counts_survive_count_bit_entry_churn() {
        // The occupancy count lives in the avail bits of a table's first
        // entries — exercise mapping/unmapping exactly those entries.
        let mut t = pt();
        for i in 0..8 {
            t.map(Vpn::new(i), Pfn::new(i), PageSize::Base).unwrap();
        }
        let p = t.chunk_profile(Vpn::new(0), PageSize::Huge);
        assert_eq!(p.base_mapped, 8);
        // Remove entries 0..4 (count-bit carriers for an 8-entry table).
        for i in 0..4 {
            t.unmap(Vpn::new(i)).unwrap();
        }
        let p = t.chunk_profile(Vpn::new(0), PageSize::Huge);
        assert_eq!(p.base_mapped, 4);
        assert_eq!(p.unmapped, 4);
        for i in 0..4 {
            t.map(Vpn::new(i), Pfn::new(20 + i), PageSize::Base)
                .unwrap();
        }
        assert_eq!(t.chunk_profile(Vpn::new(0), PageSize::Huge).base_mapped, 8);
        for i in 0..8 {
            t.unmap(Vpn::new(i)).unwrap();
        }
        assert_eq!(t.chunk_profile(Vpn::new(0), PageSize::Huge).unmapped, 8);
        assert_eq!(t.mapped_base_pages(), 0);
    }

    #[test]
    fn giant_chunk_profile_matches_counts_after_churn() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap();
        t.map(Vpn::new(8), Pfn::new(16), PageSize::Huge).unwrap();
        t.map(Vpn::new(16), Pfn::new(1), PageSize::Base).unwrap();
        t.unmap(Vpn::new(8)).unwrap();
        let p = t.chunk_profile(Vpn::new(0), PageSize::Giant);
        assert_eq!(p.huge_mapped, 8);
        assert_eq!(p.base_mapped, 1);
        assert_eq!(p.unmapped, 64 - 9);
    }

    #[test]
    fn arena_slots_are_reused_after_teardown() {
        let mut t = pt();
        for round in 0..5u64 {
            for i in 0..8 {
                t.map(Vpn::new(i), Pfn::new(round * 8 + i), PageSize::Base)
                    .unwrap();
            }
            for i in 0..8 {
                t.unmap(Vpn::new(i)).unwrap();
            }
        }
        // Churn reused the freed table slots instead of growing the arenas.
        assert!(t.pmds.num_tables() <= 1);
        assert!(t.ptes.num_tables() <= 1);
    }

    #[test]
    fn mappings_into_reuses_buffer() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap();
        t.map(Vpn::new(9), Pfn::new(2), PageSize::Base).unwrap();
        let stale = MappingRecord {
            vpn: Vpn::new(999),
            pfn: Pfn::new(999),
            size: PageSize::Base,
            accessed: false,
            dirty: false,
        };
        let mut buf = vec![stale];
        t.mappings_into(Vpn::new(0), 64, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].vpn, Vpn::new(0));
        assert_eq!(buf[1].vpn, Vpn::new(9));
        assert_eq!(buf, t.mappings_in(Vpn::new(0), 64));
    }

    #[test]
    fn dirty_chunk_drain_is_in_address_order_and_in_place() {
        let mut t = pt();
        t.mark_span_dirty(Vpn::new(128), 64); // chunk 2
        t.mark_span_dirty(Vpn::new(0), 1); // chunk 0
        let mut buf = Vec::new();
        t.drain_dirty_chunks_into(&mut buf);
        assert_eq!(buf, vec![0, 2]);
        t.drain_dirty_chunks_into(&mut buf);
        assert!(buf.is_empty());
        assert!(t.take_dirty_chunks().is_empty());
    }
}
