//! Multi-level page tables with leaves at all three page sizes.
//!
//! The structure mirrors the x86-64 radix tree: a top level whose entries
//! either map an entire giant (1GB) page — a PUD leaf — or point to a
//! mid-level table whose entries either map a huge (2MB) page — a PMD leaf
//! — or point to a leaf table of base (4KB) PTEs. All entry words are
//! packed [`RawPte`]s, with hardware-set accessed/dirty bits.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use trident_types::{PageGeometry, PageSize, Pfn, Vpn};

use crate::{MapError, RawPte};

/// The result of walking the page table for one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The frame that backs the *queried* base page.
    pub pfn: Pfn,
    /// The size of the leaf that produced the translation.
    pub size: PageSize,
    /// First virtual page of the leaf mapping.
    pub head_vpn: Vpn,
    /// First frame of the leaf mapping.
    pub head_pfn: Pfn,
}

/// A leaf mapping as enumerated by scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRecord {
    /// First virtual page of the mapping.
    pub vpn: Vpn,
    /// First frame of the mapping.
    pub pfn: Pfn,
    /// Leaf size.
    pub size: PageSize,
    /// Accessed bit at scan time.
    pub accessed: bool,
    /// Dirty bit at scan time.
    pub dirty: bool,
}

/// Summary of how an aligned virtual chunk is currently mapped, used by the
/// promotion scanner (Figure 5) to decide whether a chunk is worth
/// promoting. All counts are in base pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkProfile {
    /// Base pages mapped by 4KB leaves.
    pub base_mapped: u64,
    /// Base pages mapped by 2MB leaves.
    pub huge_mapped: u64,
    /// Base pages mapped by 1GB leaves.
    pub giant_mapped: u64,
    /// Base pages with no mapping.
    pub unmapped: u64,
}

impl ChunkProfile {
    /// Total base pages mapped by any leaf size.
    #[must_use]
    pub fn mapped(&self) -> u64 {
        self.base_mapped + self.huge_mapped + self.giant_mapped
    }
}

#[derive(Debug, Clone)]
enum PudEntry {
    GiantLeaf(RawPte),
    Table(PmdTable),
}

#[derive(Debug, Clone)]
struct PmdTable {
    entries: Vec<PmdEntry>,
    live: u32,
}

#[derive(Debug, Clone)]
enum PmdEntry {
    None,
    HugeLeaf(RawPte),
    Table(PteTable),
}

#[derive(Debug, Clone)]
struct PteTable {
    entries: Vec<RawPte>,
    live: u32,
}

/// A per-address-space page table.
///
/// # Examples
///
/// ```
/// use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
/// use trident_vm::PageTable;
///
/// let geo = PageGeometry::TINY;
/// let mut pt = PageTable::new(geo);
/// pt.map(Vpn::new(8), Pfn::new(16), PageSize::Huge)?;
/// assert_eq!(pt.mapped_pages(PageSize::Huge), 1);
/// let old = pt.remap(Vpn::new(8), Pfn::new(32))?;
/// assert_eq!(old, Pfn::new(16));
/// # Ok::<(), trident_vm::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    geo: PageGeometry,
    puds: BTreeMap<u64, PudEntry>,
    /// Number of leaves of each size (index by `PageSize as usize`).
    leaves: [u64; 3],
    /// Giant-chunk indices whose mappings (or covering VMAs) changed since
    /// the last [`PageTable::take_dirty_chunks`] drain — the promotion
    /// daemon's incremental work list.
    dirty_chunks: BTreeSet<u64>,
    /// Bumped on every mutation that could stale [`PageTable::last_walk`]:
    /// unmap, remap, and accessed-bit clearing. (`map` never alters an
    /// existing leaf — it errors on overlap — so it leaves the stamp
    /// alone.)
    walk_stamp: u64,
    /// Software walker cache: the last leaf a walk resolved, so the hot
    /// sampling loop skips the radix descent for repeated hits. Interior
    /// mutability keeps `translate` a `&self` walk.
    last_walk: Cell<Option<WalkerHit>>,
}

/// The walker-cache entry: one leaf plus the flag state already written to
/// it, validated against [`PageTable::walk_stamp`].
#[derive(Debug, Clone, Copy)]
struct WalkerHit {
    head_vpn: Vpn,
    head_pfn: Pfn,
    pages: u64,
    size: PageSize,
    stamp: u64,
    accessed: bool,
    dirty: bool,
}

impl WalkerHit {
    fn covers(&self, vpn: Vpn, stamp: u64) -> bool {
        self.stamp == stamp && vpn >= self.head_vpn && vpn.raw() - self.head_vpn.raw() < self.pages
    }

    fn translation(&self, vpn: Vpn) -> Translation {
        Translation {
            pfn: self.head_pfn + (vpn - self.head_vpn),
            size: self.size,
            head_vpn: self.head_vpn,
            head_pfn: self.head_pfn,
        }
    }
}

impl PageTable {
    /// Creates an empty page table for the given geometry.
    #[must_use]
    pub fn new(geo: PageGeometry) -> PageTable {
        PageTable {
            geo,
            puds: BTreeMap::new(),
            leaves: [0; 3],
            dirty_chunks: BTreeSet::new(),
            walk_stamp: 0,
            last_walk: Cell::new(None),
        }
    }

    /// The geometry this table was created with.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    fn pmd_len(&self) -> usize {
        1 << (self.geo.order(PageSize::Giant) - self.geo.order(PageSize::Huge))
    }

    fn pte_len(&self) -> usize {
        1 << self.geo.order(PageSize::Huge)
    }

    fn giant_index(&self, vpn: Vpn) -> u64 {
        vpn.raw() >> self.geo.order(PageSize::Giant)
    }

    fn pmd_index(&self, vpn: Vpn) -> usize {
        ((vpn.raw() >> self.geo.order(PageSize::Huge)) & (self.pmd_len() as u64 - 1)) as usize
    }

    fn pte_index(&self, vpn: Vpn) -> usize {
        (vpn.raw() & (self.pte_len() as u64 - 1)) as usize
    }

    /// Marks every giant chunk overlapping `[start, start + pages)` dirty —
    /// called on mapping changes here and by the address space when a VMA
    /// appears, grows, or shrinks (which changes chunk mappability without
    /// touching any PTE).
    pub fn mark_span_dirty(&mut self, start: Vpn, pages: u64) {
        if pages == 0 {
            return;
        }
        let first = self.giant_index(start);
        let last = self.giant_index(start + (pages - 1));
        for gi in first..=last {
            self.dirty_chunks.insert(gi);
        }
    }

    /// Drains the set of giant-chunk indices touched since the last drain,
    /// in address order. The promotion daemon uses this to re-examine only
    /// chunks whose candidacy could have changed.
    pub fn take_dirty_chunks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.dirty_chunks).into_iter().collect()
    }

    fn invalidate_walks(&mut self) {
        self.walk_stamp = self.walk_stamp.wrapping_add(1);
    }

    /// Number of leaves of the given size currently installed.
    #[must_use]
    pub fn mapped_pages(&self, size: PageSize) -> u64 {
        self.leaves[size as usize]
    }

    /// Total mapped memory in base pages.
    #[must_use]
    pub fn mapped_base_pages(&self) -> u64 {
        PageSize::ALL
            .into_iter()
            .map(|s| self.leaves[s as usize] * self.geo.base_pages(s))
            .sum()
    }

    /// Total mapped memory in bytes attributable to leaves of `size`.
    #[must_use]
    pub fn mapped_bytes(&self, size: PageSize) -> u64 {
        self.leaves[size as usize] * self.geo.bytes(size)
    }

    /// Installs a leaf of `size` mapping `vpn.. → pfn..`.
    ///
    /// # Errors
    ///
    /// * [`MapError::Unaligned`] — `vpn` or `pfn` is not `size`-aligned.
    /// * [`MapError::Overlap`] — any base page of the span is already
    ///   mapped.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize) -> Result<(), MapError> {
        if !self.geo.is_page_aligned(vpn.raw(), size) || !self.geo.is_page_aligned(pfn.raw(), size)
        {
            return Err(MapError::Unaligned { vpn, size });
        }
        let gi = self.giant_index(vpn);
        match size {
            PageSize::Giant => {
                match self.puds.get(&gi) {
                    Some(PudEntry::GiantLeaf(_)) => return Err(MapError::Overlap { vpn }),
                    Some(PudEntry::Table(t)) if t.live > 0 => {
                        return Err(MapError::Overlap { vpn })
                    }
                    _ => {}
                }
                self.puds
                    .insert(gi, PudEntry::GiantLeaf(RawPte::new_leaf(pfn)));
            }
            PageSize::Huge => {
                let pmd_len = self.pmd_len();
                let pi = self.pmd_index(vpn);
                let pud = self.puds.entry(gi).or_insert_with(|| {
                    PudEntry::Table(PmdTable {
                        entries: vec_none(pmd_len),
                        live: 0,
                    })
                });
                let table = match pud {
                    PudEntry::GiantLeaf(_) => return Err(MapError::Overlap { vpn }),
                    PudEntry::Table(t) => t,
                };
                match &table.entries[pi] {
                    PmdEntry::None => {}
                    PmdEntry::Table(t) if t.live == 0 => {}
                    _ => return Err(MapError::Overlap { vpn }),
                }
                if matches!(table.entries[pi], PmdEntry::None) {
                    table.live += 1;
                }
                table.entries[pi] = PmdEntry::HugeLeaf(RawPte::new_leaf(pfn));
            }
            PageSize::Base => {
                let pmd_len = self.pmd_len();
                let pte_len = self.pte_len();
                let pi = self.pmd_index(vpn);
                let ti = self.pte_index(vpn);
                let pud = self.puds.entry(gi).or_insert_with(|| {
                    PudEntry::Table(PmdTable {
                        entries: vec_none(pmd_len),
                        live: 0,
                    })
                });
                let pmd = match pud {
                    PudEntry::GiantLeaf(_) => return Err(MapError::Overlap { vpn }),
                    PudEntry::Table(t) => t,
                };
                if matches!(pmd.entries[pi], PmdEntry::None) {
                    pmd.entries[pi] = PmdEntry::Table(PteTable {
                        entries: vec![RawPte::NOT_PRESENT; pte_len],
                        live: 0,
                    });
                    pmd.live += 1;
                }
                let ptes = match &mut pmd.entries[pi] {
                    PmdEntry::HugeLeaf(_) => return Err(MapError::Overlap { vpn }),
                    PmdEntry::Table(t) => t,
                    PmdEntry::None => unreachable!("just materialized"),
                };
                if ptes.entries[ti].is_present() {
                    return Err(MapError::Overlap { vpn });
                }
                ptes.entries[ti] = RawPte::new_leaf(pfn);
                ptes.live += 1;
            }
        }
        self.leaves[size as usize] += 1;
        self.dirty_chunks.insert(gi);
        Ok(())
    }

    /// Walks the table for `vpn` without touching accessed/dirty bits.
    #[must_use]
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        if let Some(hit) = self.last_walk.get() {
            if hit.covers(vpn, self.walk_stamp) {
                return Some(hit.translation(vpn));
            }
        }
        let t = self.translate_slow(vpn)?;
        let pte = self.leaf_ref(t.head_vpn).expect("translation implies leaf");
        self.last_walk.set(Some(WalkerHit {
            head_vpn: t.head_vpn,
            head_pfn: t.head_pfn,
            pages: self.geo.base_pages(t.size),
            size: t.size,
            stamp: self.walk_stamp,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        }));
        Some(t)
    }

    fn translate_slow(&self, vpn: Vpn) -> Option<Translation> {
        let gi = self.giant_index(vpn);
        match self.puds.get(&gi)? {
            PudEntry::GiantLeaf(pte) => {
                let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), PageSize::Giant));
                Some(self.leaf_translation(vpn, head_vpn, *pte, PageSize::Giant))
            }
            PudEntry::Table(pmd) => match &pmd.entries[self.pmd_index(vpn)] {
                PmdEntry::None => None,
                PmdEntry::HugeLeaf(pte) => {
                    let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), PageSize::Huge));
                    Some(self.leaf_translation(vpn, head_vpn, *pte, PageSize::Huge))
                }
                PmdEntry::Table(ptes) => {
                    let pte = ptes.entries[self.pte_index(vpn)];
                    pte.is_present()
                        .then(|| self.leaf_translation(vpn, vpn, pte, PageSize::Base))
                }
            },
        }
    }

    fn leaf_translation(
        &self,
        vpn: Vpn,
        head_vpn: Vpn,
        pte: RawPte,
        size: PageSize,
    ) -> Translation {
        let offset = vpn - head_vpn;
        Translation {
            pfn: pte.pfn() + offset,
            size,
            head_vpn,
            head_pfn: pte.pfn(),
        }
    }

    /// Walks the table for `vpn` like the hardware does on a TLB miss,
    /// setting the accessed bit (and the dirty bit for writes).
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        // Walker-cache fast path: when the covering leaf already carries
        // the flags this access would set, no table walk is needed at all.
        if let Some(hit) = self.last_walk.get() {
            if hit.covers(vpn, self.walk_stamp) && hit.accessed && (!write || hit.dirty) {
                return Some(hit.translation(vpn));
            }
        }
        let translation = self.translate(vpn)?;
        let pte = self
            .leaf_mut(translation.head_vpn)
            .expect("translation implies leaf");
        pte.set_accessed();
        if write {
            pte.set_dirty();
        }
        if let Some(mut hit) = self.last_walk.get() {
            if hit.stamp == self.walk_stamp && hit.head_vpn == translation.head_vpn {
                hit.accessed = true;
                hit.dirty |= write;
                self.last_walk.set(Some(hit));
            }
        }
        Some(translation)
    }

    /// Mutable access to the leaf entry headed exactly at `head_vpn`.
    fn leaf_mut(&mut self, head_vpn: Vpn) -> Option<&mut RawPte> {
        let gi = self.giant_index(head_vpn);
        let pmd_index = self.pmd_index(head_vpn);
        let pte_index = self.pte_index(head_vpn);
        match self.puds.get_mut(&gi)? {
            PudEntry::GiantLeaf(pte) => Some(pte),
            PudEntry::Table(pmd) => match &mut pmd.entries[pmd_index] {
                PmdEntry::None => None,
                PmdEntry::HugeLeaf(pte) => Some(pte),
                PmdEntry::Table(ptes) => {
                    let pte = &mut ptes.entries[pte_index];
                    pte.is_present().then_some(pte)
                }
            },
        }
    }

    /// Removes the leaf headed exactly at `head_vpn`, returning its record.
    ///
    /// # Errors
    ///
    /// * [`MapError::NotMapped`] — nothing is mapped at `head_vpn`.
    /// * [`MapError::NotAMappingHead`] — `head_vpn` lies inside a larger
    ///   leaf.
    pub fn unmap(&mut self, head_vpn: Vpn) -> Result<MappingRecord, MapError> {
        let translation = self
            .translate(head_vpn)
            .ok_or(MapError::NotMapped { vpn: head_vpn })?;
        if translation.head_vpn != head_vpn {
            return Err(MapError::NotAMappingHead { vpn: head_vpn });
        }
        let gi = self.giant_index(head_vpn);
        let pmd_index = self.pmd_index(head_vpn);
        let pte_index = self.pte_index(head_vpn);
        let record;
        match translation.size {
            PageSize::Giant => {
                let Some(PudEntry::GiantLeaf(pte)) = self.puds.remove(&gi) else {
                    unreachable!("translate said giant leaf");
                };
                record = self.record(head_vpn, pte, PageSize::Giant);
            }
            PageSize::Huge => {
                let Some(PudEntry::Table(pmd)) = self.puds.get_mut(&gi) else {
                    unreachable!("translate said huge leaf");
                };
                let entry = std::mem::replace(&mut pmd.entries[pmd_index], PmdEntry::None);
                let PmdEntry::HugeLeaf(pte) = entry else {
                    unreachable!("translate said huge leaf");
                };
                pmd.live -= 1;
                if pmd.live == 0 {
                    self.puds.remove(&gi);
                }
                record = self.record(head_vpn, pte, PageSize::Huge);
            }
            PageSize::Base => {
                let Some(PudEntry::Table(pmd)) = self.puds.get_mut(&gi) else {
                    unreachable!("translate said base leaf");
                };
                let PmdEntry::Table(ptes) = &mut pmd.entries[pmd_index] else {
                    unreachable!("translate said base leaf");
                };
                let pte = ptes.entries[pte_index];
                ptes.entries[pte_index] = RawPte::NOT_PRESENT;
                ptes.live -= 1;
                if ptes.live == 0 {
                    pmd.entries[pmd_index] = PmdEntry::None;
                    pmd.live -= 1;
                    if pmd.live == 0 {
                        self.puds.remove(&gi);
                    }
                }
                record = self.record(head_vpn, pte, PageSize::Base);
            }
        }
        self.leaves[translation.size as usize] -= 1;
        self.dirty_chunks.insert(gi);
        self.invalidate_walks();
        Ok(record)
    }

    fn record(&self, vpn: Vpn, pte: RawPte, size: PageSize) -> MappingRecord {
        MappingRecord {
            vpn,
            pfn: pte.pfn(),
            size,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        }
    }

    /// Repoints the leaf headed at `head_vpn` to `new_head_pfn`, preserving
    /// flags, and returns the old head frame. Used by migration and by
    /// Trident_pv's copy-less exchange.
    ///
    /// # Errors
    ///
    /// * [`MapError::NotMapped`] / [`MapError::NotAMappingHead`] — as for
    ///   [`PageTable::unmap`].
    /// * [`MapError::Unaligned`] — `new_head_pfn` is not aligned for the
    ///   leaf's size.
    pub fn remap(&mut self, head_vpn: Vpn, new_head_pfn: Pfn) -> Result<Pfn, MapError> {
        let translation = self
            .translate(head_vpn)
            .ok_or(MapError::NotMapped { vpn: head_vpn })?;
        if translation.head_vpn != head_vpn {
            return Err(MapError::NotAMappingHead { vpn: head_vpn });
        }
        if !self
            .geo
            .is_page_aligned(new_head_pfn.raw(), translation.size)
        {
            return Err(MapError::Unaligned {
                vpn: head_vpn,
                size: translation.size,
            });
        }
        let pte = self.leaf_mut(head_vpn).expect("translation implies leaf");
        let old = pte.pfn();
        pte.set_pfn(new_head_pfn);
        self.invalidate_walks();
        Ok(old)
    }

    /// Enumerates all leaves whose head lies in `[start, start + pages)`.
    ///
    /// Leaves that straddle the window boundary (a giant leaf around a
    /// smaller window) are *not* reported; scan windows should be aligned
    /// to the largest page size of interest.
    #[must_use]
    pub fn mappings_in(&self, start: Vpn, pages: u64) -> Vec<MappingRecord> {
        let mut out = Vec::new();
        let end = start.raw() + pages;
        let mut vpn = start.raw();
        while vpn < end {
            match self.translate(Vpn::new(vpn)) {
                Some(t) => {
                    let leaf_pages = self.geo.base_pages(t.size);
                    if t.head_vpn.raw() >= start.raw() {
                        let pte = *self.leaf_ref(t.head_vpn).expect("translation implies leaf");
                        out.push(self.record(t.head_vpn, pte, t.size));
                    }
                    vpn = t.head_vpn.raw() + leaf_pages;
                }
                None => vpn += 1,
            }
        }
        out
    }

    /// Shared access to the leaf entry headed exactly at `head_vpn`.
    fn leaf_ref(&self, head_vpn: Vpn) -> Option<&RawPte> {
        let gi = self.giant_index(head_vpn);
        match self.puds.get(&gi)? {
            PudEntry::GiantLeaf(pte) => Some(pte),
            PudEntry::Table(pmd) => match &pmd.entries[self.pmd_index(head_vpn)] {
                PmdEntry::None => None,
                PmdEntry::HugeLeaf(pte) => Some(pte),
                PmdEntry::Table(ptes) => {
                    let pte = &ptes.entries[self.pte_index(head_vpn)];
                    pte.is_present().then_some(pte)
                }
            },
        }
    }

    /// Summarizes how the aligned chunk of `size` starting at `start` is
    /// mapped. `start` must be `size`-aligned.
    ///
    /// Descends the radix structure directly instead of translating every
    /// base page, so a giant-chunk profile costs one mid-level sweep
    /// (reading the per-table `live` counters) and a huge-chunk profile is
    /// O(1) — cheap enough for the promotion daemon to call per dirty
    /// chunk.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not aligned to `size`.
    #[must_use]
    pub fn chunk_profile(&self, start: Vpn, size: PageSize) -> ChunkProfile {
        assert!(
            self.geo.is_page_aligned(start.raw(), size),
            "chunk_profile start must be size-aligned"
        );
        let span = self.geo.base_pages(size);
        let mut profile = ChunkProfile::default();
        let Some(pud) = self.puds.get(&self.giant_index(start)) else {
            profile.unmapped = span;
            return profile;
        };
        match (pud, size) {
            (PudEntry::GiantLeaf(_), _) => profile.giant_mapped = span,
            (PudEntry::Table(pmd), PageSize::Giant) => {
                let pte_len = self.pte_len() as u64;
                for entry in &pmd.entries {
                    match entry {
                        PmdEntry::None => profile.unmapped += pte_len,
                        PmdEntry::HugeLeaf(_) => profile.huge_mapped += pte_len,
                        PmdEntry::Table(ptes) => {
                            profile.base_mapped += u64::from(ptes.live);
                            profile.unmapped += pte_len - u64::from(ptes.live);
                        }
                    }
                }
            }
            (PudEntry::Table(pmd), PageSize::Huge) => match &pmd.entries[self.pmd_index(start)] {
                PmdEntry::None => profile.unmapped = span,
                PmdEntry::HugeLeaf(_) => profile.huge_mapped = span,
                PmdEntry::Table(ptes) => {
                    profile.base_mapped = u64::from(ptes.live);
                    profile.unmapped = span - u64::from(ptes.live);
                }
            },
            (PudEntry::Table(pmd), PageSize::Base) => match &pmd.entries[self.pmd_index(start)] {
                PmdEntry::None => profile.unmapped = 1,
                PmdEntry::HugeLeaf(_) => profile.huge_mapped = 1,
                PmdEntry::Table(ptes) => {
                    if ptes.entries[self.pte_index(start)].is_present() {
                        profile.base_mapped = 1;
                    } else {
                        profile.unmapped = 1;
                    }
                }
            },
        }
        profile
    }

    /// Clears accessed bits on every leaf in the window — the sampling-
    /// interval reset of the paper's Figure 4 methodology.
    pub fn clear_accessed_in(&mut self, start: Vpn, pages: u64) {
        let heads: Vec<Vpn> = self
            .mappings_in(start, pages)
            .into_iter()
            .map(|m| m.vpn)
            .collect();
        for head in heads {
            if let Some(pte) = self.leaf_mut(head) {
                pte.clear_accessed();
            }
        }
        self.invalidate_walks();
    }

    /// Counts leaves in the window whose accessed bit is set.
    #[must_use]
    pub fn accessed_leaves_in(&self, start: Vpn, pages: u64) -> u64 {
        self.mappings_in(start, pages)
            .iter()
            .filter(|m| m.accessed)
            .count() as u64
    }
}

fn vec_none(len: usize) -> Vec<PmdEntry> {
    let mut v = Vec::with_capacity(len);
    v.resize_with(len, || PmdEntry::None);
    v
}

/// Extension: align a page number down to a page-size boundary.
trait AlignPage {
    fn align_down_page(&self, page: u64, size: PageSize) -> u64;
}

impl AlignPage for PageGeometry {
    fn align_down_page(&self, page: u64, size: PageSize) -> u64 {
        page & !(self.base_pages(size) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(PageGeometry::TINY) // huge = 8 pages, giant = 64
    }

    #[test]
    fn map_translate_all_sizes() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
        t.map(Vpn::new(64), Pfn::new(8), PageSize::Huge).unwrap();
        t.map(Vpn::new(72), Pfn::new(3), PageSize::Base).unwrap();
        assert_eq!(
            t.translate(Vpn::new(10)).unwrap(),
            Translation {
                pfn: Pfn::new(74),
                size: PageSize::Giant,
                head_vpn: Vpn::new(0),
                head_pfn: Pfn::new(64),
            }
        );
        assert_eq!(t.translate(Vpn::new(65)).unwrap().pfn, Pfn::new(9));
        assert_eq!(t.translate(Vpn::new(72)).unwrap().size, PageSize::Base);
        assert_eq!(t.translate(Vpn::new(73)), None);
        assert_eq!(t.mapped_base_pages(), 64 + 8 + 1);
    }

    #[test]
    fn misaligned_maps_are_rejected() {
        let mut t = pt();
        assert_eq!(
            t.map(Vpn::new(1), Pfn::new(0), PageSize::Huge),
            Err(MapError::Unaligned {
                vpn: Vpn::new(1),
                size: PageSize::Huge
            })
        );
        // Physical misalignment too.
        assert_eq!(
            t.map(Vpn::new(8), Pfn::new(3), PageSize::Huge),
            Err(MapError::Unaligned {
                vpn: Vpn::new(8),
                size: PageSize::Huge
            })
        );
    }

    #[test]
    fn overlaps_are_rejected_in_both_directions() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(0), PageSize::Base).unwrap();
        // A giant over a base-mapped region.
        assert_eq!(
            t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant),
            Err(MapError::Overlap { vpn: Vpn::new(0) })
        );
        // A huge over the base page.
        assert_eq!(
            t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge),
            Err(MapError::Overlap { vpn: Vpn::new(0) })
        );
        let mut t2 = pt();
        t2.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
        assert_eq!(
            t2.map(Vpn::new(8), Pfn::new(8), PageSize::Huge),
            Err(MapError::Overlap { vpn: Vpn::new(8) })
        );
        assert_eq!(
            t2.map(Vpn::new(5), Pfn::new(5), PageSize::Base),
            Err(MapError::Overlap { vpn: Vpn::new(5) })
        );
    }

    #[test]
    fn unmap_requires_head_and_cleans_tables() {
        let mut t = pt();
        t.map(Vpn::new(64), Pfn::new(8), PageSize::Huge).unwrap();
        assert_eq!(
            t.unmap(Vpn::new(65)),
            Err(MapError::NotAMappingHead { vpn: Vpn::new(65) })
        );
        let rec = t.unmap(Vpn::new(64)).unwrap();
        assert_eq!(rec.pfn, Pfn::new(8));
        assert_eq!(rec.size, PageSize::Huge);
        assert_eq!(t.mapped_base_pages(), 0);
        // Table was cleaned: remapping a giant over the same index works.
        t.map(Vpn::new(64), Pfn::new(64), PageSize::Giant).unwrap();
    }

    #[test]
    fn unmap_base_page_frees_empty_pte_table() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(0), PageSize::Base).unwrap();
        t.unmap(Vpn::new(0)).unwrap();
        // Whole giant index is clean again.
        t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
    }

    #[test]
    fn access_sets_bits_translate_does_not() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap();
        let _ = t.translate(Vpn::new(3));
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 0);
        t.access(Vpn::new(3), false).unwrap();
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 1);
        t.access(Vpn::new(4), true).unwrap();
        let rec = t.mappings_in(Vpn::new(0), 8)[0];
        assert!(rec.dirty);
        t.clear_accessed_in(Vpn::new(0), 8);
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 0);
        // Dirty survives an accessed clear.
        assert!(t.mappings_in(Vpn::new(0), 8)[0].dirty);
    }

    #[test]
    fn remap_preserves_flags_and_returns_old() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap();
        t.access(Vpn::new(0), true).unwrap();
        let old = t.remap(Vpn::new(0), Pfn::new(16)).unwrap();
        assert_eq!(old, Pfn::new(8));
        let rec = t.mappings_in(Vpn::new(0), 8)[0];
        assert_eq!(rec.pfn, Pfn::new(16));
        assert!(rec.accessed && rec.dirty);
        // Misaligned target rejected.
        assert!(matches!(
            t.remap(Vpn::new(0), Pfn::new(3)),
            Err(MapError::Unaligned { .. })
        ));
    }

    #[test]
    fn chunk_profile_accounts_every_base_page() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), PageSize::Huge).unwrap(); // 8 pages
        t.map(Vpn::new(8), Pfn::new(1), PageSize::Base).unwrap();
        let p = t.chunk_profile(Vpn::new(0), PageSize::Giant);
        assert_eq!(p.huge_mapped, 8);
        assert_eq!(p.base_mapped, 1);
        assert_eq!(p.giant_mapped, 0);
        assert_eq!(p.unmapped, 64 - 9);
        assert_eq!(p.mapped() + p.unmapped, 64);
    }

    #[test]
    fn mappings_in_skips_straddling_leaves() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(64), PageSize::Giant).unwrap();
        // Window starts inside the giant leaf: the leaf head is outside.
        assert!(t.mappings_in(Vpn::new(8), 8).is_empty());
        assert_eq!(t.mappings_in(Vpn::new(0), 64).len(), 1);
    }

    #[test]
    fn leaf_counters_track_mapping_churn() {
        let mut t = pt();
        for i in 0..4 {
            t.map(Vpn::new(i), Pfn::new(i), PageSize::Base).unwrap();
        }
        t.map(Vpn::new(64), Pfn::new(8), PageSize::Huge).unwrap();
        assert_eq!(t.mapped_pages(PageSize::Base), 4);
        assert_eq!(t.mapped_pages(PageSize::Huge), 1);
        assert_eq!(t.mapped_bytes(PageSize::Huge), 8 * 4096);
        t.unmap(Vpn::new(2)).unwrap();
        assert_eq!(t.mapped_pages(PageSize::Base), 3);
    }
}
