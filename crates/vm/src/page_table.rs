//! Multi-level page tables with leaves at every rung of the ladder.
//!
//! The structure mirrors a three-level radix tree: a top level whose
//! entries either map an entire top-rung (e.g. 1GB) page — a PUD leaf —
//! or point to a mid-level table whose entries either map a level-2
//! (e.g. 2MB) page — a PMD leaf — or point to a leaf table of base PTEs.
//! All entry words are packed [`RawPte`]s, with hardware-set
//! accessed/dirty bits.
//!
//! # Group leaves (SVNAPOT / contiguous-bit rungs)
//!
//! Ladders with intermediate rungs — RISC-V's 64KB NAPOT pages, ARM's
//! contiguous-PTE spans — install *group leaves*: `group_span` adjacent
//! entries at the rung's natural table level, each a present leaf with
//! its own frame and a software rung tag in the PTE's free low bits.
//! This is exactly how the real architectures encode them (the table is
//! never reshaped; only the TLB coalesces), so the walk depth of a group
//! rung equals the walk depth of its underlying level. Accessed/dirty
//! state for a group leaf lives on its *head* entry; member entries'
//! flag bits are ignored.
//!
//! # Packed layout
//!
//! The levels are stored the way a kernel would lay them out in physical
//! memory, not as a pointer-chasing tree of heap enums:
//!
//! * The PUD level is a dense directory (`Vec<RawPte>`) indexed directly by
//!   giant-chunk index. A non-leaf entry carries a software `TABLE` tag in
//!   an x86 available bit and stores the mid-level table's arena index in
//!   its frame field, so a walk is two array indexings instead of a
//!   `BTreeMap` descent.
//! * PMD and PTE tables live in per-level arenas (`Vec<Box<[RawPte]>>`)
//!   with free lists. Tearing down a table returns its slot (and its entry
//!   storage) to the arena, so steady-state map/unmap churn allocates
//!   nothing.
//! * Each table's occupancy count is packed into the entries themselves:
//!   one bit per entry in the x86 software-available bit (bit 9) of the
//!   table's first few entries — the `set_count`/`read_count` idiom. The
//!   promotion scanner reads a table's population without sweeping it.
//! * Per-giant-chunk per-rung occupancy totals are kept in a side array,
//!   making a top-rung [`PageTable::chunk_profile`] O(1) — it was a full
//!   mid-level sweep per fault in the promotion-eligibility hot path.
//! * The dirty-chunk feed is a packed bitmap ([`DenseBitSet`]) drained in
//!   place, not a `BTreeSet` that is rebuilt every promotion tick.

use std::cell::Cell;

use trident_types::{DenseBitSet, PageGeometry, PageSize, Pfn, Vpn, MAX_RUNGS};

use crate::{MapError, RawPte};

/// The result of walking the page table for one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The frame that backs the *queried* base page.
    pub pfn: Pfn,
    /// The size of the leaf that produced the translation.
    pub size: PageSize,
    /// First virtual page of the leaf mapping.
    pub head_vpn: Vpn,
    /// First frame of the leaf mapping.
    pub head_pfn: Pfn,
}

/// A leaf mapping as enumerated by scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRecord {
    /// First virtual page of the mapping.
    pub vpn: Vpn,
    /// First frame of the mapping.
    pub pfn: Pfn,
    /// Leaf size.
    pub size: PageSize,
    /// Accessed bit at scan time.
    pub accessed: bool,
    /// Dirty bit at scan time.
    pub dirty: bool,
}

/// Summary of how an aligned virtual chunk is currently mapped, used by the
/// promotion scanner (Figure 5) to decide whether a chunk is worth
/// promoting. All counts are in base pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkProfile {
    /// Base pages mapped by leaves of each rung, indexed by
    /// [`PageSize::rung`].
    pub mapped: [u64; MAX_RUNGS],
    /// Base pages with no mapping.
    pub unmapped: u64,
}

impl ChunkProfile {
    /// Total base pages mapped by any leaf size.
    #[must_use]
    pub fn mapped_total(&self) -> u64 {
        self.mapped.iter().sum()
    }

    /// Base pages mapped by leaves of exactly `size`.
    #[must_use]
    pub fn mapped_at(&self, size: PageSize) -> u64 {
        self.mapped[size.rung()]
    }

    /// Base pages mapped by leaves strictly smaller than `size`.
    #[must_use]
    pub fn mapped_below(&self, size: PageSize) -> u64 {
        self.mapped[..size.rung()].iter().sum()
    }
}

/// Per-giant-chunk base-page totals by rung, maintained on map/unmap so
/// the promotion scanner's top-rung chunk profile never sweeps the mid
/// level. The top rung itself is not counted: a top-rung leaf occupies
/// the PUD slot and short-circuits profiling.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkCounts {
    mapped: [u32; MAX_RUNGS],
}

/// An arena of equal-length entry tables packed into one contiguous
/// store, addressed by table index. Growing appends one table's worth of
/// zeroed entries to the store (amortized — no per-table heap
/// allocation), and freed tables are zeroed eagerly and recycled through
/// the free list, so steady-state churn allocates nothing.
#[derive(Debug, Clone, Default)]
struct TableArena {
    store: Vec<RawPte>,
    /// Entries per table; every table in one arena has the same length.
    len: usize,
    free: Vec<u32>,
}

impl TableArena {
    fn alloc(&mut self, len: usize) -> u32 {
        if let Some(idx) = self.free.pop() {
            return idx;
        }
        debug_assert!(self.store.is_empty() || self.len == len);
        self.len = len;
        let idx = self.store.len() / len;
        self.store
            .resize(self.store.len() + len, RawPte::NOT_PRESENT);
        u32::try_from(idx).expect("table arena index fits u32")
    }

    fn free(&mut self, idx: u32) {
        self.get_mut(idx).fill(RawPte::NOT_PRESENT);
        self.free.push(idx);
    }

    #[cfg(test)]
    fn num_tables(&self) -> usize {
        self.store.len().checked_div(self.len).unwrap_or(0)
    }

    fn get(&self, idx: u32) -> &[RawPte] {
        let base = idx as usize * self.len;
        &self.store[base..base + self.len]
    }

    fn get_mut(&mut self, idx: u32) -> &mut [RawPte] {
        let base = idx as usize * self.len;
        &mut self.store[base..base + self.len]
    }
}

/// A per-address-space page table.
///
/// # Examples
///
/// ```
/// use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
/// use trident_vm::PageTable;
///
/// let geo = PageGeometry::TINY;
/// let mut pt = PageTable::new(geo);
/// let huge = PageSize::new(1);
/// pt.map(Vpn::new(8), Pfn::new(16), huge)?;
/// assert_eq!(pt.mapped_pages(huge), 1);
/// let old = pt.remap(Vpn::new(8), Pfn::new(32))?;
/// assert_eq!(old, Pfn::new(16));
/// # Ok::<(), trident_vm::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    geo: PageGeometry,
    /// Dense PUD directory indexed by giant-chunk index. `NOT_PRESENT`
    /// means nothing mapped in the chunk; a leaf entry maps the whole
    /// chunk; a `TABLE`-tagged entry holds a `pmds` arena index.
    puds: Vec<RawPte>,
    /// Parallel to `puds`: per-chunk per-rung occupancy totals.
    chunk_counts: Vec<ChunkCounts>,
    /// Mid-level (PMD) table arena.
    pmds: TableArena,
    /// Leaf-level (PTE) table arena.
    ptes: TableArena,
    /// Number of leaves of each rung (indexed by [`PageSize::rung`]).
    leaves: [u64; MAX_RUNGS],
    /// Whether the ladder has group rungs at the PTE level — when false
    /// (x86), leaf-table occupancy can be read from the packed count
    /// instead of sweeping for rung tags.
    l1_groups: bool,
    /// Giant-chunk indices whose mappings (or covering VMAs) changed since
    /// the last [`PageTable::take_dirty_chunks`] drain — the promotion
    /// daemon's incremental work list.
    dirty_chunks: DenseBitSet,
    /// Bumped on every mutation that could stale [`PageTable::last_walk`]:
    /// unmap, remap, and accessed-bit clearing. (`map` never alters an
    /// existing leaf — it errors on overlap — so it leaves the stamp
    /// alone.)
    walk_stamp: u64,
    /// Software walker cache: the last leaf a walk resolved, so the hot
    /// sampling loop skips the radix descent for repeated hits. Interior
    /// mutability keeps `translate` a `&self` walk.
    last_walk: Cell<Option<WalkerHit>>,
}

/// The walker-cache entry: one leaf plus the flag state already written to
/// it, validated against [`PageTable::walk_stamp`].
#[derive(Debug, Clone, Copy)]
struct WalkerHit {
    head_vpn: Vpn,
    head_pfn: Pfn,
    pages: u64,
    size: PageSize,
    stamp: u64,
    accessed: bool,
    dirty: bool,
}

impl WalkerHit {
    fn covers(&self, vpn: Vpn, stamp: u64) -> bool {
        self.stamp == stamp && vpn >= self.head_vpn && vpn.raw() - self.head_vpn.raw() < self.pages
    }

    fn translation(&self, vpn: Vpn) -> Translation {
        Translation {
            pfn: self.head_pfn + (vpn - self.head_vpn),
            size: self.size,
            head_vpn: self.head_vpn,
            head_pfn: self.head_pfn,
        }
    }
}

/// How many leading entries of a `len`-entry table carry occupancy-count
/// bits: enough bits for counts `0..=len`, never more than the table has.
fn count_bits(len: usize) -> usize {
    (len.trailing_zeros() as usize + 1).min(len)
}

/// Reads a table's occupancy count out of the available bits of its first
/// few entries (twizzler-style `read_count`).
fn read_count(entries: &[RawPte]) -> u32 {
    let mut count = 0u32;
    for (bit, entry) in entries.iter().take(count_bits(entries.len())).enumerate() {
        count |= u32::from(entry.avail_bit()) << bit;
    }
    count
}

/// Writes a table's occupancy count into the available bits of its first
/// few entries (twizzler-style `set_count`). Must run after any structural
/// entry overwrite, which may have clobbered a count bit.
fn write_count(entries: &mut [RawPte], count: u32) {
    let bits = count_bits(entries.len());
    for (bit, entry) in entries.iter_mut().take(bits).enumerate() {
        entry.set_avail_bit(count & (1 << bit) != 0);
    }
}

impl PageTable {
    /// Creates an empty page table for the given geometry.
    #[must_use]
    pub fn new(geo: PageGeometry) -> PageTable {
        let l1_groups = geo.rungs().any(|s| geo.is_group(s) && geo.level(s) == 1);
        PageTable {
            geo,
            puds: Vec::new(),
            chunk_counts: Vec::new(),
            pmds: TableArena::default(),
            ptes: TableArena::default(),
            leaves: [0; MAX_RUNGS],
            l1_groups,
            dirty_chunks: DenseBitSet::new(),
            walk_stamp: 0,
            last_walk: Cell::new(None),
        }
    }

    /// The geometry this table was created with.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    /// The rung of a *natural* leaf at table `level` — every shipped
    /// ladder has a rung at each level's natural order.
    fn natural_rung(&self, level: u8) -> PageSize {
        self.geo
            .size_for_order(self.geo.level_order(level))
            .expect("every table level has a natural rung on the ladder")
    }

    /// The rung a present leaf entry at `level` belongs to: its group tag
    /// if it is a member of a NAPOT/contiguous span, the level's natural
    /// rung otherwise.
    fn entry_size(&self, entry: RawPte, level: u8) -> PageSize {
        match entry.group_rung() {
            Some(rung) => PageSize::new(rung),
            None => self.natural_rung(level),
        }
    }

    fn pmd_len(&self) -> usize {
        1 << (self.geo.level_order(3) - self.geo.level_order(2))
    }

    fn pte_len(&self) -> usize {
        1 << self.geo.level_order(2)
    }

    fn giant_index(&self, vpn: Vpn) -> u64 {
        vpn.raw() >> self.geo.level_order(3)
    }

    fn pmd_index(&self, vpn: Vpn) -> usize {
        ((vpn.raw() >> self.geo.level_order(2)) & (self.pmd_len() as u64 - 1)) as usize
    }

    fn pte_index(&self, vpn: Vpn) -> usize {
        (vpn.raw() & (self.pte_len() as u64 - 1)) as usize
    }

    /// Grows the dense PUD directory to cover `gi`, returning it as an
    /// index.
    fn ensure_gi(&mut self, gi: u64) -> usize {
        let gi = usize::try_from(gi).expect("giant index fits usize");
        if gi >= self.puds.len() {
            self.puds.resize(gi + 1, RawPte::NOT_PRESENT);
            self.chunk_counts.resize(gi + 1, ChunkCounts::default());
        }
        gi
    }

    /// Marks every giant chunk overlapping `[start, start + pages)` dirty —
    /// called on mapping changes here and by the address space when a VMA
    /// appears, grows, or shrinks (which changes chunk mappability without
    /// touching any PTE).
    pub fn mark_span_dirty(&mut self, start: Vpn, pages: u64) {
        if pages == 0 {
            return;
        }
        let first = self.giant_index(start);
        let last = self.giant_index(start + (pages - 1));
        for gi in first..=last {
            self.dirty_chunks.insert(gi);
        }
    }

    /// Drains the set of giant-chunk indices touched since the last drain,
    /// in address order. The promotion daemon uses this to re-examine only
    /// chunks whose candidacy could have changed.
    ///
    /// Allocates a fresh `Vec` per call; steady-state callers should prefer
    /// [`PageTable::drain_dirty_chunks_into`].
    pub fn take_dirty_chunks(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        self.dirty_chunks.drain_into(&mut out);
        out
    }

    /// Drains the dirty-chunk set into `out` (cleared first) in address
    /// order, keeping both the bitmap's and the buffer's storage — the
    /// zero-alloc form of [`PageTable::take_dirty_chunks`].
    pub fn drain_dirty_chunks_into(&mut self, out: &mut Vec<u64>) {
        self.dirty_chunks.drain_into(out);
    }

    fn invalidate_walks(&mut self) {
        self.walk_stamp = self.walk_stamp.wrapping_add(1);
    }

    /// Number of leaves of the given size currently installed. A group
    /// leaf counts once, not once per member entry.
    #[must_use]
    pub fn mapped_pages(&self, size: PageSize) -> u64 {
        self.leaves[size.rung()]
    }

    /// Total mapped memory in base pages.
    #[must_use]
    pub fn mapped_base_pages(&self) -> u64 {
        self.geo
            .rungs()
            .map(|s| self.leaves[s.rung()] * self.geo.base_pages(s))
            .sum()
    }

    /// Total mapped memory in bytes attributable to leaves of `size`.
    #[must_use]
    pub fn mapped_bytes(&self, size: PageSize) -> u64 {
        self.leaves[size.rung()] * self.geo.bytes(size)
    }

    /// Installs a leaf of `size` mapping `vpn.. → pfn..`.
    ///
    /// Natural rungs install a single entry at their level; group rungs
    /// (NAPOT / contiguous spans) install `group_span` adjacent tagged
    /// entries, each pointing at its own frame, exactly as the underlying
    /// hardware lays them out.
    ///
    /// # Errors
    ///
    /// * [`MapError::Unaligned`] — `vpn` or `pfn` is not `size`-aligned.
    /// * [`MapError::Overlap`] — any base page of the span is already
    ///   mapped.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, size: PageSize) -> Result<(), MapError> {
        if !self.geo.is_page_aligned(vpn.raw(), size) || !self.geo.is_page_aligned(pfn.raw(), size)
        {
            return Err(MapError::Unaligned { vpn, size });
        }
        let class = self.geo.class(size);
        let span = self.geo.group_span(size) as usize;
        let rung_tag = self.geo.is_group(size).then_some(size.rung());
        let gi = self.giant_index(vpn);
        let gix = self.ensure_gi(gi);
        match class.level {
            3 => {
                assert!(
                    rung_tag.is_none(),
                    "group rungs above level 2 are not supported"
                );
                let slot = self.puds[gix];
                if slot.is_present() {
                    if !slot.is_table() || read_count(self.pmds.get(slot.table_index())) > 0 {
                        return Err(MapError::Overlap { vpn });
                    }
                    // An empty mid-level table can be replaced outright.
                    self.pmds.free(slot.table_index());
                }
                self.puds[gix] = RawPte::new_leaf(pfn);
            }
            2 => {
                let pi = self.pmd_index(vpn);
                let pmd_idx = self.pud_table_index(gix, vpn)?;
                // Every slot of the span must be free (an empty child
                // table counts as free and is reclaimed below).
                for k in 0..span {
                    let entry = self.pmds.get(pmd_idx)[pi + k];
                    if entry.is_present()
                        && (!entry.is_table() || read_count(self.ptes.get(entry.table_index())) > 0)
                    {
                        return Err(MapError::Overlap { vpn });
                    }
                }
                let mut replaced = 0u32;
                for k in 0..span {
                    let entry = self.pmds.get(pmd_idx)[pi + k];
                    if entry.is_present() {
                        // Replacing an empty leaf table keeps the slot
                        // occupied, so the PMD count is unchanged for it.
                        self.ptes.free(entry.table_index());
                        replaced += 1;
                    }
                }
                let level_span = 1u64 << self.geo.level_order(2);
                let table = self.pmds.get_mut(pmd_idx);
                let live = read_count(table);
                for k in 0..span {
                    let mut leaf = RawPte::new_leaf(pfn + (k as u64) * level_span);
                    if let Some(rung) = rung_tag {
                        leaf.set_group_rung(rung);
                    }
                    table[pi + k] = leaf;
                }
                write_count(table, live + span as u32 - replaced);
                self.chunk_counts[gix].mapped[size.rung()] += self.geo.base_pages(size) as u32;
            }
            _ => {
                let pi = self.pmd_index(vpn);
                let ti = self.pte_index(vpn);
                let pmd_idx = self.pud_table_index(gix, vpn)?;
                let entry = self.pmds.get(pmd_idx)[pi];
                let pte_idx = if entry.is_present() {
                    if !entry.is_table() {
                        return Err(MapError::Overlap { vpn });
                    }
                    entry.table_index()
                } else {
                    let pte_len = self.pte_len();
                    let idx = self.ptes.alloc(pte_len);
                    let table = self.pmds.get_mut(pmd_idx);
                    let live = read_count(table);
                    table[pi] = RawPte::table_ptr(idx);
                    write_count(table, live + 1);
                    idx
                };
                // Group-rung alignment keeps the span inside one table:
                // a level-1 group's order is below the level-2 order.
                let table = self.ptes.get_mut(pte_idx);
                if table[ti..ti + span].iter().any(|pte| pte.is_present()) {
                    return Err(MapError::Overlap { vpn });
                }
                let live = read_count(table);
                for (k, slot) in table[ti..ti + span].iter_mut().enumerate() {
                    let mut leaf = RawPte::new_leaf(pfn + k as u64);
                    if let Some(rung) = rung_tag {
                        leaf.set_group_rung(rung);
                    }
                    *slot = leaf;
                }
                write_count(table, live + span as u32);
                self.chunk_counts[gix].mapped[size.rung()] += self.geo.base_pages(size) as u32;
            }
        }
        self.leaves[size.rung()] += 1;
        self.dirty_chunks.insert(gi);
        Ok(())
    }

    /// Resolves (materializing if absent) the mid-level table for PUD slot
    /// `gix`, erroring when the slot holds a giant leaf.
    fn pud_table_index(&mut self, gix: usize, vpn: Vpn) -> Result<u32, MapError> {
        let slot = self.puds[gix];
        if !slot.is_present() {
            let pmd_len = self.pmd_len();
            let idx = self.pmds.alloc(pmd_len);
            self.puds[gix] = RawPte::table_ptr(idx);
            return Ok(idx);
        }
        if slot.is_table() {
            Ok(slot.table_index())
        } else {
            Err(MapError::Overlap { vpn })
        }
    }

    /// Walks the table for `vpn` without touching accessed/dirty bits.
    #[must_use]
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        if let Some(hit) = self.last_walk.get() {
            if hit.covers(vpn, self.walk_stamp) {
                return Some(hit.translation(vpn));
            }
        }
        let t = self.translate_slow(vpn)?;
        let pte = self.leaf_ref(t.head_vpn).expect("translation implies leaf");
        self.last_walk.set(Some(WalkerHit {
            head_vpn: t.head_vpn,
            head_pfn: t.head_pfn,
            pages: self.geo.base_pages(t.size),
            size: t.size,
            stamp: self.walk_stamp,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        }));
        Some(t)
    }

    fn translate_slow(&self, vpn: Vpn) -> Option<Translation> {
        let gi = usize::try_from(self.giant_index(vpn)).expect("giant index fits usize");
        let slot = *self.puds.get(gi)?;
        if !slot.is_present() {
            return None;
        }
        if !slot.is_table() {
            let size = self.natural_rung(3);
            let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), size));
            return Some(self.leaf_translation(vpn, head_vpn, slot, size));
        }
        let pmd = self.pmds.get(slot.table_index());
        let entry = pmd[self.pmd_index(vpn)];
        if !entry.is_present() {
            return None;
        }
        if !entry.is_table() {
            let size = self.entry_size(entry, 2);
            let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), size));
            // A group leaf's A/D state and head frame live on its head
            // member entry, which (by alignment) is in the same table.
            let head = pmd[self.pmd_index(head_vpn)];
            return Some(self.leaf_translation(vpn, head_vpn, head, size));
        }
        let table = self.ptes.get(entry.table_index());
        let pte = table[self.pte_index(vpn)];
        if !pte.is_present() {
            return None;
        }
        let size = self.entry_size(pte, 1);
        let head_vpn = Vpn::new(self.geo.align_down_page(vpn.raw(), size));
        let head = table[self.pte_index(head_vpn)];
        Some(self.leaf_translation(vpn, head_vpn, head, size))
    }

    fn leaf_translation(
        &self,
        vpn: Vpn,
        head_vpn: Vpn,
        pte: RawPte,
        size: PageSize,
    ) -> Translation {
        let offset = vpn - head_vpn;
        Translation {
            pfn: pte.pfn() + offset,
            size,
            head_vpn,
            head_pfn: pte.pfn(),
        }
    }

    /// Walks the table for `vpn` like the hardware does on a TLB miss,
    /// setting the accessed bit (and the dirty bit for writes) on the
    /// covering leaf's head entry.
    pub fn access(&mut self, vpn: Vpn, write: bool) -> Option<Translation> {
        // Walker-cache fast path: when the covering leaf already carries
        // the flags this access would set, no table walk is needed at all.
        if let Some(hit) = self.last_walk.get() {
            if hit.covers(vpn, self.walk_stamp) && hit.accessed && (!write || hit.dirty) {
                return Some(hit.translation(vpn));
            }
        }
        let translation = self.translate(vpn)?;
        let pte = self
            .leaf_mut(translation.head_vpn)
            .expect("translation implies leaf");
        pte.set_accessed();
        if write {
            pte.set_dirty();
        }
        if let Some(mut hit) = self.last_walk.get() {
            if hit.stamp == self.walk_stamp && hit.head_vpn == translation.head_vpn {
                hit.accessed = true;
                hit.dirty |= write;
                self.last_walk.set(Some(hit));
            }
        }
        Some(translation)
    }

    /// Mutable access to the leaf entry headed exactly at `head_vpn`.
    fn leaf_mut(&mut self, head_vpn: Vpn) -> Option<&mut RawPte> {
        let gi = usize::try_from(self.giant_index(head_vpn)).expect("giant index fits usize");
        let pmd_index = self.pmd_index(head_vpn);
        let pte_index = self.pte_index(head_vpn);
        let slot = *self.puds.get(gi)?;
        if !slot.is_present() {
            return None;
        }
        if !slot.is_table() {
            return Some(&mut self.puds[gi]);
        }
        let entry = self.pmds.get(slot.table_index())[pmd_index];
        if !entry.is_present() {
            return None;
        }
        if !entry.is_table() {
            return Some(&mut self.pmds.get_mut(slot.table_index())[pmd_index]);
        }
        let pte = &mut self.ptes.get_mut(entry.table_index())[pte_index];
        pte.is_present().then_some(pte)
    }

    /// Shared access to the leaf entry headed exactly at `head_vpn`.
    fn leaf_ref(&self, head_vpn: Vpn) -> Option<&RawPte> {
        let gi = usize::try_from(self.giant_index(head_vpn)).expect("giant index fits usize");
        let slot = self.puds.get(gi)?;
        if !slot.is_present() {
            return None;
        }
        if !slot.is_table() {
            return Some(slot);
        }
        let entry = &self.pmds.get(slot.table_index())[self.pmd_index(head_vpn)];
        if !entry.is_present() {
            return None;
        }
        if !entry.is_table() {
            return Some(entry);
        }
        let pte = &self.ptes.get(entry.table_index())[self.pte_index(head_vpn)];
        pte.is_present().then_some(pte)
    }

    /// Removes the leaf headed exactly at `head_vpn`, returning its record.
    ///
    /// # Errors
    ///
    /// * [`MapError::NotMapped`] — nothing is mapped at `head_vpn`.
    /// * [`MapError::NotAMappingHead`] — `head_vpn` lies inside a larger
    ///   leaf.
    pub fn unmap(&mut self, head_vpn: Vpn) -> Result<MappingRecord, MapError> {
        let translation = self
            .translate(head_vpn)
            .ok_or(MapError::NotMapped { vpn: head_vpn })?;
        if translation.head_vpn != head_vpn {
            return Err(MapError::NotAMappingHead { vpn: head_vpn });
        }
        let size = translation.size;
        let class = self.geo.class(size);
        let span = self.geo.group_span(size) as u32;
        let gi = self.giant_index(head_vpn);
        let gix = usize::try_from(gi).expect("giant index fits usize");
        let pmd_index = self.pmd_index(head_vpn);
        let pte_index = self.pte_index(head_vpn);
        let record;
        match class.level {
            3 => {
                let pte = self.puds[gix];
                debug_assert!(pte.is_present() && !pte.is_table());
                self.puds[gix] = RawPte::NOT_PRESENT;
                record = Self::record(head_vpn, pte, size);
            }
            2 => {
                let pmd_idx = self.puds[gix].table_index();
                let table = self.pmds.get_mut(pmd_idx);
                let pte = table[pmd_index];
                let live = read_count(table);
                for slot in &mut table[pmd_index..pmd_index + span as usize] {
                    *slot = RawPte::NOT_PRESENT;
                }
                if live == span {
                    self.pmds.free(pmd_idx);
                    self.puds[gix] = RawPte::NOT_PRESENT;
                } else {
                    write_count(table, live - span);
                }
                self.chunk_counts[gix].mapped[size.rung()] -= self.geo.base_pages(size) as u32;
                record = Self::record(head_vpn, pte, size);
            }
            _ => {
                let pmd_idx = self.puds[gix].table_index();
                let pte_idx = self.pmds.get(pmd_idx)[pmd_index].table_index();
                let table = self.ptes.get_mut(pte_idx);
                let pte = table[pte_index];
                let live = read_count(table);
                for slot in &mut table[pte_index..pte_index + span as usize] {
                    *slot = RawPte::NOT_PRESENT;
                }
                if live == span {
                    self.ptes.free(pte_idx);
                    let pmd = self.pmds.get_mut(pmd_idx);
                    let pmd_live = read_count(pmd);
                    pmd[pmd_index] = RawPte::NOT_PRESENT;
                    if pmd_live == 1 {
                        self.pmds.free(pmd_idx);
                        self.puds[gix] = RawPte::NOT_PRESENT;
                    } else {
                        write_count(pmd, pmd_live - 1);
                    }
                } else {
                    write_count(table, live - span);
                }
                self.chunk_counts[gix].mapped[size.rung()] -= self.geo.base_pages(size) as u32;
                record = Self::record(head_vpn, pte, size);
            }
        }
        self.leaves[size.rung()] -= 1;
        self.dirty_chunks.insert(gi);
        self.invalidate_walks();
        Ok(record)
    }

    fn record(vpn: Vpn, pte: RawPte, size: PageSize) -> MappingRecord {
        MappingRecord {
            vpn,
            pfn: pte.pfn(),
            size,
            accessed: pte.accessed(),
            dirty: pte.dirty(),
        }
    }

    /// Repoints the leaf headed at `head_vpn` to `new_head_pfn`, preserving
    /// flags, and returns the old head frame. Used by migration and by
    /// Trident_pv's copy-less exchange. For a group leaf, every member
    /// entry is repointed to its offset within the new span.
    ///
    /// # Errors
    ///
    /// * [`MapError::NotMapped`] / [`MapError::NotAMappingHead`] — as for
    ///   [`PageTable::unmap`].
    /// * [`MapError::Unaligned`] — `new_head_pfn` is not aligned for the
    ///   leaf's size.
    pub fn remap(&mut self, head_vpn: Vpn, new_head_pfn: Pfn) -> Result<Pfn, MapError> {
        let translation = self
            .translate(head_vpn)
            .ok_or(MapError::NotMapped { vpn: head_vpn })?;
        if translation.head_vpn != head_vpn {
            return Err(MapError::NotAMappingHead { vpn: head_vpn });
        }
        if !self
            .geo
            .is_page_aligned(new_head_pfn.raw(), translation.size)
        {
            return Err(MapError::Unaligned {
                vpn: head_vpn,
                size: translation.size,
            });
        }
        let size = translation.size;
        let span = self.geo.group_span(size);
        let old = translation.head_pfn;
        if span == 1 {
            let pte = self.leaf_mut(head_vpn).expect("translation implies leaf");
            pte.set_pfn(new_head_pfn);
        } else {
            let level_span = 1u64 << self.geo.level_order(self.geo.level(size));
            for k in 0..span {
                let member_vpn = head_vpn + k * level_span;
                let pte = self
                    .member_mut(member_vpn, self.geo.level(size))
                    .expect("translation implies every group member is present");
                pte.set_pfn(new_head_pfn + k * level_span);
            }
        }
        self.invalidate_walks();
        Ok(old)
    }

    /// Mutable access to the entry at `vpn`'s slot at `level` — used to
    /// reach the member entries of a group leaf, which `leaf_mut` (head
    /// resolution) cannot address individually.
    fn member_mut(&mut self, vpn: Vpn, level: u8) -> Option<&mut RawPte> {
        let gi = usize::try_from(self.giant_index(vpn)).expect("giant index fits usize");
        let pmd_index = self.pmd_index(vpn);
        let pte_index = self.pte_index(vpn);
        let slot = *self.puds.get(gi)?;
        if !slot.is_present() || !slot.is_table() {
            return None;
        }
        if level == 2 {
            let entry = &mut self.pmds.get_mut(slot.table_index())[pmd_index];
            return (entry.is_present() && !entry.is_table()).then_some(entry);
        }
        let entry = self.pmds.get(slot.table_index())[pmd_index];
        if !entry.is_present() || !entry.is_table() {
            return None;
        }
        let pte = &mut self.ptes.get_mut(entry.table_index())[pte_index];
        pte.is_present().then_some(pte)
    }

    /// Enumerates all leaves whose head lies in `[start, start + pages)`.
    ///
    /// Leaves that straddle the window boundary (a giant leaf around a
    /// smaller window) are *not* reported; scan windows should be aligned
    /// to the largest page size of interest.
    ///
    /// Allocates a fresh `Vec` per call; steady-state callers should prefer
    /// [`PageTable::mappings_into`].
    #[must_use]
    pub fn mappings_in(&self, start: Vpn, pages: u64) -> Vec<MappingRecord> {
        let mut out = Vec::new();
        self.mappings_into(start, pages, &mut out);
        out
    }

    /// Enumerates all leaves whose head lies in `[start, start + pages)`
    /// into `out` (cleared first), reusing the buffer's storage — the
    /// zero-alloc form of [`PageTable::mappings_in`].
    pub fn mappings_into(&self, start: Vpn, pages: u64, out: &mut Vec<MappingRecord>) {
        out.clear();
        self.for_each_leaf_in(start, pages, |vpn, pte, size| {
            out.push(Self::record(vpn, pte, size));
        });
    }

    /// Visits every leaf headed in `[start, start + pages)` in address
    /// order by walking the packed radix directly — no per-page translate,
    /// no allocation. A group leaf is visited once, at its head entry;
    /// member entries are skipped.
    fn for_each_leaf_in(
        &self,
        start: Vpn,
        pages: u64,
        mut visit: impl FnMut(Vpn, RawPte, PageSize),
    ) {
        if pages == 0 {
            return;
        }
        let start = start.raw();
        let end = start + pages;
        let giant_span = 1u64 << self.geo.level_order(3);
        let huge_span = 1u64 << self.geo.level_order(2);
        let top = self.natural_rung(3);
        let first_gi = start / giant_span;
        let last_gi = (end - 1) / giant_span;
        for gi in first_gi..=last_gi {
            let Some(&slot) = self
                .puds
                .get(usize::try_from(gi).expect("giant index fits usize"))
            else {
                // The dense directory covers every mapped chunk; past its
                // end there is nothing left to visit.
                return;
            };
            if !slot.is_present() {
                continue;
            }
            let chunk_base = gi * giant_span;
            if !slot.is_table() {
                if chunk_base >= start {
                    visit(Vpn::new(chunk_base), slot, top);
                }
                continue;
            }
            let pmd = self.pmds.get(slot.table_index());
            let chunk_end = chunk_base + giant_span;
            let pi_lo = (start.max(chunk_base) - chunk_base) / huge_span;
            let pi_hi = (end.min(chunk_end) - 1 - chunk_base) / huge_span;
            for pi in pi_lo..=pi_hi {
                let entry = pmd[pi as usize];
                if !entry.is_present() {
                    continue;
                }
                let head = chunk_base + pi * huge_span;
                if !entry.is_table() {
                    let size = self.entry_size(entry, 2);
                    // Only the head member of a group leaf reports it.
                    if self.geo.align_down_page(head, size) == head && head >= start {
                        visit(Vpn::new(head), entry, size);
                    }
                    continue;
                }
                let table = self.ptes.get(entry.table_index());
                let ti_lo = start.max(head) - head;
                let ti_hi = end.min(head + huge_span) - head;
                for ti in ti_lo..ti_hi {
                    let pte = table[ti as usize];
                    if !pte.is_present() {
                        continue;
                    }
                    let vpn = head + ti;
                    let size = self.entry_size(pte, 1);
                    if self.geo.align_down_page(vpn, size) == vpn {
                        visit(Vpn::new(vpn), pte, size);
                    }
                }
            }
        }
    }

    /// Tallies the present entries of a leaf table window into a profile,
    /// attributing each entry to its rung (group members count toward
    /// their group's rung).
    fn tally_ptes(&self, table: &[RawPte], lo: usize, hi: usize, profile: &mut ChunkProfile) {
        for pte in &table[lo..hi] {
            if pte.is_present() {
                profile.mapped[self.entry_size(*pte, 1).rung()] += 1;
            } else {
                profile.unmapped += 1;
            }
        }
    }

    /// Summarizes how the aligned chunk of `size` starting at `start` is
    /// mapped. `start` must be `size`-aligned.
    ///
    /// A top-rung chunk profile reads the per-chunk occupancy totals —
    /// O(1), cheap enough for the fault path's promotion-eligibility
    /// check — and on ladders without PTE-level group rungs a level-2
    /// chunk profile reads one packed table count.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not aligned to `size`.
    #[must_use]
    pub fn chunk_profile(&self, start: Vpn, size: PageSize) -> ChunkProfile {
        assert!(
            self.geo.is_page_aligned(start.raw(), size),
            "chunk_profile start must be size-aligned"
        );
        let span = self.geo.base_pages(size);
        let top = self.natural_rung(3);
        let mut profile = ChunkProfile::default();
        let gi = usize::try_from(self.giant_index(start)).expect("giant index fits usize");
        let Some(&slot) = self.puds.get(gi) else {
            profile.unmapped = span;
            return profile;
        };
        if !slot.is_present() {
            profile.unmapped = span;
            return profile;
        }
        if !slot.is_table() {
            profile.mapped[top.rung()] = span;
            return profile;
        }
        if size == top {
            let counts = self.chunk_counts[gi];
            for (rung, count) in counts.mapped.iter().enumerate() {
                profile.mapped[rung] = u64::from(*count);
            }
            profile.unmapped = span - profile.mapped_total();
            return profile;
        }
        let huge_span = 1u64 << self.geo.level_order(2);
        let pmd = self.pmds.get(slot.table_index());
        if span >= huge_span {
            // The window covers whole PMD entries.
            let pi = self.pmd_index(start);
            for entry in &pmd[pi..pi + (span / huge_span) as usize] {
                if !entry.is_present() {
                    profile.unmapped += huge_span;
                } else if !entry.is_table() {
                    profile.mapped[self.entry_size(*entry, 2).rung()] += huge_span;
                } else if self.l1_groups {
                    let table = self.ptes.get(entry.table_index());
                    self.tally_ptes(table, 0, table.len(), &mut profile);
                } else {
                    let live = u64::from(read_count(self.ptes.get(entry.table_index())));
                    profile.mapped[0] += live;
                    profile.unmapped += huge_span - live;
                }
            }
        } else {
            // The window lies inside one PMD entry (a base page or a
            // PTE-level group span).
            let entry = pmd[self.pmd_index(start)];
            if !entry.is_present() {
                profile.unmapped = span;
            } else if !entry.is_table() {
                profile.mapped[self.entry_size(entry, 2).rung()] = span;
            } else {
                let ti = self.pte_index(start);
                let table = self.ptes.get(entry.table_index());
                self.tally_ptes(table, ti, ti + span as usize, &mut profile);
            }
        }
        profile
    }

    /// Clears accessed bits on every leaf in the window — the sampling-
    /// interval reset of the paper's Figure 4 methodology. Walks the packed
    /// radix in place; no enumeration buffer.
    pub fn clear_accessed_in(&mut self, start: Vpn, pages: u64) {
        if pages == 0 {
            self.invalidate_walks();
            return;
        }
        let start = start.raw();
        let end = start + pages;
        let giant_span = 1u64 << self.geo.level_order(3);
        let huge_span = 1u64 << self.geo.level_order(2);
        let first_gi = start / giant_span;
        let last_gi = ((end - 1) / giant_span).min(self.puds.len().saturating_sub(1) as u64);
        for gi in first_gi..=last_gi {
            let gix = usize::try_from(gi).expect("giant index fits usize");
            if gix >= self.puds.len() {
                break;
            }
            let slot = self.puds[gix];
            if !slot.is_present() {
                continue;
            }
            let chunk_base = gi * giant_span;
            if !slot.is_table() {
                if chunk_base >= start {
                    self.puds[gix].clear_accessed();
                }
                continue;
            }
            let pmd_idx = slot.table_index();
            let chunk_end = chunk_base + giant_span;
            let pi_lo = (start.max(chunk_base) - chunk_base) / huge_span;
            let pi_hi = (end.min(chunk_end) - 1 - chunk_base) / huge_span;
            for pi in pi_lo..=pi_hi {
                let entry = self.pmds.get(pmd_idx)[pi as usize];
                if !entry.is_present() {
                    continue;
                }
                let head = chunk_base + pi * huge_span;
                if !entry.is_table() {
                    // Clearing member entries of a group leaf is harmless:
                    // only the head entry's bits are ever read.
                    if head >= start {
                        self.pmds.get_mut(pmd_idx)[pi as usize].clear_accessed();
                    }
                    continue;
                }
                let table = self.ptes.get_mut(entry.table_index());
                let ti_lo = start.max(head) - head;
                let ti_hi = end.min(head + huge_span) - head;
                for pte in &mut table[ti_lo as usize..ti_hi as usize] {
                    if pte.is_present() {
                        pte.clear_accessed();
                    }
                }
            }
        }
        self.invalidate_walks();
    }

    /// Counts leaves in the window whose accessed bit is set.
    #[must_use]
    pub fn accessed_leaves_in(&self, start: Vpn, pages: u64) -> u64 {
        let mut count = 0;
        self.for_each_leaf_in(start, pages, |_, pte, _| {
            count += u64::from(pte.accessed());
        });
        count
    }
}

/// Extension: align a page number down to a page-size boundary.
trait AlignPage {
    fn align_down_page(&self, page: u64, size: PageSize) -> u64;
}

impl AlignPage for PageGeometry {
    fn align_down_page(&self, page: u64, size: PageSize) -> u64 {
        page & !(self.base_pages(size) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: PageSize = PageSize::BASE;
    const HUGE: PageSize = PageSize::new(1);
    const GIANT: PageSize = PageSize::new(2);

    fn pt() -> PageTable {
        PageTable::new(PageGeometry::TINY) // huge = 8 pages, giant = 64
    }

    /// An sv48-flavored ladder with a PTE-level group rung between base
    /// and huge: base, 4-page NAPOT group, huge (8), giant (64).
    fn napot_pt() -> PageTable {
        PageTable::new(PageGeometry::TINY_NAPOT)
    }

    #[test]
    fn map_translate_all_sizes() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(64), GIANT).unwrap();
        t.map(Vpn::new(64), Pfn::new(8), HUGE).unwrap();
        t.map(Vpn::new(72), Pfn::new(3), BASE).unwrap();
        assert_eq!(
            t.translate(Vpn::new(10)).unwrap(),
            Translation {
                pfn: Pfn::new(74),
                size: GIANT,
                head_vpn: Vpn::new(0),
                head_pfn: Pfn::new(64),
            }
        );
        assert_eq!(t.translate(Vpn::new(65)).unwrap().pfn, Pfn::new(9));
        assert_eq!(t.translate(Vpn::new(72)).unwrap().size, BASE);
        assert_eq!(t.translate(Vpn::new(73)), None);
        assert_eq!(t.mapped_base_pages(), 64 + 8 + 1);
    }

    #[test]
    fn misaligned_maps_are_rejected() {
        let mut t = pt();
        assert_eq!(
            t.map(Vpn::new(1), Pfn::new(0), HUGE),
            Err(MapError::Unaligned {
                vpn: Vpn::new(1),
                size: HUGE
            })
        );
        // Physical misalignment too.
        assert_eq!(
            t.map(Vpn::new(8), Pfn::new(3), HUGE),
            Err(MapError::Unaligned {
                vpn: Vpn::new(8),
                size: HUGE
            })
        );
    }

    #[test]
    fn overlaps_are_rejected_in_both_directions() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(0), BASE).unwrap();
        // A giant over a base-mapped region.
        assert_eq!(
            t.map(Vpn::new(0), Pfn::new(64), GIANT),
            Err(MapError::Overlap { vpn: Vpn::new(0) })
        );
        // A huge over the base page.
        assert_eq!(
            t.map(Vpn::new(0), Pfn::new(8), HUGE),
            Err(MapError::Overlap { vpn: Vpn::new(0) })
        );
        let mut t2 = pt();
        t2.map(Vpn::new(0), Pfn::new(64), GIANT).unwrap();
        assert_eq!(
            t2.map(Vpn::new(8), Pfn::new(8), HUGE),
            Err(MapError::Overlap { vpn: Vpn::new(8) })
        );
        assert_eq!(
            t2.map(Vpn::new(5), Pfn::new(5), BASE),
            Err(MapError::Overlap { vpn: Vpn::new(5) })
        );
    }

    #[test]
    fn unmap_requires_head_and_cleans_tables() {
        let mut t = pt();
        t.map(Vpn::new(64), Pfn::new(8), HUGE).unwrap();
        assert_eq!(
            t.unmap(Vpn::new(65)),
            Err(MapError::NotAMappingHead { vpn: Vpn::new(65) })
        );
        let rec = t.unmap(Vpn::new(64)).unwrap();
        assert_eq!(rec.pfn, Pfn::new(8));
        assert_eq!(rec.size, HUGE);
        assert_eq!(t.mapped_base_pages(), 0);
        // Table was cleaned: remapping a giant over the same index works.
        t.map(Vpn::new(64), Pfn::new(64), GIANT).unwrap();
    }

    #[test]
    fn unmap_base_page_frees_empty_pte_table() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(0), BASE).unwrap();
        t.unmap(Vpn::new(0)).unwrap();
        // Whole giant index is clean again.
        t.map(Vpn::new(0), Pfn::new(64), GIANT).unwrap();
    }

    #[test]
    fn access_sets_bits_translate_does_not() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), HUGE).unwrap();
        let _ = t.translate(Vpn::new(3));
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 0);
        t.access(Vpn::new(3), false).unwrap();
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 1);
        t.access(Vpn::new(4), true).unwrap();
        let rec = t.mappings_in(Vpn::new(0), 8)[0];
        assert!(rec.dirty);
        t.clear_accessed_in(Vpn::new(0), 8);
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 8), 0);
        // Dirty survives an accessed clear.
        assert!(t.mappings_in(Vpn::new(0), 8)[0].dirty);
    }

    #[test]
    fn remap_preserves_flags_and_returns_old() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), HUGE).unwrap();
        t.access(Vpn::new(0), true).unwrap();
        let old = t.remap(Vpn::new(0), Pfn::new(16)).unwrap();
        assert_eq!(old, Pfn::new(8));
        let rec = t.mappings_in(Vpn::new(0), 8)[0];
        assert_eq!(rec.pfn, Pfn::new(16));
        assert!(rec.accessed && rec.dirty);
        // Misaligned target rejected.
        assert!(matches!(
            t.remap(Vpn::new(0), Pfn::new(3)),
            Err(MapError::Unaligned { .. })
        ));
    }

    #[test]
    fn chunk_profile_accounts_every_base_page() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), HUGE).unwrap(); // 8 pages
        t.map(Vpn::new(8), Pfn::new(1), BASE).unwrap();
        let p = t.chunk_profile(Vpn::new(0), GIANT);
        assert_eq!(p.mapped_at(HUGE), 8);
        assert_eq!(p.mapped_at(BASE), 1);
        assert_eq!(p.mapped_at(GIANT), 0);
        assert_eq!(p.unmapped, 64 - 9);
        assert_eq!(p.mapped_total() + p.unmapped, 64);
        assert_eq!(p.mapped_below(HUGE), 1);
    }

    #[test]
    fn mappings_in_skips_straddling_leaves() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(64), GIANT).unwrap();
        // Window starts inside the giant leaf: the leaf head is outside.
        assert!(t.mappings_in(Vpn::new(8), 8).is_empty());
        assert_eq!(t.mappings_in(Vpn::new(0), 64).len(), 1);
    }

    #[test]
    fn leaf_counters_track_mapping_churn() {
        let mut t = pt();
        for i in 0..4 {
            t.map(Vpn::new(i), Pfn::new(i), BASE).unwrap();
        }
        t.map(Vpn::new(64), Pfn::new(8), HUGE).unwrap();
        assert_eq!(t.mapped_pages(BASE), 4);
        assert_eq!(t.mapped_pages(HUGE), 1);
        assert_eq!(t.mapped_bytes(HUGE), 8 * 4096);
        t.unmap(Vpn::new(2)).unwrap();
        assert_eq!(t.mapped_pages(BASE), 3);
    }

    #[test]
    fn packed_counts_survive_count_bit_entry_churn() {
        // The occupancy count lives in the avail bits of a table's first
        // entries — exercise mapping/unmapping exactly those entries.
        let mut t = pt();
        for i in 0..8 {
            t.map(Vpn::new(i), Pfn::new(i), BASE).unwrap();
        }
        let p = t.chunk_profile(Vpn::new(0), HUGE);
        assert_eq!(p.mapped_at(BASE), 8);
        // Remove entries 0..4 (count-bit carriers for an 8-entry table).
        for i in 0..4 {
            t.unmap(Vpn::new(i)).unwrap();
        }
        let p = t.chunk_profile(Vpn::new(0), HUGE);
        assert_eq!(p.mapped_at(BASE), 4);
        assert_eq!(p.unmapped, 4);
        for i in 0..4 {
            t.map(Vpn::new(i), Pfn::new(20 + i), BASE).unwrap();
        }
        assert_eq!(t.chunk_profile(Vpn::new(0), HUGE).mapped_at(BASE), 8);
        for i in 0..8 {
            t.unmap(Vpn::new(i)).unwrap();
        }
        assert_eq!(t.chunk_profile(Vpn::new(0), HUGE).unmapped, 8);
        assert_eq!(t.mapped_base_pages(), 0);
    }

    #[test]
    fn giant_chunk_profile_matches_counts_after_churn() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), HUGE).unwrap();
        t.map(Vpn::new(8), Pfn::new(16), HUGE).unwrap();
        t.map(Vpn::new(16), Pfn::new(1), BASE).unwrap();
        t.unmap(Vpn::new(8)).unwrap();
        let p = t.chunk_profile(Vpn::new(0), GIANT);
        assert_eq!(p.mapped_at(HUGE), 8);
        assert_eq!(p.mapped_at(BASE), 1);
        assert_eq!(p.unmapped, 64 - 9);
    }

    #[test]
    fn arena_slots_are_reused_after_teardown() {
        let mut t = pt();
        for round in 0..5u64 {
            for i in 0..8 {
                t.map(Vpn::new(i), Pfn::new(round * 8 + i), BASE).unwrap();
            }
            for i in 0..8 {
                t.unmap(Vpn::new(i)).unwrap();
            }
        }
        // Churn reused the freed table slots instead of growing the arenas.
        assert!(t.pmds.num_tables() <= 1);
        assert!(t.ptes.num_tables() <= 1);
    }

    #[test]
    fn mappings_into_reuses_buffer() {
        let mut t = pt();
        t.map(Vpn::new(0), Pfn::new(8), HUGE).unwrap();
        t.map(Vpn::new(9), Pfn::new(2), BASE).unwrap();
        let stale = MappingRecord {
            vpn: Vpn::new(999),
            pfn: Pfn::new(999),
            size: BASE,
            accessed: false,
            dirty: false,
        };
        let mut buf = vec![stale];
        t.mappings_into(Vpn::new(0), 64, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].vpn, Vpn::new(0));
        assert_eq!(buf[1].vpn, Vpn::new(9));
        assert_eq!(buf, t.mappings_in(Vpn::new(0), 64));
    }

    #[test]
    fn dirty_chunk_drain_is_in_address_order_and_in_place() {
        let mut t = pt();
        t.mark_span_dirty(Vpn::new(128), 64); // chunk 2
        t.mark_span_dirty(Vpn::new(0), 1); // chunk 0
        let mut buf = Vec::new();
        t.drain_dirty_chunks_into(&mut buf);
        assert_eq!(buf, vec![0, 2]);
        t.drain_dirty_chunks_into(&mut buf);
        assert!(buf.is_empty());
        assert!(t.take_dirty_chunks().is_empty());
    }

    // --- group-leaf (NAPOT / contiguous-span) behavior ---

    #[test]
    fn napot_group_maps_and_translates_like_one_leaf() {
        let mut t = napot_pt();
        let geo = t.geometry();
        let napot = PageSize::new(1);
        assert!(geo.is_group(napot));
        assert_eq!(geo.base_pages(napot), 4);
        t.map(Vpn::new(4), Pfn::new(16), napot).unwrap();
        // Any page of the span resolves to the group head.
        for i in 0..4 {
            let tr = t.translate(Vpn::new(4 + i)).unwrap();
            assert_eq!(tr.size, napot);
            assert_eq!(tr.head_vpn, Vpn::new(4));
            assert_eq!(tr.head_pfn, Pfn::new(16));
            assert_eq!(tr.pfn, Pfn::new(16 + i));
        }
        assert_eq!(t.mapped_pages(napot), 1);
        assert_eq!(t.mapped_base_pages(), 4);
        // The scan reports the group once, at its head.
        let recs = t.mappings_in(Vpn::new(0), 64);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].vpn, Vpn::new(4));
        assert_eq!(recs[0].size, napot);
    }

    #[test]
    fn napot_group_rejects_misalignment_and_overlap() {
        let mut t = napot_pt();
        let napot = PageSize::new(1);
        assert!(matches!(
            t.map(Vpn::new(2), Pfn::new(16), napot),
            Err(MapError::Unaligned { .. })
        ));
        t.map(Vpn::new(5), Pfn::new(1), PageSize::BASE).unwrap();
        // A group over an existing base page inside its span.
        assert_eq!(
            t.map(Vpn::new(4), Pfn::new(16), napot),
            Err(MapError::Overlap { vpn: Vpn::new(4) })
        );
        t.unmap(Vpn::new(5)).unwrap();
        t.map(Vpn::new(4), Pfn::new(16), napot).unwrap();
        // A base page over a group member.
        assert_eq!(
            t.map(Vpn::new(6), Pfn::new(2), PageSize::BASE),
            Err(MapError::Overlap { vpn: Vpn::new(6) })
        );
    }

    #[test]
    fn napot_group_unmap_and_remap_cover_every_member() {
        let mut t = napot_pt();
        let napot = PageSize::new(1);
        t.map(Vpn::new(8), Pfn::new(32), napot).unwrap();
        t.access(Vpn::new(9), true).unwrap();
        // A/D lives on the head entry.
        assert_eq!(t.accessed_leaves_in(Vpn::new(0), 64), 1);
        // Member pages are not mapping heads.
        assert_eq!(
            t.unmap(Vpn::new(9)),
            Err(MapError::NotAMappingHead { vpn: Vpn::new(9) })
        );
        // Remap repoints every member.
        let old = t.remap(Vpn::new(8), Pfn::new(64)).unwrap();
        assert_eq!(old, Pfn::new(32));
        assert_eq!(t.translate(Vpn::new(11)).unwrap().pfn, Pfn::new(67));
        let rec = t.unmap(Vpn::new(8)).unwrap();
        assert_eq!(rec.size, napot);
        assert_eq!(rec.pfn, Pfn::new(64));
        assert!(rec.accessed && rec.dirty);
        assert_eq!(t.mapped_base_pages(), 0);
        assert_eq!(t.translate(Vpn::new(9)), None);
        // Tables were torn down: a giant map over the chunk works.
        t.map(Vpn::new(0), Pfn::new(64), PageSize::new(3)).unwrap();
    }

    #[test]
    fn chunk_profile_attributes_group_members_to_their_rung() {
        let mut t = napot_pt();
        let napot = PageSize::new(1);
        let huge = PageSize::new(2);
        let giant = PageSize::new(3);
        t.map(Vpn::new(0), Pfn::new(16), napot).unwrap();
        t.map(Vpn::new(6), Pfn::new(1), PageSize::BASE).unwrap();
        t.map(Vpn::new(8), Pfn::new(8), huge).unwrap();
        let p = t.chunk_profile(Vpn::new(0), giant);
        assert_eq!(p.mapped_at(napot), 4);
        assert_eq!(p.mapped_at(PageSize::BASE), 1);
        assert_eq!(p.mapped_at(huge), 8);
        assert_eq!(p.unmapped, 64 - 13);
        // The level-2 window sweep splits base from group pages too.
        let p = t.chunk_profile(Vpn::new(0), huge);
        assert_eq!(p.mapped_at(napot), 4);
        assert_eq!(p.mapped_at(PageSize::BASE), 1);
        assert_eq!(p.unmapped, 3);
        // A group-sized window inside a huge leaf reports the huge rung.
        let p = t.chunk_profile(Vpn::new(12), napot);
        assert_eq!(p.mapped_at(huge), 4);
    }
}
