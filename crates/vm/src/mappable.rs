//! Mappability analysis (§4.3, Figures 3 and 4).
//!
//! A virtual range is mappable by a large page only if it is at least as
//! long as that page and starts at a page-size-aligned boundary. These
//! helpers compute, for a whole address space, how much memory each page
//! size could map — the quantity the paper plots over time for Graph500 and
//! SVM — and enumerate the chunks a promotion scan should consider.

use trident_types::{PageSize, Vpn};

use crate::{AddressSpace, ChunkProfile};

/// Total bytes of the address space mappable with pages of `size`.
///
/// Every 1GB-mappable byte is also 2MB-mappable, so
/// `mappable_bytes(s, huge) >= mappable_bytes(s, giant)` always holds; the
/// gap between the two is the memory that *must* fall back to 2MB pages
/// (Figure 3's shaded gap).
///
/// Reads the address space's incrementally maintained counters in O(1);
/// [`mappable_bytes_scan`] is the from-scratch reference the counters are
/// verified against.
#[must_use]
pub fn mappable_bytes(space: &AddressSpace, size: PageSize) -> u64 {
    space.mappable_bytes(size)
}

/// [`mappable_bytes`] computed by a full scan over every VMA — the
/// reference implementation, kept for property tests and benchmarks that
/// compare it against the incremental counters.
#[must_use]
pub fn mappable_bytes_scan(space: &AddressSpace, size: PageSize) -> u64 {
    let geo = space.geometry();
    space.vmas().map(|v| v.mappable_bytes(&geo, size)).sum()
}

/// Enumerates the start pages of all `size`-aligned chunks that lie fully
/// inside a VMA — the candidate set for mapping or promoting at `size`.
#[must_use]
pub fn mappable_ranges(space: &AddressSpace, size: PageSize) -> Vec<Vpn> {
    let geo = space.geometry();
    space
        .vmas()
        .flat_map(|v| v.aligned_chunks(&geo, size))
        .collect()
}

/// Enumerates chunks worth promoting to `size`: mappable chunks that are
/// not yet mapped at `size` and already have some smaller-mapped memory in
/// them (promoting a fully unmapped chunk would be pure bloat).
///
/// Returns `(chunk start, profile)` pairs in address order — the order in
/// which `khugepaged` scans.
#[must_use]
pub fn promotion_candidates(space: &AddressSpace, size: PageSize) -> Vec<(Vpn, ChunkProfile)> {
    mappable_ranges(space, size)
        .into_iter()
        .filter_map(|start| {
            let profile = space.page_table().chunk_profile(start, size);
            // Already promoted if anything at this rung or above maps
            // (part of) the chunk; the base rung is never a target.
            let already =
                size.is_base() || profile.mapped[size.rung()..].iter().any(|&pages| pages > 0);
            (!already && profile.mapped_total() > 0).then_some((start, profile))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmaKind;
    use trident_types::{AsId, PageGeometry, Pfn};

    fn space_with_layout() -> AddressSpace {
        let mut s = AddressSpace::new(AsId::new(1), PageGeometry::TINY);
        // One giant-aligned 2-giant VMA and one unaligned huge-only VMA.
        s.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        s.mmap_at(Vpn::new(200), 24, VmaKind::Anon).unwrap();
        s
    }

    #[test]
    fn giant_mappable_is_subset_of_huge_mappable() {
        let s = space_with_layout();
        let huge = mappable_bytes(&s, PageSize::new(1));
        let giant = mappable_bytes(&s, PageSize::new(2));
        assert_eq!(giant, 128 * 4096);
        // Second VMA [200, 224): huge-aligned [200, 224) = 24 pages.
        assert_eq!(huge, (128 + 24) * 4096);
        assert!(huge >= giant);
    }

    #[test]
    fn mappable_ranges_enumerates_chunk_heads() {
        let s = space_with_layout();
        let giants = mappable_ranges(&s, PageSize::new(2));
        assert_eq!(giants, vec![Vpn::new(0), Vpn::new(64)]);
        let huges = mappable_ranges(&s, PageSize::new(1));
        assert_eq!(huges.len(), 16 + 3);
    }

    #[test]
    fn promotion_candidates_skip_empty_and_already_promoted() {
        let mut s = space_with_layout();
        // Map a few base pages in the first giant chunk only.
        for i in 0..4 {
            s.page_table_mut()
                .map(Vpn::new(i), Pfn::new(i), PageSize::BASE)
                .unwrap();
        }
        let cands = promotion_candidates(&s, PageSize::new(2));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0, Vpn::new(0));
        assert_eq!(cands[0].1.mapped_at(PageSize::BASE), 4);
        // After promoting (map a giant leaf), no candidates remain.
        let mut s2 = space_with_layout();
        s2.page_table_mut()
            .map(Vpn::new(0), Pfn::new(0), PageSize::new(2))
            .unwrap();
        assert!(promotion_candidates(&s2, PageSize::new(2)).is_empty());
    }

    #[test]
    fn huge_candidates_exclude_chunks_under_giant_leaves() {
        let mut s = space_with_layout();
        s.page_table_mut()
            .map(Vpn::new(0), Pfn::new(0), PageSize::new(2))
            .unwrap();
        for (start, _) in promotion_candidates(&s, PageSize::new(1)) {
            assert!(start.raw() >= 64, "chunk {start} is inside the giant leaf");
        }
    }
}
