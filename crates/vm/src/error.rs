//! Errors for page-table and address-space manipulation.
//!
//! Since the workspace-wide error unification [`MapError`] is an alias of
//! [`trident_types::TridentError`], so mapping failures flow through fault
//! handling and policies without wrapper enums.

pub use trident_types::TridentError;

/// Errors raised when manipulating mappings.
///
/// Alias of the unified [`TridentError`]; the variants used here are
/// `Unaligned`, `Overlap`, `NotMapped`, `NotAMappingHead` and
/// `NoVirtualSpace`.
pub type MapError = TridentError;

#[cfg(test)]
mod tests {
    use trident_types::{PageSize, Vpn};

    use super::*;

    #[test]
    fn display_mentions_the_page() {
        let e = MapError::Overlap { vpn: Vpn::new(16) };
        assert!(e.to_string().contains("0x10"));
        let u = MapError::Unaligned {
            vpn: Vpn::new(3),
            size: PageSize::new(2),
        };
        assert!(u.to_string().contains("rung-2"));
    }
}
