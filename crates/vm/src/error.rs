//! Errors for page-table and address-space manipulation.

use core::fmt;
use std::error::Error;

use trident_types::{PageSize, Vpn};

/// Errors raised when manipulating mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapError {
    /// The virtual or physical page number is not aligned to the page size.
    Unaligned {
        /// The offending virtual page.
        vpn: Vpn,
        /// The requested page size.
        size: PageSize,
    },
    /// Part of the requested span is already mapped.
    Overlap {
        /// The virtual page where the conflict was found.
        vpn: Vpn,
    },
    /// No mapping exists where one was expected.
    NotMapped {
        /// The virtual page that was expected to be mapped.
        vpn: Vpn,
    },
    /// The operation requires the head page of a mapping, but `vpn` lies in
    /// the middle of a larger leaf.
    NotAMappingHead {
        /// The offending virtual page.
        vpn: Vpn,
    },
    /// The requested virtual address range does not fit in any hole of the
    /// address space.
    NoVirtualSpace {
        /// The number of bytes requested.
        bytes: u64,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unaligned { vpn, size } => {
                write!(f, "page {vpn} is not aligned for a {size} mapping")
            }
            MapError::Overlap { vpn } => write!(f, "page {vpn} is already mapped"),
            MapError::NotMapped { vpn } => write!(f, "page {vpn} is not mapped"),
            MapError::NotAMappingHead { vpn } => {
                write!(f, "page {vpn} is not the head of a mapping")
            }
            MapError::NoVirtualSpace { bytes } => {
                write!(f, "no virtual-address hole of {bytes} bytes available")
            }
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_page() {
        let e = MapError::Overlap { vpn: Vpn::new(16) };
        assert!(e.to_string().contains("0x10"));
        let u = MapError::Unaligned {
            vpn: Vpn::new(3),
            size: PageSize::Giant,
        };
        assert!(u.to_string().contains("1GB"));
    }
}
