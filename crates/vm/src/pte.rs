//! Packed page-table entries.
//!
//! Entries are packed into a single `u64` the way x86-64 hardware does it:
//! a present bit, accessed/dirty bits (set by the simulated hardware walker,
//! cleared by software — the mechanism behind the paper's Figure 4
//! TLB-miss-frequency measurement), and the frame number in the upper bits.

use trident_types::Pfn;

/// A packed leaf page-table entry.
///
/// # Examples
///
/// ```
/// use trident_types::Pfn;
/// use trident_vm::RawPte;
///
/// let mut pte = RawPte::new_leaf(Pfn::new(0x1234));
/// assert!(pte.is_present());
/// assert!(!pte.accessed());
/// pte.set_accessed();
/// assert!(pte.accessed());
/// assert_eq!(pte.pfn(), Pfn::new(0x1234));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RawPte(u64);

impl RawPte {
    const PRESENT: u64 = 1 << 0;
    /// Software tag (bits 1..=3, unused by the modeled walker) carrying
    /// the ladder rung of a *group* leaf — a NAPOT or contiguous-bit
    /// mapping realized as multiple adjacent entries at one level. Zero
    /// means "natural leaf for this level"; group rungs are never rung 0
    /// (the base rung is always a natural PTE), so the rung index itself
    /// can be stored.
    const GROUP_SHIFT: u32 = 1;
    const GROUP_MASK: u64 = 0b111 << Self::GROUP_SHIFT;
    const ACCESSED: u64 = 1 << 5;
    const DIRTY: u64 = 1 << 6;
    /// x86's first software-available bit (bit 9). The hardware walker
    /// never reads it, so tables borrow it to store their occupancy count
    /// one bit per entry (see `PageTable`'s `set_count`/`read_count`).
    const AVAIL: u64 = 1 << 9;
    /// Software tag (another avail bit, bit 10) marking a non-leaf entry:
    /// the "frame number" field then holds the arena index of the next-
    /// level table instead of a physical frame.
    const TABLE: u64 = 1 << 10;
    const PFN_SHIFT: u32 = 12;

    /// The canonical non-present entry.
    pub const NOT_PRESENT: RawPte = RawPte(0);

    /// Creates a present leaf entry pointing at `pfn`, with clear
    /// accessed/dirty bits.
    #[must_use]
    pub fn new_leaf(pfn: Pfn) -> RawPte {
        RawPte(Self::PRESENT | (pfn.raw() << Self::PFN_SHIFT))
    }

    /// Whether the entry maps anything.
    #[must_use]
    pub fn is_present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// The frame number this entry points at.
    ///
    /// Meaningful only when [`RawPte::is_present`]; returns frame 0 for a
    /// non-present entry.
    #[must_use]
    pub fn pfn(self) -> Pfn {
        Pfn::new(self.0 >> Self::PFN_SHIFT)
    }

    /// Repoints the entry at a new frame, preserving flag bits — what a
    /// migration (or Trident_pv's mapping exchange) does.
    pub fn set_pfn(&mut self, pfn: Pfn) {
        self.0 = (self.0 & ((1 << Self::PFN_SHIFT) - 1)) | (pfn.raw() << Self::PFN_SHIFT);
    }

    /// Whether the hardware walker has set the accessed bit since it was
    /// last cleared.
    #[must_use]
    pub fn accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    /// Sets the accessed bit (a TLB fill touched this entry).
    pub fn set_accessed(&mut self) {
        self.0 |= Self::ACCESSED;
    }

    /// Clears the accessed bit (software sampling interval boundary).
    pub fn clear_accessed(&mut self) {
        self.0 &= !Self::ACCESSED;
    }

    /// Whether the dirty bit is set.
    #[must_use]
    pub fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// Sets the dirty bit (a write went through this entry).
    pub fn set_dirty(&mut self) {
        self.0 |= Self::DIRTY;
    }

    /// Reads the software-available bit (bit 9) — ignored by the hardware
    /// walker, used by tables to pack per-table occupancy counts into
    /// their first entries.
    #[must_use]
    pub fn avail_bit(self) -> bool {
        self.0 & Self::AVAIL != 0
    }

    /// Writes the software-available bit (bit 9).
    pub fn set_avail_bit(&mut self, on: bool) {
        if on {
            self.0 |= Self::AVAIL;
        } else {
            self.0 &= !Self::AVAIL;
        }
    }

    /// The ladder rung of the group leaf this entry belongs to, or `None`
    /// for a natural (single-entry) leaf.
    #[must_use]
    pub fn group_rung(self) -> Option<usize> {
        let rung = (self.0 & Self::GROUP_MASK) >> Self::GROUP_SHIFT;
        (rung != 0).then_some(rung as usize)
    }

    /// Tags this entry as one member of a group leaf at `rung`
    /// (a NAPOT page or a contiguous-bit span).
    ///
    /// # Panics
    ///
    /// Panics if `rung` is 0 (the base rung is never a group) or does not
    /// fit the 3-bit tag field.
    pub fn set_group_rung(&mut self, rung: usize) {
        assert!(rung != 0 && rung < 8, "group rung out of tag range");
        self.0 = (self.0 & !Self::GROUP_MASK) | ((rung as u64) << Self::GROUP_SHIFT);
    }

    /// Creates a present non-leaf entry whose frame field holds the arena
    /// index of the next-level table.
    pub(crate) fn table_ptr(index: u32) -> RawPte {
        RawPte(Self::PRESENT | Self::TABLE | (u64::from(index) << Self::PFN_SHIFT))
    }

    /// Whether this is a non-leaf (table-pointer) entry.
    pub(crate) fn is_table(self) -> bool {
        self.0 & Self::TABLE != 0
    }

    /// The arena index a table-pointer entry refers to.
    pub(crate) fn table_index(self) -> u32 {
        (self.0 >> Self::PFN_SHIFT) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_not_present() {
        assert!(!RawPte::default().is_present());
        assert_eq!(RawPte::default(), RawPte::NOT_PRESENT);
    }

    #[test]
    fn flags_are_independent_of_pfn() {
        let mut pte = RawPte::new_leaf(Pfn::new(7));
        pte.set_accessed();
        pte.set_dirty();
        pte.set_pfn(Pfn::new(99));
        assert!(pte.accessed());
        assert!(pte.dirty());
        assert!(pte.is_present());
        assert_eq!(pte.pfn(), Pfn::new(99));
        pte.clear_accessed();
        assert!(!pte.accessed());
        assert!(pte.dirty());
    }

    #[test]
    fn avail_bit_is_independent_of_everything_else() {
        let mut pte = RawPte::new_leaf(Pfn::new(5));
        assert!(!pte.avail_bit());
        pte.set_avail_bit(true);
        pte.set_accessed();
        pte.set_dirty();
        pte.set_pfn(Pfn::new(77));
        assert!(pte.avail_bit());
        assert!(pte.accessed() && pte.dirty() && pte.is_present());
        assert_eq!(pte.pfn(), Pfn::new(77));
        pte.set_avail_bit(false);
        assert!(!pte.avail_bit());
        assert!(pte.accessed() && pte.dirty());
    }

    #[test]
    fn large_pfns_roundtrip() {
        let pfn = Pfn::new((1 << 40) - 1);
        assert_eq!(RawPte::new_leaf(pfn).pfn(), pfn);
    }
}
