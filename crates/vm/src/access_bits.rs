//! Access-bit sampling (§4.3's measurement methodology).
//!
//! The paper measures relative TLB-miss frequency with a kernel module
//! that "periodically un-sets the access bits in PTEs (4KB) and then
//! tracks which ones get set again by the hardware, signifying a TLB
//! miss". This module is that kernel module: it partitions an address
//! space into giant-aligned chunks and, per sampling interval, counts the
//! leaves whose accessed bit the (simulated) hardware re-set.

use std::collections::BTreeMap;

use trident_types::Vpn;

use crate::AddressSpace;

/// Per-chunk accessed-bit counts accumulated across sampling intervals.
#[derive(Debug, Clone, Default)]
pub struct AccessBitSampler {
    counts: BTreeMap<u64, u64>,
    intervals: u64,
}

impl AccessBitSampler {
    /// Creates an empty sampler.
    #[must_use]
    pub fn new() -> AccessBitSampler {
        AccessBitSampler::default()
    }

    /// Ends one sampling interval: records every leaf whose accessed bit
    /// is set (bucketed by giant-aligned chunk), then clears all accessed
    /// bits for the next interval.
    pub fn sample_interval(&mut self, space: &mut AddressSpace) {
        let geo = space.geometry();
        let vmas: Vec<_> = space.vmas().copied().collect();
        for vma in &vmas {
            for leaf in space.page_table().mappings_in(vma.start, vma.pages) {
                if leaf.accessed {
                    let chunk = geo.giant_region_of(leaf.vpn.raw());
                    *self.counts.entry(chunk).or_insert(0) += 1;
                }
            }
        }
        for vma in &vmas {
            space
                .page_table_mut()
                .clear_accessed_in(vma.start, vma.pages);
        }
        self.intervals += 1;
    }

    /// Sampling intervals completed.
    #[must_use]
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Accumulated (chunk, re-set count) pairs in address order — the
    /// paper's "relative TLB miss frequency" per virtual region.
    #[must_use]
    pub fn chunk_counts(&self) -> Vec<(u64, u64)> {
        self.counts.iter().map(|(&c, &n)| (c, n)).collect()
    }

    /// Total re-set events observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Convenience: the chunk index of a page, for correlating sampler output
/// with other per-chunk data.
#[must_use]
pub fn chunk_of(space: &AddressSpace, vpn: Vpn) -> u64 {
    space.geometry().giant_region_of(vpn.raw())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmaKind;
    use trident_types::{AsId, PageGeometry, PageSize, Pfn};

    fn space() -> AddressSpace {
        let geo = PageGeometry::TINY;
        let mut s = AddressSpace::new(AsId::new(1), geo);
        s.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        for i in 0..128 {
            s.page_table_mut()
                .map(Vpn::new(i), Pfn::new(i), PageSize::BASE)
                .unwrap();
        }
        s
    }

    #[test]
    fn sampler_counts_only_touched_chunks() {
        let mut s = space();
        let mut sampler = AccessBitSampler::new();
        // Touch pages in the first giant chunk only.
        for i in 0..10 {
            s.page_table_mut().access(Vpn::new(i), false).unwrap();
        }
        sampler.sample_interval(&mut s);
        assert_eq!(sampler.chunk_counts(), vec![(0, 10)]);
        assert_eq!(sampler.total(), 10);
    }

    #[test]
    fn intervals_reset_the_bits() {
        let mut s = space();
        let mut sampler = AccessBitSampler::new();
        s.page_table_mut().access(Vpn::new(5), false).unwrap();
        sampler.sample_interval(&mut s);
        // No touches in the second interval: nothing new is counted.
        sampler.sample_interval(&mut s);
        assert_eq!(sampler.total(), 1);
        assert_eq!(sampler.intervals(), 2);
    }

    #[test]
    fn repeated_touches_accumulate_across_intervals() {
        let mut s = space();
        let mut sampler = AccessBitSampler::new();
        for _ in 0..3 {
            s.page_table_mut().access(Vpn::new(70), false).unwrap();
            sampler.sample_interval(&mut s);
        }
        // Page 70 lives in the second giant chunk (64-page chunks).
        assert_eq!(sampler.chunk_counts(), vec![(1, 3)]);
    }

    #[test]
    fn chunk_of_matches_geometry() {
        let s = space();
        assert_eq!(chunk_of(&s, Vpn::new(63)), 0);
        assert_eq!(chunk_of(&s, Vpn::new(64)), 1);
    }
}
