//! Property tests for the address space: VMA bookkeeping must agree with
//! a flat shadow model under arbitrary mmap/munmap traffic.

use std::collections::BTreeSet;

use proptest::prelude::*;
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_vm::{AddressSpace, VmaKind};

#[derive(Debug, Clone)]
enum Op {
    Mmap { pages: u64, gap: u64, stack: bool },
    MmapAt { start: u64, pages: u64 },
    Munmap { start: u64, pages: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..40, 0u64..8, any::<bool>()).prop_map(|(pages, gap, stack)| Op::Mmap {
                pages,
                gap,
                stack
            }),
            (0u64..512, 1u64..32).prop_map(|(start, pages)| Op::MmapAt { start, pages }),
            (0u64..512, 1u64..64).prop_map(|(start, pages)| Op::Munmap { start, pages }),
        ],
        1..60,
    )
}

proptest! {
    /// The VMA set always matches a shadow set of allocated pages, for
    /// containment queries and total size alike.
    #[test]
    fn vmas_agree_with_flat_shadow(ops in ops()) {
        let geo = PageGeometry::TINY;
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let mut shadow: BTreeSet<u64> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Mmap { pages, gap, stack } => {
                    let kind = if stack { VmaKind::Stack } else { VmaKind::Anon };
                    let start = space.mmap(pages, kind, PageSize::BASE, gap).unwrap();
                    for p in start.raw()..start.raw() + pages {
                        prop_assert!(shadow.insert(p), "bump allocator reused page {p}");
                    }
                }
                Op::MmapAt { start, pages } => {
                    let overlaps = (start..start + pages).any(|p| shadow.contains(&p));
                    let result = space.mmap_at(Vpn::new(start), pages, VmaKind::Anon);
                    prop_assert_eq!(result.is_err(), overlaps);
                    if result.is_ok() {
                        shadow.extend(start..start + pages);
                    }
                }
                Op::Munmap { start, pages } => {
                    // No mappings were installed, so munmap is pure VMA
                    // surgery here.
                    space.munmap(Vpn::new(start), pages);
                    for p in start..start + pages {
                        shadow.remove(&p);
                    }
                }
            }
            prop_assert_eq!(space.total_vma_pages(), shadow.len() as u64);
            // Spot-check containment on a few pages.
            for probe in [0u64, 17, 63, 128, 300] {
                prop_assert_eq!(
                    space.vma_containing(Vpn::new(probe)).is_some(),
                    shadow.contains(&probe),
                    "containment mismatch at page {}", probe
                );
            }
        }
        // VMAs are sorted and non-overlapping.
        let vmas: Vec<_> = space.vmas().copied().collect();
        for pair in vmas.windows(2) {
            prop_assert!(pair[0].end() <= pair[1].start);
        }
    }

    /// Adjacent same-kind areas always merge: after any mmap sequence with
    /// zero gaps and one kind, there is exactly one VMA.
    #[test]
    fn gapless_allocations_merge_to_one_vma(sizes in prop::collection::vec(1u64..50, 1..20)) {
        let geo = PageGeometry::TINY;
        let mut space = AddressSpace::new(AsId::new(1), geo);
        for pages in &sizes {
            space.mmap(*pages, VmaKind::Anon, PageSize::BASE, 0).unwrap();
        }
        prop_assert_eq!(space.vmas().count(), 1);
        prop_assert_eq!(space.total_vma_pages(), sizes.iter().sum::<u64>());
    }
}
