//! Property tests for the incremental mappability counters: after any
//! sequence of VMA traffic, the O(1) counters must equal the full-scan
//! reference implementation for every page size.

use proptest::prelude::*;
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_vm::{mappable_bytes, mappable_bytes_scan, AddressSpace, VmaKind};

#[derive(Debug, Clone)]
enum Op {
    Mmap { pages: u64, gap: u64, kind: u8 },
    MmapAt { start: u64, pages: u64 },
    Munmap { start: u64, pages: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..96, 0u64..10, 0u8..3).prop_map(|(pages, gap, kind)| Op::Mmap {
                pages,
                gap,
                kind
            }),
            (0u64..768, 1u64..80).prop_map(|(start, pages)| Op::MmapAt { start, pages }),
            (0u64..768, 1u64..128).prop_map(|(start, pages)| Op::Munmap { start, pages }),
        ],
        1..80,
    )
}

fn assert_counters_match(space: &AddressSpace) {
    for size in [PageSize::BASE, PageSize::new(1), PageSize::new(2)] {
        assert_eq!(
            mappable_bytes(space, size),
            mappable_bytes_scan(space, size),
            "incremental counter diverged from full rescan at {size:?}"
        );
    }
}

proptest! {
    /// The incremental counters match the full VMA rescan after every
    /// single mmap/munmap — including the merge and split paths.
    #[test]
    fn incremental_counters_match_full_rescan(ops in ops()) {
        let geo = PageGeometry::TINY;
        let mut space = AddressSpace::new(AsId::new(7), geo);
        for op in ops {
            match op {
                Op::Mmap { pages, gap, kind } => {
                    let kind = match kind {
                        0 => VmaKind::Anon,
                        1 => VmaKind::Stack,
                        _ => VmaKind::File,
                    };
                    space.mmap(pages, kind, PageSize::BASE, gap).unwrap();
                }
                Op::MmapAt { start, pages } => {
                    // Overlap errors are fine; the counters must simply
                    // stay untouched.
                    let _ = space.mmap_at(Vpn::new(start), pages, VmaKind::Anon);
                }
                Op::Munmap { start, pages } => {
                    space.munmap(Vpn::new(start), pages);
                }
            }
            assert_counters_match(&space);
        }
    }

    /// The giant-mappable total never exceeds the huge-mappable total
    /// (every 1GB-mappable byte is also 2MB-mappable), and both are
    /// bounded by the base-mappable total.
    #[test]
    fn mappable_totals_are_ordered(ops in ops()) {
        let geo = PageGeometry::TINY;
        let mut space = AddressSpace::new(AsId::new(8), geo);
        for op in ops {
            match op {
                Op::Mmap { pages, gap, .. } => {
                    space.mmap(pages, VmaKind::Anon, PageSize::BASE, gap).unwrap();
                }
                Op::MmapAt { start, pages } => {
                    let _ = space.mmap_at(Vpn::new(start), pages, VmaKind::Anon);
                }
                Op::Munmap { start, pages } => {
                    space.munmap(Vpn::new(start), pages);
                }
            }
            let base = mappable_bytes(&space, PageSize::BASE);
            let huge = mappable_bytes(&space, PageSize::new(1));
            let giant = mappable_bytes(&space, PageSize::new(2));
            prop_assert!(giant <= huge, "giant {giant} > huge {huge}");
            prop_assert!(huge <= base, "huge {huge} > base {base}");
        }
    }
}
