//! Property-based tests for the page table, run over both the plain
//! miniature ladder and its NAPOT variant so group leaves (multi-entry
//! NAPOT / contiguous-bit mappings) face the same model checking as
//! natural leaves.

use proptest::prelude::*;
use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
use trident_vm::{MapError, PageTable};

fn any_geometry() -> impl Strategy<Value = PageGeometry> {
    prop_oneof![Just(PageGeometry::TINY), Just(PageGeometry::TINY_NAPOT),]
}

/// A geometry plus op stream whose sizes are valid rungs of that ladder.
fn geometry_and_ops(
    max_ops: usize,
) -> impl Strategy<Value = (PageGeometry, Vec<(u64, PageSize, bool)>)> {
    any_geometry().prop_flat_map(move |geo| {
        let sizes = (0..geo.rung_count()).prop_map(PageSize::new);
        prop::collection::vec((0u64..64, sizes, any::<bool>()), 1..max_ops)
            .prop_map(move |ops| (geo, ops))
    })
}

proptest! {
    /// Random aligned maps either succeed or report a precise overlap; a
    /// shadow model over base pages always agrees with the table.
    #[test]
    fn table_agrees_with_flat_shadow_model(
        (geo, ops) in geometry_and_ops(60)
    ) {
        let mut pt = PageTable::new(geo);
        let mut shadow: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut next_frame = 0u64;
        for (chunk, size, _salt) in ops {
            let span = geo.base_pages(size);
            let vpn = (chunk % 8) * span; // size-aligned by construction
            let pfn = next_frame.next_multiple_of(span);
            let result = pt.map(Vpn::new(vpn), Pfn::new(pfn), size);
            let overlap = (vpn..vpn + span).any(|p| shadow.contains_key(&p));
            if overlap {
                let is_overlap = matches!(result, Err(MapError::Overlap { .. }));
                prop_assert!(is_overlap);
            } else {
                prop_assert!(result.is_ok());
                for i in 0..span {
                    shadow.insert(vpn + i, pfn + i);
                }
                next_frame = pfn + span;
            }
        }
        // Every shadow page translates to the right frame.
        for (&vpn, &pfn) in &shadow {
            let t = pt.translate(Vpn::new(vpn));
            prop_assert_eq!(t.map(|t| t.pfn.raw()), Some(pfn));
        }
        // Leaf accounting matches the shadow.
        prop_assert_eq!(pt.mapped_base_pages() as usize, shadow.len());
    }

    /// Unmapping everything returns the table to a pristine state where a
    /// top-rung leaf can be installed anywhere previously used.
    #[test]
    fn unmap_all_allows_giant_remapping(
        (geo, chunks) in geometry_and_ops(40)
    ) {
        let mut pt = PageTable::new(geo);
        let mut heads = Vec::new();
        let mut next_frame = 0u64;
        for (chunk, size, _salt) in chunks {
            let span = geo.base_pages(size);
            let vpn = (chunk % 4) * span;
            let pfn = next_frame.next_multiple_of(span);
            if pt.map(Vpn::new(vpn), Pfn::new(pfn), size).is_ok() {
                heads.push(Vpn::new(vpn));
                next_frame = pfn + span;
            }
        }
        for head in heads {
            pt.unmap(head).unwrap();
        }
        prop_assert_eq!(pt.mapped_base_pages(), 0);
        let giant_span = geo.base_pages(geo.largest());
        for giant in 0..4u64 {
            pt.map(
                Vpn::new(giant * giant_span),
                Pfn::new(giant * giant_span),
                geo.largest(),
            ).unwrap();
        }
    }

    /// Packed radix tables == BTreeMap model, forward order: see
    /// [`check_radix_against_btreemap`].
    #[test]
    fn packed_radix_matches_btreemap_model(
        (geo, ops) in geometry_and_ops(80)
    ) {
        check_radix_against_btreemap(geo, &ops);
    }

    /// The same op sequences replayed in reverse must also agree — the
    /// arena layout (free-list reuse, table recycling) cannot leak into
    /// observable results whatever the allocation order.
    #[test]
    fn packed_radix_matches_btreemap_model_reversed(
        (geo, ops) in geometry_and_ops(80)
    ) {
        let reversed: Vec<_> = ops.iter().rev().copied().collect();
        check_radix_against_btreemap(geo, &reversed);
    }

    /// The dirty-chunk bitmap's drain == a sorted-Vec reference under
    /// arbitrary span-marking sequences interleaved with drains, in both
    /// replay orders.
    #[test]
    fn dirty_drain_matches_vec_reference(
        ops in prop::collection::vec((0u64..256, 0u64..70, any::<bool>()), 1..80)
    ) {
        check_dirty_against_vec(&ops);
        let reversed: Vec<_> = ops.iter().rev().copied().collect();
        check_dirty_against_vec(&reversed);
    }

    /// chunk_profile partitions every chunk exactly, at every rung of the
    /// ladder, over arbitrary mapping mixes.
    #[test]
    fn chunk_profile_partitions_the_chunk(
        (geo, maps) in geometry_and_ops(40)
    ) {
        let mut pt = PageTable::new(geo);
        let giant_span = geo.base_pages(geo.largest());
        let mut next = 0u64;
        for (slot, size, _salt) in maps {
            let span = geo.base_pages(size);
            let vpn = (slot * span) % (4 * giant_span);
            let pfn = next.next_multiple_of(span);
            if pt.map(Vpn::new(vpn), Pfn::new(pfn), size).is_ok() {
                next = pfn + span;
            }
        }
        for size in geo.rungs() {
            let span = geo.base_pages(size);
            for chunk in 0..(4 * giant_span / span) {
                let p = pt.chunk_profile(Vpn::new(chunk * span), size);
                prop_assert_eq!(p.mapped_total() + p.unmapped, span);
            }
        }
    }
}

/// Applies a map/unmap sequence to both the arena-backed radix table and
/// a `BTreeMap` model, requiring after every op that translation, the
/// ordered mapping scan (both its allocating and buffer-reusing forms),
/// and leaf accounting all agree with the model.
fn check_radix_against_btreemap(geo: PageGeometry, ops: &[(u64, PageSize, bool)]) {
    let total = 4 * geo.base_pages(geo.largest());
    let mut pt = PageTable::new(geo);
    let mut model: std::collections::BTreeMap<u64, (u64, PageSize)> =
        std::collections::BTreeMap::new();
    let mut next_frame = 0u64;
    let mut scratch = Vec::new();
    for &(slot, size, unmap) in ops {
        let span = geo.base_pages(size);
        if unmap && !model.is_empty() {
            // Unmap the nth live head (modulo), per the model.
            let nth = slot as usize % model.len();
            let head = *model.keys().nth(nth).expect("nth < len");
            let (pfn, sz) = model.remove(&head).expect("key exists");
            let rec = pt.unmap(Vpn::new(head)).expect("model says mapped");
            prop_assert_eq!(rec.pfn.raw(), pfn);
            prop_assert_eq!(rec.size, sz);
        } else {
            let vpn = (slot * span) % total;
            let pfn = next_frame.next_multiple_of(span);
            let overlaps = model
                .range(..vpn + span)
                .next_back()
                .is_some_and(|(&h, &(_, s))| h + geo.base_pages(s) > vpn);
            let result = pt.map(Vpn::new(vpn), Pfn::new(pfn), size);
            prop_assert_eq!(result.is_ok(), !overlaps);
            if result.is_ok() {
                model.insert(vpn, (pfn, size));
                next_frame = pfn + span;
            }
        }
        // The ordered scan equals the model's iteration exactly.
        let records = pt.mappings_in(Vpn::new(0), total);
        let got: Vec<(u64, u64, PageSize)> = records
            .iter()
            .map(|r| (r.vpn.raw(), r.pfn.raw(), r.size))
            .collect();
        let expect: Vec<(u64, u64, PageSize)> =
            model.iter().map(|(&v, &(p, s))| (v, p, s)).collect();
        prop_assert_eq!(got, expect);
        pt.mappings_into(Vpn::new(0), total, &mut scratch);
        prop_assert_eq!(&records, &scratch);
        let mapped: u64 = model.values().map(|&(_, s)| geo.base_pages(s)).sum();
        prop_assert_eq!(pt.mapped_base_pages(), mapped);
    }
    // Spot-check translation over the whole space against the model.
    for vpn in 0..total {
        let expect = model
            .range(..=vpn)
            .next_back()
            .filter(|(&h, &(_, s))| h + geo.base_pages(s) > vpn)
            .map(|(&h, &(p, _))| p + (vpn - h));
        let got = pt.translate(Vpn::new(vpn)).map(|t| t.pfn.raw());
        prop_assert_eq!(got, expect);
    }
}

/// Applies `(start, pages, drain?)` ops to the page table's dirty-chunk
/// bitmap and a sorted-Vec reference, requiring every drain to yield the
/// reference exactly and leave the bitmap empty.
fn check_dirty_against_vec(ops: &[(u64, u64, bool)]) {
    let geo = PageGeometry::TINY;
    let giant_span = geo.base_pages(geo.largest());
    let total = 4 * giant_span;
    let mut pt = PageTable::new(geo);
    let mut reference: Vec<u64> = Vec::new();
    let mut drained = Vec::new();
    for &(start, pages, drain) in ops {
        if drain {
            pt.drain_dirty_chunks_into(&mut drained);
            prop_assert_eq!(&drained, &reference);
            prop_assert!(pt.take_dirty_chunks().is_empty());
            reference.clear();
        } else {
            let start = start % total;
            let pages = pages.min(total - start);
            pt.mark_span_dirty(Vpn::new(start), pages);
            if pages > 0 {
                for gi in start / giant_span..=(start + pages - 1) / giant_span {
                    if !reference.contains(&gi) {
                        let at = reference.partition_point(|&g| g < gi);
                        reference.insert(at, gi);
                    }
                }
            }
        }
    }
    pt.drain_dirty_chunks_into(&mut drained);
    prop_assert_eq!(&drained, &reference);
}
