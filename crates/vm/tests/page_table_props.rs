//! Property-based tests for the page table.

use proptest::prelude::*;
use trident_types::{PageGeometry, PageSize, Pfn, Vpn};
use trident_vm::{MapError, PageTable};

fn any_size() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        Just(PageSize::Base),
        Just(PageSize::Huge),
        Just(PageSize::Giant)
    ]
}

proptest! {
    /// Random aligned maps either succeed or report a precise overlap; a
    /// shadow model over base pages always agrees with the table.
    #[test]
    fn table_agrees_with_flat_shadow_model(
        ops in prop::collection::vec((0u64..8, any_size(), 0u64..64), 1..60)
    ) {
        let geo = PageGeometry::TINY;
        let mut pt = PageTable::new(geo);
        let mut shadow: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut next_frame = 0u64;
        for (chunk, size, _salt) in ops {
            let span = geo.base_pages(size);
            let vpn = chunk * span; // size-aligned by construction
            let pfn = next_frame.next_multiple_of(span);
            let result = pt.map(Vpn::new(vpn), Pfn::new(pfn), size);
            let overlap = (vpn..vpn + span).any(|p| shadow.contains_key(&p));
            if overlap {
                let is_overlap = matches!(result, Err(MapError::Overlap { .. }));
                prop_assert!(is_overlap);
            } else {
                prop_assert!(result.is_ok());
                for i in 0..span {
                    shadow.insert(vpn + i, pfn + i);
                }
                next_frame = pfn + span;
            }
        }
        // Every shadow page translates to the right frame.
        for (&vpn, &pfn) in &shadow {
            let t = pt.translate(Vpn::new(vpn));
            prop_assert_eq!(t.map(|t| t.pfn.raw()), Some(pfn));
        }
        // Leaf accounting matches the shadow.
        prop_assert_eq!(pt.mapped_base_pages() as usize, shadow.len());
    }

    /// Unmapping everything returns the table to a pristine state where a
    /// giant leaf can be installed anywhere previously used.
    #[test]
    fn unmap_all_allows_giant_remapping(
        chunks in prop::collection::vec((0u64..4, any_size()), 1..40)
    ) {
        let geo = PageGeometry::TINY;
        let mut pt = PageTable::new(geo);
        let mut heads = Vec::new();
        let mut next_frame = 0u64;
        for (chunk, size) in chunks {
            let span = geo.base_pages(size);
            let vpn = chunk * span;
            let pfn = next_frame.next_multiple_of(span);
            if pt.map(Vpn::new(vpn), Pfn::new(pfn), size).is_ok() {
                heads.push(Vpn::new(vpn));
                next_frame = pfn + span;
            }
        }
        for head in heads {
            pt.unmap(head).unwrap();
        }
        prop_assert_eq!(pt.mapped_base_pages(), 0);
        for giant in 0..4u64 {
            pt.map(
                Vpn::new(giant * 64),
                Pfn::new(giant * 64),
                PageSize::Giant,
            ).unwrap();
        }
    }

    /// chunk_profile partitions every chunk exactly.
    #[test]
    fn chunk_profile_partitions_the_chunk(
        maps in prop::collection::vec((0u64..64, any_size()), 0..40)
    ) {
        let geo = PageGeometry::TINY;
        let mut pt = PageTable::new(geo);
        let mut next = 0u64;
        for (slot, size) in maps {
            let span = geo.base_pages(size);
            let vpn = (slot * span) % (4 * 64);
            let pfn = next.next_multiple_of(span);
            if pt.map(Vpn::new(vpn), Pfn::new(pfn), size).is_ok() {
                next = pfn + span;
            }
        }
        for giant in 0..4u64 {
            let p = pt.chunk_profile(Vpn::new(giant * 64), PageSize::Giant);
            prop_assert_eq!(p.mapped() + p.unmapped, 64);
        }
    }
}
