//! The one-encoder guarantee: the pooled `trident_*` counter block in a
//! live `/metrics` scrape is byte-identical to the same counters
//! rendered by the offline `trace_analyze` report, because both go
//! through `trident_prof::prom`. A drift between the two renderings —
//! a reworded HELP line, a reordered family, a renamed label — breaks
//! dashboards silently, so this test compares bytes, not substrings.

use trident_core::StatsSnapshot;
use trident_prof::prom::{self, TextEncoder};
use trident_prof::report::render_prometheus;
use trident_prof::Profile;
use trident_serve::metrics::DaemonMetrics;
use trident_serve::proto::{JobResult, RungRow};

/// A snapshot with a distinct value in every rendered counter, so a
/// field mix-up cannot produce an accidental byte match.
fn distinctive_snapshot() -> StatsSnapshot {
    StatsSnapshot {
        faults: [101, 102, 103, 104, 105, 106],
        fault_ns: [201, 202, 203, 204, 205, 206],
        promotions: [301, 302, 303, 304, 305, 306],
        daemon_ns: 401,
        compaction_bytes_copied: 501,
        pv_bytes_exchanged: 601,
        injected_faults: [701, 702, 703, 704, 705],
        promotions_deferred: 801,
        pv_fallback_bytes: 901,
        ..StatsSnapshot::default()
    }
}

/// The canonical rendering of the snapshot block alone.
fn golden(snapshot: &StatsSnapshot) -> String {
    let mut enc = TextEncoder::new();
    prom::snapshot_counters(&mut enc, snapshot);
    enc.finish()
}

/// The snapshot block opens every rendering with this family.
const BLOCK_START: &str = "# HELP trident_faults_total ";

#[test]
fn offline_report_renders_the_golden_snapshot_block() {
    let snapshot = distinctive_snapshot();
    let mut profile = Profile::new(1_000);
    profile.snapshot = snapshot;

    let offline = render_prometheus(&profile);
    assert!(offline.starts_with(BLOCK_START), "{offline}");
    // The report appends span summaries after the snapshot block.
    let block_end = offline
        .find("# HELP trident_span_ns ")
        .expect("report must carry span summaries after the counters");
    assert_eq!(&offline[..block_end], golden(&snapshot));
}

#[test]
fn live_scrape_renders_the_golden_snapshot_block() {
    let snapshot = distinctive_snapshot();
    let metrics = DaemonMetrics::new(2, 8);
    metrics.on_accepted(0, 1);
    metrics.on_dequeue(0, 0);
    metrics.on_start(7, 5_000, 100);
    metrics.on_done(
        7,
        1_000_000,
        &JobResult {
            samples: 100,
            tlb_accesses: 100,
            walks: 10,
            walk_cycles: 350,
            rungs: vec![
                RungRow {
                    size: "4KB".to_owned(),
                    bytes: 1,
                },
                RungRow {
                    size: "2MB".to_owned(),
                    bytes: 2,
                },
                RungRow {
                    size: "1GB".to_owned(),
                    bytes: 3,
                },
            ],
            trace_dropped: 0,
            trace_lines: None,
            violations: 0,
            tenants: vec![],
            snapshot,
        },
    );

    let live = metrics.render();
    // The daemon renders the pooled snapshot block last, after the
    // tridentd_* service families.
    let block_start = live.find(BLOCK_START).expect("scrape must pool counters");
    assert_eq!(&live[block_start..], golden(&snapshot));
    prom::lint(&live).unwrap();
}

#[test]
fn lint_accepts_the_golden_block_and_rejects_mutations() {
    let text = golden(&distinctive_snapshot());
    prom::lint(&text).unwrap();

    // An undeclared sample: strip the TYPE/HELP header off one family.
    let headerless: String = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(prom::lint(&headerless).is_err());

    // A duplicate family declaration.
    let duplicated = format!("{text}{text}");
    assert!(prom::lint(&duplicated).is_err());
}
