//! End-to-end fleet tests over real TCP daemons: a grid fanned across
//! several endpoints — including dead, hung and chaos-injected ones —
//! must produce byte-identical results to running every cell directly,
//! and every blocking wait must resolve to a typed timeout instead of
//! hanging.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use trident_fault::{WirePlan, WireSite};
use trident_serve::proto::{JobSpec, ProtoError, Request};
use trident_serve::{
    serve_tcp, Client, ClientError, FleetClient, FleetConfig, FleetError, JobResult, RetryPolicy,
    Service, ServiceConfig,
};

fn spec() -> JobSpec {
    let mut spec = JobSpec::new("GUPS", "Trident");
    spec.scale = 256;
    spec.samples = 1_000;
    spec.seed = 42;
    spec
}

/// What each fleet cell must measure, computed without any daemon —
/// the idempotency key is metadata and must not perturb execution.
fn expected_cells(cells: &[u64]) -> Vec<JobResult> {
    cells
        .iter()
        .map(|&cell| {
            let mut s = spec();
            s.cell_index = Some(cell);
            trident_serve::job::execute(&s).expect("direct run")
        })
        .collect()
}

struct Daemon {
    service: Arc<Service>,
    handle: trident_serve::ServerHandle,
    addr: String,
}

fn daemon(start_paused: bool) -> Daemon {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 64,
        start_paused,
    }));
    let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = handle.addr().to_string();
    Daemon {
        service,
        handle,
        addr,
    }
}

fn teardown(d: Daemon) {
    d.handle.stop();
    d.handle.join().unwrap();
    let mut service = d.service;
    let service = loop {
        match Arc::try_unwrap(service) {
            Ok(service) => break service,
            Err(back) => {
                service = back;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    service.shutdown();
}

/// An address that refuses connections: bind an ephemeral port, then
/// free it before anyone dials.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 7,
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(500),
        result_timeout: Duration::from_secs(30),
    }
}

#[test]
fn fleet_grid_is_byte_identical_across_failover() {
    // Two live daemons plus one endpoint that refuses every connection:
    // all six cells must complete with exactly the bytes a direct run
    // produces, with the dead endpoint's cells failing over silently.
    let cells: Vec<u64> = (0..6).collect();
    let expected = expected_cells(&cells);

    let a = daemon(false);
    let b = daemon(false);
    let endpoints = vec![a.addr.clone(), dead_addr(), b.addr.clone()];
    let fleet = FleetClient::new(
        &endpoints,
        FleetConfig {
            retry: fast_retry(),
            poll_interval: Duration::from_millis(10),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    let outcome = fleet.run_cells(&spec(), &cells).unwrap();
    assert_eq!(outcome.results.len(), cells.len());
    for ((cell, got), (want_cell, want)) in outcome.results.iter().zip(cells.iter().zip(&expected))
    {
        assert_eq!(cell, want_cell, "results must come back sorted by cell");
        assert_eq!(got, want, "cell {cell} drifted from the direct run");
    }
    assert!(
        outcome.stats.submits >= cells.len() as u64,
        "{:?}",
        outcome.stats
    );
    assert_eq!(outcome.stats.mismatches, 0, "{:?}", outcome.stats);

    teardown(a);
    teardown(b);
}

#[test]
fn fleet_survives_seeded_wire_chaos_byte_identically() {
    // Every wire fault fires (probability 1000‰, capped at two shots
    // per site per endpoint): requests vanish, sockets sever, responses
    // arrive late, truncated and corrupted. The grid must still
    // complete with the exact direct-run bytes, and the stats must show
    // the chaos actually bit.
    let cells: Vec<u64> = (0..4).collect();
    let expected = expected_cells(&cells);

    let a = daemon(false);
    let b = daemon(false);
    let mut builder = WirePlan::builder(9);
    for site in WireSite::ALL {
        builder = builder.site_capped(site, 1_000, 2);
    }
    let fleet = FleetClient::new(
        &[a.addr.clone(), b.addr.clone()],
        FleetConfig {
            retry: RetryPolicy {
                max_attempts: 12,
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(20),
                jitter_seed: 9,
                connect_timeout: Duration::from_millis(500),
                request_timeout: Duration::from_millis(300),
                result_timeout: Duration::from_secs(30),
            },
            poll_interval: Duration::from_millis(10),
            wire: Some(builder.build().unwrap()),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    let outcome = fleet.run_cells(&spec(), &cells).unwrap();
    let got: Vec<JobResult> = outcome.results.iter().map(|(_, r)| r.clone()).collect();
    assert_eq!(got, expected, "chaos must never change the answer");
    let s = outcome.stats;
    assert!(
        s.timeouts + s.io_errors + s.malformed > 0,
        "the chaos plan never fired: {s:?}"
    );
    assert_eq!(s.mismatches, 0, "{s:?}");

    teardown(a);
    teardown(b);
}

#[test]
fn fleet_hedges_a_stuck_cell_and_dedups_by_identity() {
    // One paused daemon listed as two endpoints: the first worker's
    // submission sits queued forever, the second worker goes idle and
    // must hedge the stuck cell. After the daemon resumes, both copies
    // run; the fleet keeps one result and verifies any duplicate
    // byte-for-byte.
    let cells = [3u64];
    let expected = expected_cells(&cells);

    let d = daemon(true);
    let service = Arc::clone(&d.service);
    let resumer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        service.resume();
    });

    let fleet = FleetClient::new(
        &[d.addr.clone(), d.addr.clone()],
        FleetConfig {
            retry: fast_retry(),
            hedge_after: Duration::from_millis(50),
            poll_interval: Duration::from_millis(10),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    let outcome = fleet.run_cells(&spec(), &cells).unwrap();
    assert_eq!(outcome.results[0].1, expected[0]);
    assert!(outcome.stats.hedges >= 1, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.mismatches, 0, "{:?}", outcome.stats);

    resumer.join().unwrap();
    teardown(d);
}

#[test]
fn all_dead_endpoints_is_a_typed_fleet_error() {
    let fleet = FleetClient::new(
        &[dead_addr(), dead_addr()],
        FleetConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(5),
                connect_timeout: Duration::from_millis(300),
                ..RetryPolicy::default()
            },
            ..FleetConfig::default()
        },
    )
    .unwrap();
    match fleet.run_cells(&spec(), &[0, 1]) {
        Err(FleetError::AllEndpointsFailed { cells_remaining }) => {
            assert_eq!(cells_remaining, 2);
        }
        other => panic!("expected AllEndpointsFailed, got {other:?}"),
    }
}

#[test]
fn hung_daemon_yields_typed_timeout_not_a_hang() {
    // A listener that accepts and then never answers: the per-operation
    // deadline must surface as ProtoError::Timeout within bounded time,
    // and the connection must refuse reuse (a reply may still be in
    // flight) until the caller reconnects.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        // Keep accepted sockets alive so the client sees silence, not
        // a close. The thread dies with the test process.
        let mut streams = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            streams.push(stream);
            if streams.len() >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_secs(10));
    });

    let policy = RetryPolicy {
        request_timeout: Duration::from_millis(200),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(addr, policy).unwrap();
    let started = Instant::now();
    match client.request(&Request::Status { id: 1 }) {
        Err(ClientError::Proto(ProtoError::Timeout { op, ms })) => {
            assert_eq!(op, "request");
            assert_eq!(ms, 200);
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline did not bound the wait: {:?}",
        started.elapsed()
    );
    match client.request(&Request::Status { id: 1 }) {
        Err(ClientError::Poisoned) => {}
        other => panic!("a timed-out connection must refuse reuse, got {other:?}"),
    }
    drop(client);
    drop(hold); // detach; the test process exit reaps it
}
