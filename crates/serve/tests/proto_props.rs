//! Property tests for the job-service wire format: every request and
//! response survives its one-line JSON encoding bit-for-bit, and
//! version checking is total — any message stamped with a foreign
//! version is rejected with a typed error, never half-parsed.

use proptest::prelude::*;
use trident_core::{InjectSite, StatsSnapshot, SNAPSHOT_VERSION};
use trident_serve::proto::{
    ErrorCode, FaultSpec, JobOrigin, JobProgress, JobResult, JobSpec, JobState, JobSummary,
    JournalInfo, ProtoError, Request, Response, RungRow, ServiceInfo, TenantJob, TenantRow,
    PROTO_VERSION,
};

/// Characters chosen to stress the scanner: JSON structure, the escape
/// set, whitespace, and multi-byte code points.
const CHARSET: [char; 18] = [
    'a', 'Z', '7', ' ', '"', '\\', '\n', '\t', '\r', ':', ',', '{', '}', '[', ']', 'é', '界', '∆',
];

fn wire_strings() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..CHARSET.len(), 0..16)
        .prop_map(|ix| ix.into_iter().map(|i| CHARSET[i]).collect())
}

fn sites() -> impl Strategy<Value = InjectSite> {
    (0usize..InjectSite::ALL.len()).prop_map(|i| InjectSite::ALL[i])
}

fn states() -> impl Strategy<Value = JobState> {
    (0usize..JobState::ALL.len()).prop_map(|i| JobState::ALL[i])
}

fn origins() -> impl Strategy<Value = JobOrigin> {
    (0usize..JobOrigin::ALL.len()).prop_map(|i| JobOrigin::ALL[i])
}

fn error_codes() -> impl Strategy<Value = ErrorCode> {
    (0usize..ErrorCode::ALL.len()).prop_map(|i| ErrorCode::ALL[i])
}

fn options<T>(inner: impl Strategy<Value = T>) -> impl Strategy<Value = Option<T>> {
    (any::<bool>(), inner).prop_map(|(some, v)| some.then_some(v))
}

fn fault_specs() -> impl Strategy<Value = FaultSpec> {
    (
        any::<u64>(),
        prop::collection::vec((sites(), 0u64..=1_000), 0..6),
    )
        .prop_map(|(seed, rules)| FaultSpec {
            seed,
            rules: rules
                .into_iter()
                .map(|(site, prob)| (site, prob as u16))
                .collect(),
        })
}

fn rung_rows() -> impl Strategy<Value = Vec<RungRow>> {
    prop::collection::vec((wire_strings(), any::<u64>()), 0..6).prop_map(|rows| {
        rows.into_iter()
            .map(|(size, bytes)| RungRow { size, bytes })
            .collect()
    })
}

fn tenant_jobs() -> impl Strategy<Value = TenantJob> {
    (
        (wire_strings(), any::<u32>()),
        (options(1u64..(1 << 20)), options(wire_strings())),
        (
            any::<bool>(),
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        ),
    )
        .prop_map(
            |((workload, weight), (chunk_budget, prefer), (opt_out, pins))| TenantJob {
                workload,
                weight,
                chunk_budget: chunk_budget.map(|c| c as usize),
                prefer,
                opt_out,
                pins,
            },
        )
}

fn job_specs() -> impl Strategy<Value = JobSpec> {
    (
        (
            wire_strings(),
            wire_strings(),
            1u64..100_000,
            1u64..10_000_000,
        ),
        (any::<u64>(), options(any::<u64>()), any::<bool>()),
        (
            options(0u64..(1 << 30)),
            any::<bool>(),
            options(fault_specs()),
        ),
        (
            options(wire_strings()),
            options(wire_strings()),
            options(wire_strings()),
            options(wire_strings()),
        ),
        (any::<bool>(), prop::collection::vec(tenant_jobs(), 0..4)),
    )
        .prop_map(
            |(
                (workload, policy, scale, samples),
                (seed, cell_index, fragment),
                (trace_capacity, profile, fault),
                (trace_out, profile_out, key, geometry),
                (audit, tenants),
            )| JobSpec {
                workload,
                policy,
                scale,
                samples: samples as usize,
                seed,
                cell_index,
                fragment,
                trace_capacity: trace_capacity.map(|c| c as usize),
                profile,
                fault,
                trace_out,
                profile_out,
                key,
                geometry,
                audit,
                tenants,
            },
        )
}

fn snapshots() -> impl Strategy<Value = StatsSnapshot> {
    prop::collection::vec(any::<u64>(), 30..31).prop_map(|v| {
        let arr6 = |at: usize| {
            [
                v[at],
                v[at + 1],
                v[at + 2],
                v[at + 1].rotate_left(7),
                v[at + 2].rotate_left(11),
                v[at].rotate_left(13),
            ]
        };
        StatsSnapshot {
            version: SNAPSHOT_VERSION,
            faults: arr6(0),
            fault_ns: arr6(3),
            giant_attempts_fault: v[6],
            giant_failures_fault: v[7],
            giant_attempts_promo: v[8],
            giant_failures_promo: v[9],
            promotions: arr6(10),
            demotions: arr6(13),
            compaction_bytes_copied: v[16],
            promotion_bytes_copied: v[17],
            pv_bytes_exchanged: v[18],
            compaction_attempts: v[19],
            compaction_successes: v[20],
            daemon_ns: v[21],
            bloat_pages: v[22],
            bloat_recovered_pages: v[23],
            giant_blocks_prezeroed: v[24],
            injected_faults: [v[25], v[26], v[27], v[28], v[29]],
            promotions_deferred: v[25].rotate_left(1),
            pv_fallbacks: v[26].rotate_left(2),
            pv_fallback_bytes: v[27].rotate_left(3),
        }
    })
}

fn tenant_rows() -> impl Strategy<Value = TenantRow> {
    (
        (any::<u32>(), wire_strings()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        rung_rows(),
        (0u64..=1_000, any::<u64>()),
    )
        .prop_map(
            |((tenant, workload), (samples, walks, walk_cycles), rungs, (fmfi_milli, faults))| {
                TenantRow {
                    tenant,
                    workload,
                    samples,
                    walks,
                    walk_cycles,
                    rungs,
                    fmfi_milli,
                    faults,
                }
            },
        )
}

fn job_results() -> impl Strategy<Value = JobResult> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        rung_rows(),
        (any::<u64>(), options(any::<u64>())),
        (any::<u64>(), prop::collection::vec(tenant_rows(), 0..4)),
        snapshots(),
    )
        .prop_map(
            |(
                (samples, tlb_accesses, walks, walk_cycles),
                rungs,
                (dropped, lines),
                (violations, tenants),
                snapshot,
            )| {
                JobResult {
                    samples,
                    tlb_accesses,
                    walks,
                    walk_cycles,
                    rungs,
                    trace_dropped: dropped,
                    trace_lines: lines,
                    violations,
                    tenants,
                    snapshot,
                }
            },
        )
}

fn requests() -> impl Strategy<Value = Request> {
    prop_oneof![
        job_specs().prop_map(Request::Submit),
        any::<u64>().prop_map(|id| Request::Status { id }),
        any::<u64>().prop_map(|id| Request::Result { id }),
        any::<u64>().prop_map(|id| Request::Cancel { id }),
        any::<u64>().prop_map(|id| Request::Progress { id }),
        Just(Request::List),
        Just(Request::Metrics),
        Just(Request::Shutdown),
    ]
}

fn journal_infos() -> impl Strategy<Value = JournalInfo> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(records, replayed, pending)| {
        JournalInfo {
            records,
            replayed,
            pending,
        }
    })
}

fn service_infos() -> impl Strategy<Value = ServiceInfo> {
    (
        any::<bool>(),
        1u64..64,
        1u64..(1 << 20),
        prop::collection::vec(any::<u64>(), 0..8),
        options(journal_infos()),
    )
        .prop_map(
            |(paused, workers, queue_depth, queues, journal)| ServiceInfo {
                paused,
                workers: workers as usize,
                queue_depth: queue_depth as usize,
                queues,
                journal,
            },
        )
}

fn job_progresses() -> impl Strategy<Value = JobProgress> {
    (any::<u64>(), any::<u64>(), any::<u64>(), 0u64..=10_000).prop_map(
        |(ticks, samples_done, samples_total, fmfi_milli)| JobProgress {
            ticks,
            samples_done,
            samples_total,
            fmfi_milli,
        },
    )
}

fn responses() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|id| Response::Submitted { id }),
        (any::<u64>(), states(), service_infos())
            .prop_map(|(id, state, service)| Response::Status { id, state, service }),
        (any::<u64>(), job_results()).prop_map(|(id, result)| Response::Result { id, result }),
        any::<u64>().prop_map(|id| Response::Cancelled { id }),
        (
            prop::collection::vec(
                (
                    (any::<u64>(), states(), origins()),
                    wire_strings(),
                    wire_strings(),
                    options(wire_strings())
                ),
                0..5
            ),
            service_infos()
        )
            .prop_map(|(rows, service)| Response::Jobs {
                jobs: rows
                    .into_iter()
                    .map(|((id, state, origin), workload, policy, key)| JobSummary {
                        id,
                        state,
                        workload,
                        policy,
                        key,
                        origin,
                    })
                    .collect(),
                service,
            }),
        wire_strings().prop_map(|text| Response::Metrics { text }),
        (any::<u64>(), states(), job_progresses()).prop_map(|(id, state, progress)| {
            Response::Progress {
                id,
                state,
                progress,
            }
        }),
        Just(Response::ShuttingDown),
        (error_codes(), wire_strings())
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

/// Restamps a well-formed line with a foreign protocol version.
fn restamp(line: &str, version: u64) -> String {
    line.replacen(
        &format!("{{\"v\":{PROTO_VERSION}"),
        &format!("{{\"v\":{version}"),
        1,
    )
}

proptest! {
    /// Any request — including specs whose strings are full of JSON
    /// structure characters — survives the wire bit-for-bit.
    #[test]
    fn requests_round_trip(req in requests()) {
        let line = req.to_jsonl();
        prop_assert!(!line.contains('\n'), "framing must stay one line: {line:?}");
        prop_assert_eq!(Request::parse_jsonl(&line), Ok(req), "line: {}", line);
    }

    /// Any response survives the wire bit-for-bit, snapshot included.
    #[test]
    fn responses_round_trip(resp in responses()) {
        let line = resp.to_jsonl();
        prop_assert!(!line.contains('\n'), "framing must stay one line: {line:?}");
        prop_assert_eq!(Response::parse_jsonl(&line), Ok(resp), "line: {}", line);
    }

    /// Version checking is total: any foreign version on any otherwise
    /// valid message yields `ProtoError::Version` carrying that version
    /// — the peer's number is reported back, not guessed around.
    #[test]
    fn foreign_versions_are_rejected(req in requests(), resp in responses(), v in 0u64..10_000) {
        // Skip the one value that IS our version.
        let v = if v == u64::from(PROTO_VERSION) { v + 1 } else { v };
        let got = v as u32;
        prop_assert_eq!(
            Request::parse_jsonl(&restamp(&req.to_jsonl(), v)),
            Err(ProtoError::Version { got })
        );
        prop_assert_eq!(
            Response::parse_jsonl(&restamp(&resp.to_jsonl(), v)),
            Err(ProtoError::Version { got })
        );
    }
}
