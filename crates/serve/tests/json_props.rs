//! Property tests for the transport framing layer: the bounded line
//! reader must recover the same lines no matter how the bytes are
//! chunked by the kernel, must drain oversized lines without losing
//! framing, and the protocol decoders must answer any truncated or
//! mutated line with a value or a typed error — never a panic.

use std::io::{BufReader, Read};

use proptest::prelude::*;
use trident_serve::json::{self, BoundedLine};
use trident_serve::proto::{JobSpec, Request, Response, TenantJob};

/// A reader that hands out the underlying bytes in adversarially small,
/// varying chunks — the worst case a TCP stream can legally present.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    sizes: Vec<usize>,
    turn: usize,
}

impl Chunked {
    fn new(data: Vec<u8>, sizes: Vec<usize>) -> Chunked {
        Chunked {
            data,
            pos: 0,
            sizes,
            turn: 0,
        }
    }
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let step = self.sizes.get(self.turn % self.sizes.len().max(1));
        self.turn += 1;
        let want = step
            .copied()
            .unwrap_or(1)
            .clamp(1, buf.len())
            .min(self.data.len() - self.pos);
        buf[..want].copy_from_slice(&self.data[self.pos..self.pos + want]);
        self.pos += want;
        Ok(want)
    }
}

/// Reads every line out of `data` through a tiny `BufReader`, so chunk
/// boundaries land inside lines, inside CRLF pairs, everywhere.
fn scan(data: Vec<u8>, sizes: Vec<usize>, max: usize) -> Vec<BoundedLine> {
    let mut reader = BufReader::with_capacity(3, Chunked::new(data, sizes));
    let mut out = Vec::new();
    // Termination bound: every call consumes ≥ 1 byte or returns Eof.
    for _ in 0..10_000 {
        match json::read_line_bounded(&mut reader, max).expect("in-memory read cannot fail") {
            BoundedLine::Eof => return out,
            other => out.push(other),
        }
    }
    panic!("scanner failed to reach Eof");
}

/// Line content without newlines; `\r` included deliberately so CRLF
/// handling gets hit at chunk boundaries.
const CHARSET: [char; 12] = [
    'a', 'Z', '7', ' ', '"', '\\', '\r', '\t', '{', '}', 'é', '界',
];

fn line_strings() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..CHARSET.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| CHARSET[i]).collect())
}

fn chunk_sizes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..7, 1..6)
}

/// A representative spec whose encoding exercises every field class:
/// strings needing escapes, optionals, nested arrays and objects.
fn dense_spec() -> JobSpec {
    let mut spec = JobSpec::new("GU\"PS\\", "Tri{de}nt");
    spec.scale = 64;
    spec.samples = 123;
    spec.cell_index = Some(5);
    spec.fragment = true;
    spec.trace_out = Some("out,\"x\".jsonl".to_owned());
    spec.key = Some("fig1/GUPS/Trident/5".to_owned());
    let mut tenant = TenantJob::new("Red:is");
    tenant.weight = 3;
    tenant.pins = vec![(0, 512)];
    spec.tenants = vec![tenant];
    spec
}

/// Truncates `line` to at most `cut` bytes, backing up to a char
/// boundary so the slice stays valid UTF-8 (what the transport's
/// truncation fault does).
fn cut_at_boundary(line: &str, cut: usize) -> &str {
    let mut cut = cut.min(line.len());
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    &line[..cut]
}

proptest! {
    /// Chunking is invisible: however the bytes arrive, the scanner
    /// recovers exactly the written lines (CRLF collapsed on terminated
    /// lines, a final unterminated line still delivered).
    #[test]
    fn framing_is_chunking_invariant(
        lines in prop::collection::vec(line_strings(), 0..6),
        sizes in chunk_sizes(),
        trailing_newline in any::<bool>(),
    ) {
        let mut data = lines.join("\n").into_bytes();
        if trailing_newline && !lines.is_empty() {
            data.push(b'\n');
        }
        let mut expected = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let terminated = trailing_newline || i + 1 < lines.len();
            if terminated {
                let text = line.strip_suffix('\r').unwrap_or(line);
                expected.push(BoundedLine::Line(text.to_owned()));
            } else if !line.is_empty() {
                // A final unterminated line is still delivered; an
                // empty one is just Eof.
                expected.push(BoundedLine::Line(line.clone()));
            }
        }
        prop_assert_eq!(scan(data, sizes, 1 << 16), expected);
    }

    /// An oversized line is swallowed whole — the *next* line parses
    /// normally, whatever the chunking. The bound counts content bytes,
    /// not the newline.
    #[test]
    fn oversized_lines_are_drained_not_misframed(
        fill in 17usize..200,
        sizes in chunk_sizes(),
    ) {
        let long = "x".repeat(fill);
        let data = format!("{long}\nok\n").into_bytes();
        let got = scan(data, sizes, 16);
        prop_assert_eq!(
            got,
            vec![BoundedLine::Oversized, BoundedLine::Line("ok".to_owned())]
        );
    }

    /// Arbitrary bytes — invalid UTF-8 included — never panic the
    /// scanner and always reach Eof.
    #[test]
    fn arbitrary_bytes_never_panic_the_scanner(
        data in prop::collection::vec(any::<u8>(), 0..600),
        sizes in chunk_sizes(),
    ) {
        let lines = scan(data, sizes, 64);
        for line in lines {
            if let BoundedLine::Line(text) = line {
                // Whatever came out is fed onward in real use; the
                // decoders must answer with a value or a typed error.
                let _ = Request::parse_jsonl(&text);
                let _ = Response::parse_jsonl(&text);
            }
        }
    }

    /// Every prefix of a valid request line decodes to Ok (only the
    /// full line) or a typed error — truncation can never panic or
    /// produce a *different* valid message.
    #[test]
    fn truncated_requests_parse_or_error(cut in 0usize..600) {
        let line = Request::Submit(dense_spec()).to_jsonl();
        let slice = cut_at_boundary(&line, cut);
        if let Ok(req) = Request::parse_jsonl(slice) {
            prop_assert_eq!(
                (req, slice.len()),
                (Request::Submit(dense_spec()), line.len()),
                "a strict prefix must never decode"
            );
        }
    }

    /// Single-character corruption anywhere in a valid line decodes to
    /// Ok or a typed error, never a panic — the guarantee the wire
    /// Corrupt/Truncate faults lean on.
    #[test]
    fn mutated_requests_never_panic(pos in 0usize..600, replacement in any::<u32>()) {
        let replacement = char::from_u32(replacement % 0x11_0000).unwrap_or('\u{FFFD}');
        let line = Request::Submit(dense_spec()).to_jsonl();
        let mut pos = pos.min(line.len().saturating_sub(1));
        while pos > 0 && !line.is_char_boundary(pos) {
            pos -= 1;
        }
        let mut mutated = String::with_capacity(line.len() + 4);
        mutated.push_str(&line[..pos]);
        mutated.push(replacement);
        if let Some((i, _)) = line[pos..].char_indices().nth(1) {
            mutated.push_str(&line[pos + i..]);
        }
        let _ = Request::parse_jsonl(&mutated);
        let _ = Response::parse_jsonl(&mutated);
    }
}
