//! End-to-end crash-durability tests: jobs accepted into a journaled
//! service survive a crash (simulated by dropping the service without
//! drain), re-execute on restart with byte-identical results, and leave
//! the journal quiescent after a clean run. Torn trailing lines — the
//! signature of dying mid-append — are skipped, counted, and never
//! poison the records before them.

use std::io::Write;
use std::path::PathBuf;

use trident_serve::proto::{JobOrigin, JobSpec};
use trident_serve::{JobWait, Service, ServiceConfig};

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "trident-journal-e2e-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn spec(cell: u64) -> JobSpec {
    let mut spec = JobSpec::new("GUPS", "Trident");
    spec.scale = 256;
    spec.samples = 1_000;
    spec.seed = 42;
    spec.cell_index = Some(cell);
    spec.key = Some(format!("e2e/c{cell}"));
    spec
}

fn config(start_paused: bool) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_depth: 16,
        start_paused,
    }
}

fn wait_done(service: &Service, id: u64) -> trident_serve::JobResult {
    match service.wait(id) {
        Some(JobWait::Done(result)) => result,
        other => panic!("job {id}: expected Done, got {other:?}"),
    }
}

#[test]
fn crash_replays_unfinished_jobs_byte_identically() {
    let path = temp_journal("crash");

    // Accept two jobs into a paused pool — journaled, never run — then
    // "crash" by dropping the service without draining it.
    let (service, replay) = Service::start_with_journal(config(true), &path).unwrap();
    assert_eq!(replay.replayed, 0);
    let a = service.submit(spec(0)).unwrap();
    let b = service.submit(spec(1)).unwrap();
    drop(service);

    // Restart on the same journal: both jobs must come back, under
    // fresh ids above the old ones, marked as journal-origin, and
    // produce exactly the bytes a direct run produces.
    let (service, replay) = Service::start_with_journal(config(false), &path).unwrap();
    assert_eq!(replay.replayed, 2, "{replay:?}");
    assert_eq!(replay.corrupt, 0, "{replay:?}");
    let summaries = service.list();
    let replayed: Vec<_> = summaries
        .iter()
        .filter(|j| j.origin == JobOrigin::Journal)
        .collect();
    assert_eq!(replayed.len(), 2, "{summaries:?}");
    for summary in &replayed {
        assert!(
            summary.id > a && summary.id > b,
            "replayed ids must never reuse journaled ones: {summary:?}"
        );
        // The idempotency key survives the journal round-trip, which is
        // what lets a fleet client dedup a replayed duplicate.
        let key = summary.key.as_deref().expect("key must survive replay");
        let cell: u64 = key.strip_prefix("e2e/c").unwrap().parse().unwrap();
        let got = wait_done(&service, summary.id);
        let want = trident_serve::job::execute(&spec(cell)).unwrap();
        assert_eq!(got, want, "replayed cell {cell} drifted from direct run");
    }

    // The service block advertises the journal; the metrics registry
    // carries the same counters for /metrics scrapers.
    let info = service.info();
    let journal = info.journal.expect("journaled service must say so");
    assert_eq!(journal.replayed, 2);
    assert_eq!(journal.pending, 0, "everything settled: {journal:?}");
    let rendered = service.metrics().render();
    assert!(
        rendered.contains("tridentd_journal_replayed_total 2\n"),
        "{rendered}"
    );
    service.shutdown();

    // Third generation: the journal remembers the terminal marks, so a
    // clean restart replays nothing.
    let (service, replay) = Service::start_with_journal(config(false), &path).unwrap();
    assert_eq!(replay.replayed, 0, "{replay:?}");
    service.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_trailing_line_is_skipped_not_fatal() {
    let path = temp_journal("torn");

    let (service, _) = Service::start_with_journal(config(true), &path).unwrap();
    service.submit(spec(2)).unwrap();
    drop(service);

    // Simulate dying mid-append: a torn, unterminated record after the
    // good ones.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(b"{\"j\":1,\"op\":\"acce").unwrap();
    drop(file);

    let (service, replay) = Service::start_with_journal(config(false), &path).unwrap();
    assert_eq!(replay.replayed, 1, "{replay:?}");
    assert!(replay.corrupt >= 1, "{replay:?}");
    let summary = service
        .list()
        .into_iter()
        .find(|j| j.origin == JobOrigin::Journal)
        .expect("the intact record must replay");
    let got = wait_done(&service, summary.id);
    assert_eq!(got, trident_serve::job::execute(&spec(2)).unwrap());
    service.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn completed_jobs_never_replay() {
    let path = temp_journal("clean");

    let (service, _) = Service::start_with_journal(config(false), &path).unwrap();
    let id = service.submit(spec(4)).unwrap();
    wait_done(&service, id);
    service.shutdown();

    let (service, replay) = Service::start_with_journal(config(false), &path).unwrap();
    assert_eq!(replay.replayed, 0, "{replay:?}");
    assert!(
        replay.records >= 2,
        "accept + done must persist: {replay:?}"
    );
    service.shutdown();
    let _ = std::fs::remove_file(&path);
}
