//! End-to-end tests over a real TCP socket: a cell submitted to a
//! daemon must measure bit-identically to a direct `System` run, at any
//! worker count, and the bounded admission queue must push back with a
//! typed `queue_full` and then drain.

use std::sync::Arc;

use trident_serve::proto::{
    ErrorCode, FaultSpec, JobResult, JobSpec, Request, Response, RungRow, TenantJob,
};
use trident_serve::{serve_tcp, Client, Service, ServiceConfig};
use trident_sim::experiments::ExpOptions;
use trident_sim::{derive_cell_seed, PolicyKind, System};
use trident_workloads::WorkloadSpec;

fn spec(cell_index: Option<u64>) -> JobSpec {
    let mut spec = JobSpec::new("GUPS", "Trident");
    spec.scale = 256;
    spec.samples = 2_000;
    spec.seed = 42;
    spec.cell_index = cell_index;
    spec
}

/// What the daemon should have measured for [`spec`], computed by
/// running the `System` directly — no service, no socket, no JSON.
fn direct_run(cell_index: Option<u64>) -> (u64, u64, Vec<RungRow>, trident_core::StatsSnapshot) {
    let opts = ExpOptions {
        scale: 256,
        samples: 2_000,
        seed: cell_index.map_or(42, |c| derive_cell_seed(42, c)),
        threads: 0,
        trace_capacity: None,
        profile: false,
    };
    let mut system = System::builder(opts.config())
        .policy(PolicyKind::Trident)
        .workload(WorkloadSpec::by_name("GUPS").unwrap())
        .build()
        .unwrap();
    system.settle();
    let m = system.measure();
    let geo = system.geometry();
    let rungs = geo
        .rungs()
        .map(|size| RungRow {
            size: geo.label(size),
            bytes: m.mapped_bytes[size.rung()],
        })
        .collect();
    (m.walks, m.walk_cycles, rungs, m.snapshot)
}

/// Disconnects, stops the accept loop, waits for the connection thread
/// to release its service handle, and drains the pool.
fn teardown(client: Client, handle: trident_serve::ServerHandle, mut service: Arc<Service>) {
    drop(client);
    handle.stop();
    handle.join().unwrap();
    let service = loop {
        match Arc::try_unwrap(service) {
            Ok(service) => break service,
            Err(back) => {
                // The connection thread is between observing EOF and
                // exiting; it drops its Arc momentarily.
                service = back;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    };
    service.shutdown();
}

fn submit(client: &mut Client, job: JobSpec) -> u64 {
    match client.request(&Request::Submit(job)).unwrap() {
        Response::Submitted { id } => id,
        other => panic!("expected Submitted, got {other:?}"),
    }
}

fn fetch(client: &mut Client, id: u64) -> JobResult {
    match client.request(&Request::Result { id }).unwrap() {
        Response::Result { id: rid, result } => {
            assert_eq!(rid, id);
            result
        }
        other => panic!("expected Result, got {other:?}"),
    }
}

#[test]
fn socket_results_are_bit_identical_at_any_worker_count() {
    // Three cells of a grid, each with its own derived seed. The same
    // three expected measurements must come back from a 1-, 2- and
    // 4-worker daemon: sharding can move a job between workers but must
    // never change what it computes.
    let cells = [None, Some(0), Some(3)];
    let expected: Vec<_> = cells.iter().map(|&c| direct_run(c)).collect();

    for workers in [1usize, 2, 4] {
        let service = Arc::new(Service::start(ServiceConfig {
            workers,
            queue_depth: 16,
            start_paused: false,
        }));
        let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        let ids: Vec<u64> = cells
            .iter()
            .map(|&c| submit(&mut client, spec(c)))
            .collect();
        for (id, (walks, walk_cycles, rungs, snapshot)) in ids.into_iter().zip(&expected) {
            let result = fetch(&mut client, id);
            assert_eq!(result.walks, *walks, "workers={workers}");
            assert_eq!(result.walk_cycles, *walk_cycles, "workers={workers}");
            assert_eq!(result.rungs, *rungs, "workers={workers}");
            assert_eq!(result.snapshot, *snapshot, "workers={workers}");
        }

        teardown(client, handle, service);
    }
}

#[test]
fn socket_backpressure_is_typed_and_drains() {
    // One paused worker, depth 2: the third submission must bounce with
    // the wire code `queue_full`, and after resume the backlog drains
    // and the bounced job fits on resubmission.
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 2,
        start_paused: true,
    }));
    let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let a = submit(&mut client, spec(None));
    let b = submit(&mut client, spec(Some(1)));
    match client.request(&Request::Submit(spec(Some(2)))).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::QueueFull);
            assert!(message.contains("depth of 2"), "{message}");
        }
        other => panic!("expected queue_full, got {other:?}"),
    }

    service.resume();
    fetch(&mut client, a);
    fetch(&mut client, b);
    let c = submit(&mut client, spec(Some(2)));
    fetch(&mut client, c);

    teardown(client, handle, service);
}

#[test]
fn socket_colocation_smoke_matches_local_and_stays_isolated() {
    // The CI co-location smoke cell: a 3-tenant machine (GUPS primary,
    // Redis weighted and pinned beside it, XSBench unweighted) with the
    // per-tick audit on and a seeded fault plan biting allocations. The
    // daemon's answer must be bit-identical to the local `job::execute`
    // path, carry one row per tenant, and report zero isolation
    // violations even while faults are being injected.
    let mut job = spec(None);
    job.audit = true;
    job.fault = Some(FaultSpec {
        seed: 7,
        rules: vec![(trident_core::InjectSite::Alloc, 10)],
    });
    let mut redis = TenantJob::new("Redis");
    redis.weight = 2;
    redis.pins = vec![(0, 512)];
    job.tenants = vec![redis, TenantJob::new("XSBench")];

    let local = trident_serve::job::execute(&job).unwrap();
    assert_eq!(local.tenants.len(), 3, "one row per tenant");
    assert_eq!(local.violations, 0, "audit must stay clean under faults");
    let per_tenant: u64 = local.tenants.iter().map(|t| t.samples).sum();
    assert_eq!(per_tenant, local.samples, "rows must cover every sample");

    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 4,
        start_paused: false,
    }));
    let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let id = submit(&mut client, job);
    let remote = fetch(&mut client, id);
    assert_eq!(remote, local, "remote co-location cell drifted from local");

    teardown(client, handle, service);
}

#[test]
fn socket_observability_plane_reports_the_run() {
    // The whole v3 surface over one socket: queue occupancy and the
    // paused flag ride on Status/Jobs, a finished job answers Progress
    // with its final sample counts, and Metrics returns a lint-clean
    // Prometheus body whose counters reflect the job that just ran.
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 4,
        start_paused: true,
    }));
    let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let id = submit(&mut client, spec(None));
    match client.request(&Request::Status { id }).unwrap() {
        Response::Status { service: info, .. } => {
            assert!(info.paused, "daemon started paused");
            assert_eq!(info.workers, 2);
            assert_eq!(info.queue_depth, 4);
            assert_eq!(info.queues.iter().sum::<u64>(), 1, "{:?}", info.queues);
        }
        other => panic!("expected Status, got {other:?}"),
    }

    service.resume();
    fetch(&mut client, id);

    match client.request(&Request::List).unwrap() {
        Response::Jobs {
            jobs,
            service: info,
        } => {
            assert_eq!(jobs.len(), 1);
            assert!(!info.paused, "resume must clear the flag on the wire");
            assert_eq!(info.queues, vec![0, 0], "backlog drained");
        }
        other => panic!("expected Jobs, got {other:?}"),
    }

    match client.request(&Request::Progress { id }).unwrap() {
        Response::Progress {
            id: rid,
            state,
            progress,
        } => {
            assert_eq!(rid, id);
            assert_eq!(state, trident_serve::proto::JobState::Done);
            assert_eq!(progress.samples_done, 2_000);
            assert_eq!(progress.samples_total, 2_000);
            assert!(progress.ticks > 0, "the per-tick hook must have fired");
        }
        other => panic!("expected Progress, got {other:?}"),
    }
    match client.request(&Request::Progress { id: 999 }).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected unknown_job, got {other:?}"),
    }

    match client.request(&Request::Metrics).unwrap() {
        Response::Metrics { text } => {
            trident_prof::prom::lint(&text).unwrap();
            assert!(
                text.contains("tridentd_jobs_total{state=\"done\"} 1\n"),
                "{text}"
            );
            assert!(
                text.contains("tridentd_submissions_total{outcome=\"accepted\"} 1\n"),
                "{text}"
            );
            assert!(
                text.contains("tridentd_tenant_samples_total{workload=\"GUPS\"} 2000\n"),
                "{text}"
            );
            assert!(text.contains("tridentd_heartbeats_total"), "{text}");
            assert!(text.contains("tridentd_job_wall_ns_count 1\n"), "{text}");
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    teardown(client, handle, service);
}

#[test]
fn socket_trace_drops_surface_end_to_end() {
    // A deliberately tiny trace ring overflows; the drop count must
    // survive the wire in JobResult and fold into the daemon's
    // tridentd_trace_dropped_total — and a hookless direct run of the
    // same spec must drop exactly as many events (the progress hook and
    // registry never perturb the run).
    let mut job = spec(None);
    job.trace_capacity = Some(8);
    let local = trident_serve::job::execute(&job).unwrap();
    assert!(local.trace_dropped > 0, "an 8-slot ring must overflow");

    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        start_paused: false,
    }));
    let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let id = submit(&mut client, job);
    let remote = fetch(&mut client, id);
    assert_eq!(remote.trace_dropped, local.trace_dropped);
    assert_eq!(remote, local, "metered run drifted from direct run");

    match client.request(&Request::Metrics).unwrap() {
        Response::Metrics { text } => {
            assert!(
                text.contains(&format!(
                    "tridentd_trace_dropped_total {}\n",
                    local.trace_dropped
                )),
                "{text}"
            );
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    teardown(client, handle, service);
}

#[test]
fn socket_rejects_what_resolve_rejects() {
    // Submit-time validation reaches the client as a typed bad_request:
    // an impossible fault probability (> 1000 thousandths).
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        start_paused: false,
    }));
    let handle = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut bad = spec(None);
    bad.fault = Some(FaultSpec {
        seed: 9,
        rules: vec![(trident_core::InjectSite::Alloc, 5_000)],
    });
    match client.request(&Request::Submit(bad)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }

    teardown(client, handle, service);
}
