//! A blocking client for the job service's TCP transport.
//!
//! One [`Client`] owns one connection and speaks strict
//! request/response: [`Client::request`] writes a line and blocks for
//! exactly one answer line. `tridentctl --connect` and the integration
//! tests are built on this.
//!
//! [`Client::connect`] keeps the original fire-and-hope behavior: no
//! deadlines, a dead daemon blocks forever. [`Client::connect_with`]
//! attaches a [`RetryPolicy`] so connects retry with deterministic
//! backoff and every read carries a per-operation deadline — an expired
//! deadline surfaces as a typed
//! [`ProtoError::Timeout`](crate::proto::ProtoError) instead of a hang.
//! A timed-out connection is *poisoned*: the response may still arrive
//! later and would misalign request/response framing, so the client
//! refuses further use and the caller reconnects.
//!
//! For chaos runs the client can carry a [`WireInjector`]: seeded
//! drop/delay/truncate/corrupt/sever faults applied around the line
//! transport, so the fleet's retry machinery is exercised by the same
//! deterministic plan vocabulary `trident-fault` gives the MM layer.

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use trident_fault::{WireInjector, WireSite};

use crate::json::{self, BoundedLine};
use crate::proto::{ProtoError, Request, Response};
use crate::retry::RetryPolicy;

/// Why a round-trip failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading failed.
    Io(std::io::Error),
    /// The daemon closed the connection without answering.
    ConnectionClosed,
    /// The daemon answered with something this build cannot decode —
    /// including [`ProtoError::Timeout`] when a per-operation deadline
    /// expired.
    Proto(ProtoError),
    /// A previous timeout left the stream mid-message; the connection
    /// must be discarded and re-established.
    Poisoned,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::ConnectionClosed => f.write_str("daemon closed the connection"),
            ClientError::Proto(err) => write!(f, "{err}"),
            ClientError::Poisoned => {
                f.write_str("connection poisoned by an earlier timeout; reconnect")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> ClientError {
        ClientError::Io(err)
    }
}

/// One connection to a `tridentd` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    policy: Option<RetryPolicy>,
    wire: Option<WireInjector>,
    poisoned: bool,
}

impl Client {
    /// Connects to a daemon at `addr` (any `host:port` form) with no
    /// deadlines: reads block until the daemon answers or the OS gives
    /// up. Prefer [`connect_with`](Self::connect_with) anywhere a hung
    /// daemon must not hang the caller.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            policy: None,
            wire: None,
            poisoned: false,
        })
    }

    /// Connects under `policy`: each resolved address gets
    /// `policy.connect_timeout`, the whole operation gets
    /// `policy.max_attempts` tries with deterministic backoff between
    /// them, and every subsequent [`request`](Self::request) carries a
    /// per-operation read deadline.
    ///
    /// # Errors
    ///
    /// The last connection failure once attempts are exhausted, or
    /// [`ProtoError::Timeout`] wrapped in [`ClientError::Proto`] when
    /// every attempt timed out.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            for sock in &addrs {
                match TcpStream::connect_timeout(sock, policy.connect_timeout) {
                    Ok(writer) => {
                        let reader = BufReader::new(writer.try_clone()?);
                        return Ok(Client {
                            writer,
                            reader,
                            policy: Some(policy),
                            wire: None,
                            poisoned: false,
                        });
                    }
                    Err(err) if timed_out(&err) => {
                        last = Some(ClientError::Proto(ProtoError::Timeout {
                            op: "connect",
                            ms: as_millis(policy.connect_timeout),
                        }));
                    }
                    Err(err) => last = Some(ClientError::Io(err)),
                }
            }
        }
        Err(last.unwrap_or(ClientError::ConnectionClosed))
    }

    /// Installs a seeded wire-fault injector; its decisions apply to
    /// every subsequent round-trip on this connection.
    pub fn set_wire_faults(&mut self, injector: WireInjector) {
        self.wire = Some(injector);
    }

    /// Removes and returns the wire-fault injector, preserving its
    /// decision-stream position — a fleet thread carries it across
    /// reconnects so the fault sequence stays one deterministic stream
    /// per endpoint.
    pub fn take_wire_faults(&mut self) -> Option<WireInjector> {
        self.wire.take()
    }

    /// Sends one request and blocks for its response. Without a policy
    /// (plain [`connect`](Self::connect)) a `result` request blocks
    /// until the daemon's job settles; under
    /// [`connect_with`](Self::connect_with) the read is bounded by the
    /// policy's per-operation deadline.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, an undecodable answer, an
    /// expired deadline ([`ProtoError::Timeout`]) or a connection
    /// poisoned by an earlier timeout.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        // Outbound faults. Sever models a connection dying mid-exchange;
        // Drop models the request line vanishing — only meaningful when
        // a read deadline will unblock us, so it downgrades to Sever
        // under a deadline-less client.
        let mut dropped = false;
        if let Some(wire) = &mut self.wire {
            if wire.should_inject(WireSite::Sever) {
                self.poisoned = true;
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(ClientError::ConnectionClosed);
            }
            dropped = wire.should_inject(WireSite::Drop);
            if dropped && self.policy.is_none() {
                self.poisoned = true;
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(ClientError::ConnectionClosed);
            }
        }
        if !dropped {
            self.writer.write_all(request.to_jsonl().as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()?;
        }
        let (deadline, op) = match &self.policy {
            Some(policy) => (
                Some(policy.deadline_for(request)),
                RetryPolicy::op_for(request),
            ),
            None => (None, "request"),
        };
        self.reader.get_ref().set_read_timeout(deadline)?;
        let mut line = match json::read_line_bounded(&mut self.reader, json::MAX_LINE_BYTES) {
            Ok(BoundedLine::Line(line)) => line,
            Ok(BoundedLine::Eof) => return Err(ClientError::ConnectionClosed),
            Ok(BoundedLine::Oversized) => {
                // The line was drained, framing is intact, but the
                // answer is gone.
                return Err(ClientError::Proto(ProtoError::Malformed("line too long")));
            }
            Err(err) if timed_out(&err) => {
                // The answer may still arrive and would desynchronize
                // the next round-trip; refuse further use.
                self.poisoned = true;
                return Err(ClientError::Proto(ProtoError::Timeout {
                    op,
                    ms: deadline.map_or(0, as_millis),
                }));
            }
            Err(err) => return Err(ClientError::Io(err)),
        };
        // Inbound faults mangle the already-consumed line, so framing
        // stays aligned: the mangled answer decodes as Malformed, never
        // as silently different bytes.
        if let Some(wire) = &mut self.wire {
            if wire.should_inject(WireSite::Delay) {
                let ms = 1 + wire.magnitude(WireSite::Delay) % 25;
                std::thread::sleep(Duration::from_millis(ms));
            }
            if wire.should_inject(WireSite::Truncate) {
                let mut cut = line.len() / 2;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                line.truncate(cut);
            }
            if wire.should_inject(WireSite::Corrupt) && line.is_char_boundary(1) {
                // Overwrite the opening brace: always detectable, never
                // a silent payload change.
                line.replace_range(0..1, "#");
            }
        }
        Response::parse_jsonl(line.trim_end()).map_err(ClientError::Proto)
    }
}

fn timed_out(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn as_millis(d: Duration) -> u64 {
    d.as_millis().min(u128::from(u64::MAX)) as u64
}
