//! A blocking client for the job service's TCP transport.
//!
//! One [`Client`] owns one connection and speaks strict
//! request/response: [`Client::request`] writes a line and blocks for
//! exactly one answer line. `tridentctl --connect` and the integration
//! tests are built on this.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{ProtoError, Request, Response};

/// Why a round-trip failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading failed.
    Io(std::io::Error),
    /// The daemon closed the connection without answering.
    ConnectionClosed,
    /// The daemon answered with something this build cannot decode.
    Proto(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::ConnectionClosed => f.write_str("daemon closed the connection"),
            ClientError::Proto(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> ClientError {
        ClientError::Io(err)
    }
}

/// One connection to a `tridentd` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon at `addr` (any `host:port` form).
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request and blocks for its response. A `result`
    /// request blocks until the daemon's job settles — there is no
    /// client-side timeout; use `status` for non-blocking polling.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or an undecodable answer.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(request.to_jsonl().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::ConnectionClosed);
        }
        Response::parse_jsonl(line.trim_end()).map_err(ClientError::Proto)
    }
}
