//! Crash-durable job journal: an append-only WAL of accepted jobs.
//!
//! Every accepted [`JobSpec`] is appended (and fsync'd) before the
//! submitter hears "submitted"; every terminal transition appends a
//! mark. On restart the journal is replayed: accepts without a matching
//! terminal mark are exactly the jobs a crash orphaned, and the service
//! re-admits them under fresh ids — safe because results are a pure
//! function of the spec, so a re-run provably produces the same bytes
//! the lost run would have.
//!
//! Records are line-JSON with their own schema tag (`"j":1`),
//! independent of the wire protocol version:
//!
//! ```json
//! {"j":1,"op":"accept","id":3,"origin":"client","job":{...}}
//! {"j":1,"op":"accept","id":9,"origin":"journal","from":3,"job":{...}}
//! {"j":1,"op":"done","id":3}
//! {"j":1,"op":"failed","id":4}
//! {"j":1,"op":"cancelled","id":5}
//! ```
//!
//! A replayed acceptance *supersedes* its pre-crash record: the `from`
//! id is retired from the pending set, so a job orphaned by one crash
//! and re-admitted is not replayed a second time by the next restart.
//!
//! A torn final line (the crash happened mid-append) is expected and
//! skipped; corrupt interior lines are counted and skipped rather than
//! aborting the replay — durability degrades loudly, never silently.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::json;
use crate::proto::{JobOrigin, JobSpec};

/// Schema version of journal records; bump on any record-shape change.
pub const JOURNAL_VERSION: u32 = 1;

/// The write side of the journal: an append-only, fsync-per-record log.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records appended since open (not counting replayed history).
    appended: u64,
}

/// What replaying an existing journal found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReplay {
    /// Accepted-but-not-terminal jobs, in original acceptance order.
    pub pending: Vec<(u64, JobSpec)>,
    /// Well-formed records read (accepts + terminal marks).
    pub records: u64,
    /// Lines skipped as torn or corrupt.
    pub corrupt: u64,
    /// Highest job id any record named (0 when the journal was empty);
    /// the service resumes ids above this so an id is never reused.
    pub max_id: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replaying whatever is
    /// already there.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors opening or reading the file.
    pub fn open(path: &Path) -> std::io::Result<(Journal, JournalReplay)> {
        let replay = match File::open(path) {
            Ok(file) => replay(BufReader::new(file)),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => JournalReplay {
                pending: Vec::new(),
                records: 0,
                corrupt: 0,
                max_id: 0,
            },
            Err(err) => return Err(err),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                appended: 0,
            },
            replay,
        ))
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended since this process opened the journal.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends an acceptance record and syncs it to disk. `requeued_from`
    /// names the pre-crash id when this acceptance is a journal replay.
    ///
    /// # Errors
    ///
    /// Propagates the write or sync failure.
    pub fn accept(
        &mut self,
        id: u64,
        spec: &JobSpec,
        origin: JobOrigin,
        requeued_from: Option<u64>,
    ) -> std::io::Result<()> {
        let mut line = format!(
            "{{\"j\":{JOURNAL_VERSION},\"op\":\"accept\",\"id\":{id},\"origin\":\"{}\"",
            origin.as_str()
        );
        if let Some(from) = requeued_from {
            line.push_str(&format!(",\"from\":{from}"));
        }
        line.push_str(",\"job\":");
        line.push_str(&spec.to_json());
        line.push('}');
        self.append(&line)
    }

    /// Appends a terminal mark (`"done"`, `"failed"`, `"cancelled"`)
    /// and syncs it to disk.
    ///
    /// # Errors
    ///
    /// Propagates the write or sync failure.
    pub fn terminal(&mut self, id: u64, op: &'static str) -> std::io::Result<()> {
        self.append(&format!(
            "{{\"j\":{JOURNAL_VERSION},\"op\":\"{op}\",\"id\":{id}}}"
        ))
    }

    fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        // Data-only sync: the record must survive a crash; the file's
        // metadata mtime does not.
        self.file.sync_data()?;
        self.appended += 1;
        Ok(())
    }
}

fn replay<R: BufRead>(reader: R) -> JournalReplay {
    let mut pending: Vec<(u64, JobSpec)> = Vec::new();
    let mut records = 0u64;
    let mut corrupt = 0u64;
    let mut max_id = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else {
            corrupt += 1;
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        match replay_line(&line) {
            Some((id, action)) => {
                records += 1;
                max_id = max_id.max(id);
                match action {
                    Action::Accept { spec, from } => {
                        // A re-accept supersedes the orphaned record it
                        // replays; without this, every restart would
                        // re-run it again.
                        if let Some(from) = from {
                            pending.retain(|(p, _)| *p != from);
                        }
                        pending.push((id, *spec));
                    }
                    Action::Terminal => pending.retain(|(p, _)| *p != id),
                }
            }
            None => corrupt += 1,
        }
    }
    JournalReplay {
        pending,
        records,
        corrupt,
        max_id,
    }
}

enum Action {
    Accept {
        spec: Box<JobSpec>,
        /// The pre-crash id this acceptance supersedes, when a replay.
        from: Option<u64>,
    },
    Terminal,
}

fn replay_line(line: &str) -> Option<(u64, Action)> {
    if json::u64_field(line, "j")? != u64::from(JOURNAL_VERSION) {
        return None;
    }
    let id = json::u64_field(line, "id")?;
    match json::str_field(line, "op")?.as_str() {
        "accept" => {
            let spec = Box::new(JobSpec::from_json(json::field(line, "job")?).ok()?);
            let from = json::u64_field(line, "from");
            Some((id, Action::Accept { spec, from }))
        }
        "done" | "failed" | "cancelled" => Some((id, Action::Terminal)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "trident-journal-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn replay_returns_accepts_without_terminal_marks() {
        let path = temp_path("pending");
        let _ = std::fs::remove_file(&path);
        let (mut journal, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 0);
        let spec = JobSpec::new("GUPS", "Trident");
        journal.accept(1, &spec, JobOrigin::Client, None).unwrap();
        journal.accept(2, &spec, JobOrigin::Client, None).unwrap();
        journal.terminal(1, "done").unwrap();
        journal.accept(3, &spec, JobOrigin::Client, None).unwrap();
        journal.terminal(3, "cancelled").unwrap();
        drop(journal);

        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 5);
        assert_eq!(replay.corrupt, 0);
        assert_eq!(replay.max_id, 3);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0], (2, spec));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path).unwrap();
        let spec = JobSpec::new("Redis", "4KB");
        journal.accept(7, &spec, JobOrigin::Client, None).unwrap();
        drop(journal);
        // Simulate a crash mid-append: a half-written accept record.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"j\":1,\"op\":\"accept\",\"id\":8,\"ori")
            .unwrap();
        drop(file);

        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 1);
        assert_eq!(replay.corrupt, 1);
        assert_eq!(replay.pending, vec![(7, spec)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn requeue_records_carry_their_pre_crash_id() {
        let path = temp_path("requeue");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path).unwrap();
        let spec = JobSpec::new("GUPS", "Trident");
        journal
            .accept(9, &spec, JobOrigin::Journal, Some(4))
            .unwrap();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"from\":4"), "{text}");
        assert!(text.contains("\"origin\":\"journal\""), "{text}");
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.pending, vec![(9, spec)]);
        assert_eq!(replay.max_id, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_requeued_accept_supersedes_its_orphan() {
        // Crash 1 orphans id 4; restart re-accepts it as id 9 and then
        // crashes again before 9 settles. The next replay must surface
        // id 9 exactly once — never 4 as well.
        let path = temp_path("supersede");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path).unwrap();
        let spec = JobSpec::new("GUPS", "Trident");
        journal.accept(4, &spec, JobOrigin::Client, None).unwrap();
        journal
            .accept(9, &spec, JobOrigin::Journal, Some(4))
            .unwrap();
        drop(journal);
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.pending, vec![(9, spec)]);
        let _ = std::fs::remove_file(&path);
    }
}
