//! Transports: line-delimited JSON over TCP or any byte stream (stdin).
//!
//! Both transports are thin framing around [`Service::handle`]: read a
//! line, decode a [`Request`], write the [`Response`] line. Malformed
//! or wrong-version lines are answered with a typed error and the
//! connection continues — one bad client line never takes the daemon
//! down.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::json::{self, BoundedLine};
use crate::proto::{ErrorCode, ProtoError, Request, Response};
use crate::service::Service;

/// Answers every request line on `input`, writing one response line per
/// request to `output`, until end of input or a `shutdown` request.
/// Returns whether shutdown was requested — the caller decides whether
/// end-of-input alone should also drain the service.
///
/// # Errors
///
/// Propagates I/O errors on either stream.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &Service,
    mut input: R,
    mut output: W,
) -> std::io::Result<bool> {
    loop {
        let line = match json::read_line_bounded(&mut input, json::MAX_LINE_BYTES)? {
            BoundedLine::Eof => break,
            // The oversized line was drained, so the stream stays
            // framed — answer and keep serving.
            BoundedLine::Oversized => {
                let response = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("line exceeds {} bytes", json::MAX_LINE_BYTES),
                };
                output.write_all(response.to_jsonl().as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
                continue;
            }
            BoundedLine::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse_jsonl(&line) {
            Ok(request) => service.handle(request),
            Err(err) => protocol_error(&err),
        };
        let shutting_down = response == Response::ShuttingDown;
        output.write_all(response.to_jsonl().as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if shutting_down {
            return Ok(true);
        }
    }
    Ok(false)
}

fn protocol_error(err: &ProtoError) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: err.to_string(),
    }
}

/// A listening TCP server; [`join`](ServerHandle::join) blocks until a
/// client requests shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0 to the chosen port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to exit after its current accept.
    pub fn stop(&self) {
        request_accept_stop(&self.stop, self.addr);
    }

    /// Waits for the accept loop to exit (after [`stop`](Self::stop) or
    /// a client `shutdown` request).
    ///
    /// # Errors
    ///
    /// Propagates a listener I/O error from the accept loop.
    pub fn join(self) -> std::io::Result<()> {
        self.accept_thread
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("accept loop panicked")))
    }
}

fn request_accept_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    // accept() has no timeout; a throwaway connection wakes it so it
    // observes the flag.
    drop(TcpStream::connect(addr));
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// connections until a client sends `shutdown`. Each connection gets
/// its own thread, so one client blocking on a `result` does not stall
/// others.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_tcp(service: Arc<Service>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || -> std::io::Result<()> {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let service = Arc::clone(&service);
            let conn_stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || {
                let peer = stream.peer_addr();
                let reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(_) => return,
                };
                match serve_lines(&service, reader, &stream) {
                    Ok(true) => {
                        // This client asked for shutdown: stop accepting.
                        if let Ok(local) = stream.local_addr() {
                            request_accept_stop(&conn_stop, local);
                        }
                    }
                    Ok(false) => {}
                    Err(err) => {
                        // A dropped connection is the client's business,
                        // not a daemon failure.
                        eprintln!("# connection {peer:?} ended: {err}");
                    }
                }
            });
        }
        Ok(())
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{JobSpec, PROTO_VERSION};
    use crate::service::ServiceConfig;

    fn quick_spec() -> JobSpec {
        let mut spec = JobSpec::new("GUPS", "Trident");
        spec.scale = 256;
        spec.samples = 1_000;
        spec
    }

    #[test]
    fn serve_lines_answers_each_request_in_order() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_depth: 4,
            start_paused: false,
        });
        let input = format!(
            "{}\n\n{}\n{}\n",
            Request::Submit(quick_spec()).to_jsonl(),
            Request::Result { id: 1 }.to_jsonl(),
            Request::Shutdown.to_jsonl(),
        );
        let mut output = Vec::new();
        let shutdown = serve_lines(&service, input.as_bytes(), &mut output).unwrap();
        assert!(shutdown);
        let lines: Vec<Response> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Response::parse_jsonl(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3, "blank lines are skipped");
        assert_eq!(lines[0], Response::Submitted { id: 1 });
        assert!(matches!(lines[1], Response::Result { id: 1, .. }));
        assert_eq!(lines[2], Response::ShuttingDown);
        service.shutdown();
    }

    #[test]
    fn bad_lines_get_typed_errors_and_the_stream_continues() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_depth: 4,
            start_paused: true,
        });
        let wrong_version = Request::List
            .to_jsonl()
            .replace(&format!("\"v\":{PROTO_VERSION}"), "\"v\":999");
        let input = format!(
            "not json at all\n{wrong_version}\n{}\n",
            Request::List.to_jsonl()
        );
        let mut output = Vec::new();
        let shutdown = serve_lines(&service, input.as_bytes(), &mut output).unwrap();
        assert!(!shutdown, "end of input is not a shutdown request");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<Response> = text
            .lines()
            .map(|l| Response::parse_jsonl(l).unwrap())
            .collect();
        assert!(matches!(
            &lines[0],
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        match &lines[1] {
            Response::Error { code, message } => {
                assert_eq!(*code, ErrorCode::BadRequest);
                assert!(message.contains("v999"), "{message}");
            }
            other => panic!("expected version error, got {other:?}"),
        }
        match &lines[2] {
            Response::Jobs {
                jobs,
                service: info,
            } => {
                assert!(jobs.is_empty());
                assert_eq!(info.workers, 1);
            }
            other => panic!("expected Jobs, got {other:?}"),
        }
        service.request_stop();
        service.shutdown();
    }

    #[test]
    fn oversized_lines_get_a_typed_error_and_the_stream_continues() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_depth: 4,
            start_paused: true,
        });
        let huge = "x".repeat(json::MAX_LINE_BYTES + 1);
        let input = format!("{huge}\n{}\n", Request::List.to_jsonl());
        let mut output = Vec::new();
        serve_lines(&service, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<Response> = text
            .lines()
            .map(|l| Response::parse_jsonl(l).unwrap())
            .collect();
        match &lines[0] {
            Response::Error { code, message } => {
                assert_eq!(*code, ErrorCode::BadRequest);
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected oversize error, got {other:?}"),
        }
        assert!(matches!(&lines[1], Response::Jobs { .. }));
        service.request_stop();
        service.shutdown();
    }
}
